"""Standing queries under streaming session traffic (DESIGN.md S.15).

Not a paper figure: this benchmark covers the streaming subsystem
(``repro.stream``).  A seeded :class:`~repro.stream.replay
.TrafficReplayer` drives arrivals, model updates, and expirations
through a :class:`~repro.db.mutable.MutablePPDatabase`; an overlapping
workload of standing queries (all four request kinds over the same
p-relation) is maintained two ways:

* **incremental** — one :class:`~repro.stream.standing
  .StandingQueryEngine` over a shared warm cache: each generation
  re-executes only the solves whose canonical identity the deltas
  changed, and the targeted ``invalidate`` retires the replaced keys;
* **full re-evaluation** — the snapshot baseline: every generation
  re-answers the whole workload against a *fresh* cache (requests still
  share solves within the generation, so the baseline is the honest
  batch cost, not a per-request strawman).

Acceptance bars:

* at every generation, every materialized answer is **bit-identical**
  to the from-scratch evaluation on the mutated database — always
  enforced (kind, principal value, and per-session probabilities, via
  :func:`~repro.stream.standing.answers_equal`);
* in steady state (after cold registration) incremental maintenance
  performs at least **5x fewer** distinct solves than full
  re-evaluation — enforced in full mode (quick mode shrinks the
  session population the bar's denominator scales with).

``BENCH_STREAM_QUICK=1`` shrinks the workload for CI smoke runs.
Results are written to ``benchmarks/BENCH_stream.json`` (committed) and
``benchmarks/results/`` like every other benchmark.
"""

import json
import os
import time
from pathlib import Path

from repro.api.evaluate import answer_with_plan
from repro.evaluation.experiments import ExperimentResult
from repro.service.cache import SolverCache
from repro.stream.replay import TrafficReplayer
from repro.stream.standing import StandingQueryEngine, answers_equal

QUICK = os.environ.get("BENCH_STREAM_QUICK") == "1"
N_ACTIVE = 12 if QUICK else 40
N_POOL = 4 if QUICK else 12
N_MOVIES = 6 if QUICK else 8
N_STEPS = 3 if QUICK else 10
N_QUERIES = 4 if QUICK else 8
N_UPDATES = 2
MIN_SOLVE_RATIO = 5.0
SEED = 20260807

JSON_PATH = Path(__file__).parent / "BENCH_stream.json"


def test_streaming(record_result):
    replayer = TrafficReplayer(
        n_active=N_ACTIVE,
        n_pool=N_POOL,
        n_movies=N_MOVIES,
        updates=N_UPDATES,
        seed=SEED,
    )
    requests = replayer.standing_requests(N_QUERIES)
    engine = StandingQueryEngine(replayer.db, auto_refresh=False)
    registered = [engine.register(text) for text in requests]
    cold_solves = int(engine.stats()["fresh_solves"])

    incremental_solves = 0
    full_solves = 0
    mismatches = 0
    incremental_seconds = 0.0
    full_seconds = 0.0
    rows = []
    for _ in range(N_STEPS):
        deltas = replayer.step()

        before = int(engine.stats()["fresh_solves"])
        started = time.perf_counter()
        engine.refresh()
        incremental_seconds += time.perf_counter() - started
        step_incremental = int(engine.stats()["fresh_solves"]) - before

        # Full re-evaluation: the whole workload from scratch, sharing
        # solves within the generation but never across generations.
        scratch = SolverCache()
        step_full = 0
        started = time.perf_counter()
        references = []
        for standing in registered:
            reference, _, execution = answer_with_plan(
                standing.request,
                replayer.db,
                method=standing.method,
                cache=scratch,
            )
            references.append(reference)
            step_full += execution.n_executed
        full_seconds += time.perf_counter() - started

        for standing, reference in zip(registered, references):
            if not answers_equal(standing.answer, reference):
                mismatches += 1

        incremental_solves += step_incremental
        full_solves += step_full
        rows.append(
            [
                replayer.db.generation,
                len(deltas),
                step_incremental,
                step_full,
            ]
        )

    engine.close()
    stats = engine.stats()
    ratio = full_solves / max(incremental_solves, 1)
    enforce_ratio = not QUICK
    report = {
        "config": {
            "n_active": N_ACTIVE,
            "n_pool": N_POOL,
            "n_movies": N_MOVIES,
            "n_steps": N_STEPS,
            "n_queries": N_QUERIES,
            "quick": QUICK,
            "seed": SEED,
        },
        "steady_state": {
            "registration_cold_solves": cold_solves,
            "incremental_solves": incremental_solves,
            "full_reevaluation_solves": full_solves,
            "solve_ratio": ratio,
            "incremental_seconds": incremental_seconds,
            "full_seconds": full_seconds,
            "invalidations_applied": int(stats["invalidations_applied"]),
            "final_generation": int(stats["generation"]),
        },
        "per_step": [
            {
                "generation": generation,
                "deltas": n_deltas,
                "incremental_solves": inc,
                "full_solves": full,
            }
            for generation, n_deltas, inc, full in rows
        ],
        "identity_bar": {
            "required": 0,
            "measured": mismatches,
            "enforced": True,
            "reason": None,
        },
        "solve_ratio_bar": {
            "required": MIN_SOLVE_RATIO,
            "measured": ratio,
            "enforced": enforce_ratio,
            "reason": None if enforce_ratio else "quick mode",
        },
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    record_result(
        ExperimentResult(
            experiment="streaming",
            headers=[
                "generation", "deltas", "incremental_solves", "full_solves",
            ],
            rows=rows,
            notes={
                "solve_ratio": round(ratio, 2),
                "cold_solves": cold_solves,
                "mismatches": mismatches,
                "ratio_bar_enforced": enforce_ratio,
            },
        )
    )

    assert mismatches == 0, (
        f"{mismatches} materialized answers diverged from the "
        "from-scratch evaluation"
    )
    if enforce_ratio:
        assert ratio >= MIN_SOLVE_RATIO, (
            f"incremental maintenance did {incremental_solves} solves vs "
            f"{full_solves} for full re-evaluation ({ratio:.2f}x, "
            f"required {MIN_SOLVE_RATIO:.1f}x)"
        )
