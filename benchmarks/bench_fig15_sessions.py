"""Figure 15: scalability over sessions on (simulated) CrowdRank.

Paper result: with 200 000 sessions, naive per-session evaluation is linear
in the session count, while grouping identical (model, pattern) requests
converges quickly (~118 s): the number of distinct groups is bounded by
the 7 mixture components times the demographic pattern variants.

Scaled reproduction: up to 10 000 sessions, naive runs capped at 1 000; the
grouped solver-call count must stay bounded while the naive count grows
linearly.
"""

from repro.datasets.crowdrank import crowdrank_database
from repro.evaluation.experiments import FIG15_QUERY, figure_15
from repro.query.engine import evaluate
from repro.query.parser import parse_query


def test_figure_15_sessions(record_result, benchmark):
    result = figure_15(
        session_counts=(10, 100, 1000, 10_000),
        naive_limit=1000,
        n_movies=10,
    )
    record_result(result)

    calls = {(row[0], row[1]): row[3] for row in result.rows}
    # Naive calls grow linearly with sessions.
    assert calls[(1000, "naive")] == 1000
    # Grouped calls are bounded by the number of distinct (model, pattern)
    # pairs and stop growing.
    assert calls[(10_000, "grouped")] <= calls[(1000, "grouped")] * 2
    assert calls[(10_000, "grouped")] < 500

    db = crowdrank_database(n_workers=1000, n_movies=10, seed=15)
    query = parse_query(FIG15_QUERY)
    benchmark.pedantic(
        lambda: evaluate(
            query, db, method="lifted", group_sessions=True,
            session_limit=1000,
        ),
        rounds=3,
        iterations=1,
    )
