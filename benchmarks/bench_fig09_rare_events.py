"""Figure 9: rejection sampling vs MIS-AMP-lite on rare events.

Paper result: for the query ``sigma_m > sigma_1`` over ``MAL(sigma, 0.1)``
the target probability decreases exponentially with m, so RS (even with an
optimistic stopping rule) needs EXP(m) samples, while MIS-AMP-lite's cost
stays flat.

Scaled reproduction: m in 4..6 with a 200k-sample RS cap (the cap is
reached by m = 6, exactly the blow-up the figure shows).
"""

import numpy as np

from repro.approx.lite import mis_amp_lite
from repro.evaluation.experiments import figure_9
from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, PatternNode
from repro.rim.mallows import Mallows


def test_figure_9_rare_events(record_result, benchmark):
    result = figure_9(
        m_values=(4, 5, 6),
        repeats=3,
        rs_max_samples=200_000,
        lite_samples=3000,
    )
    record_result(result)

    rows = {row[0]: row for row in result.rows}
    # The exact probability decays exponentially with m ...
    assert rows[4][1] > rows[5][1] > rows[6][1]
    # ... so RS needs ever more samples (median over repeats; the paper's
    # optimistic stopping rule makes individual runs noisy) ...
    assert rows[6][3] > 2 * rows[4][3]
    # ... while MIS-AMP-lite's cost stays flat.
    assert rows[6][4] < 5 * rows[4][4] + 0.5

    model = Mallows(list(range(6)), 0.1)
    labeling = Labeling({0: {"first"}, 5: {"last"}})
    pattern = LabelPattern(
        [
            (
                PatternNode("l", frozenset({"last"})),
                PatternNode("r", frozenset({"first"})),
            )
        ]
    )
    rng = np.random.default_rng(9)
    benchmark.pedantic(
        lambda: mis_amp_lite(
            model, labeling, pattern,
            n_proposals=2, n_per_proposal=1000, rng=rng,
        ),
        rounds=3,
        iterations=1,
    )
