"""The sharded shared-cache tier under a multi-worker fleet.

Not a paper figure: this benchmark covers the scale-out tier of the
serving layer (DESIGN.md, "The sharded shared-cache tier").  The workload
is the backends benchmark's honest worst case — general-class exact
solves over sessions with *distinct* Mallows models, so neither grouping
nor a warm cache can collapse the cold work — served four ways:

* **unsharded reference** — one serial service, the bit-identity anchor;
* **embedded shards** — one serial service whose cache is a
  :class:`~repro.service.shard.ShardedSolverCache` (``cache_shards=``);
* **attached fleet, disjoint slices** — a :class:`ShardCacheServer` in
  the parent and ``N_FLEET`` forked worker processes, each a
  ``PreferenceService(shard_address=...)`` solving its own slice of the
  corpus cold, write-back through per-shard SQLite files;
* **attached fleet, shared corpus** — every worker races the *same*
  corpus cold against a fresh server: fleet-wide single-flight must
  admit exactly one solve per distinct session, however many workers
  collide on it.

Acceptance bars:

* sharded probabilities (embedded and fleet) are bit-identical to the
  unsharded reference — always enforced;
* a warm-fleet restart — a brand-new server over the same per-shard
  files, brand-new workers — performs **zero** solves — always enforced;
* the shared-corpus fleet performs exactly ``N_SESSIONS`` distinct
  solves in total (single-flight, not ``N_FLEET x N_SESSIONS``) —
  always enforced;
* on a multi-core host (>= 2 usable CPUs, full mode) the disjoint-slice
  fleet is within 1.2x of ideal scaling over serial.  The bar is
  physically unmeasurable on a single-core host, so — like the process
  bar in ``BENCH_backends.json`` — it is enforced exactly when the host
  can express it, and the committed report records which.

``BENCH_SHARD_QUICK=1`` shrinks the workload for CI smoke runs.
Results are written to ``benchmarks/BENCH_shard.json`` (committed) and
``benchmarks/results/`` like every other benchmark.
"""

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.db.database import PPDatabase
from repro.db.schema import ORelation, PRelation
from repro.evaluation.experiments import ExperimentResult
from repro.rankings.permutation import Ranking
from repro.rim.mallows import Mallows
from repro.service import PreferenceService, ShardCacheServer

QUICK = os.environ.get("BENCH_SHARD_QUICK") == "1"
N_MOVIES = 9 if QUICK else 16
N_SESSIONS = 4 if QUICK else 8
N_FLEET = 2
N_SHARDS = 4
MAX_SCALING_GAP = 1.2
SEED = 20260807

JSON_PATH = Path(__file__).parent / "BENCH_shard.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _database() -> PPDatabase:
    """Distinct-phi Mallows sessions over a small labeled catalog.

    Deterministic (no rng), so forked fleet workers rebuild the exact
    same database instead of pickling it across.
    """
    movie_ids = list(range(1, N_MOVIES + 1))
    movie_rows = [
        (
            movie_id,
            "Thriller" if movie_id % 3 == 0 else "Drama",
            "short" if movie_id % 2 == 0 else "long",
        )
        for movie_id in movie_ids
    ]
    movies = ORelation("M", ["id", "genre", "duration"], movie_rows)
    sessions = {
        (f"w{index}",): Mallows(Ranking(movie_ids), 0.30 + 0.05 * index)
        for index in range(N_SESSIONS)
    }
    return PPDatabase(
        orelations=[movies],
        prelations=[PRelation("P", ["worker"], sessions)],
    )


def _queries() -> list[str]:
    """One general-class (two-hop chain) query per distinct session."""
    return [
        (
            f"P('w{index}'; m1; m2), P('w{index}'; m2; m3), "
            "M(m1, 'Thriller', _), M(m2, _, 'short'), M(m3, 'Drama', _)"
        )
        for index in range(N_SESSIONS)
    ]


def _fleet_worker(payload):
    """One fleet member: attach to the shard server, solve a slice."""
    address, queries = payload
    db = _database()
    service = PreferenceService(
        shard_address=address, backend="serial", max_workers=1
    )
    batch = service.evaluate_many(queries, db)
    service.cache.close()
    return (
        [result.probability for result in batch.results],
        batch.n_distinct_solves,
    )


def _run_fleet(address: str, slices: "list[list[str]]"):
    """Fork ``len(slices)`` workers against ``address``; gather results."""
    started = time.perf_counter()
    with ProcessPoolExecutor(max_workers=len(slices)) as pool:
        outcomes = list(
            pool.map(_fleet_worker, [(address, chunk) for chunk in slices])
        )
    seconds = time.perf_counter() - started
    probabilities = [p for chunk, _ in outcomes for p in chunk]
    n_solves = sum(count for _, count in outcomes)
    return probabilities, n_solves, seconds


def test_cache_shard(record_result, tmp_path):
    db = _database()
    queries = _queries()
    n_cpus = _usable_cpus()

    # Unsharded reference: the bit-identity anchor.
    plain = PreferenceService(backend="serial")
    started = time.perf_counter()
    reference = plain.evaluate_many(queries, db)
    serial_seconds = time.perf_counter() - started
    assert reference.n_distinct_solves == N_SESSIONS

    # Embedded shards: same process, sharded warm tier.
    embedded = PreferenceService(backend="serial", cache_shards=N_SHARDS)
    embedded_batch = embedded.evaluate_many(queries, db)
    assert embedded_batch.probabilities == reference.probabilities
    embedded.cache.close()

    # Attached fleet, disjoint slices, cold, with per-shard write-back.
    stem = tmp_path / "shard-fleet.sqlite"
    slices = [queries[index::N_FLEET] for index in range(N_FLEET)]
    expected = [
        p for chunk in slices for p in
        (reference.probabilities[queries.index(q)] for q in chunk)
    ]
    with ShardCacheServer(n_shards=N_SHARDS, cache_db=stem) as server:
        fleet_probs, fleet_solves, fleet_seconds = _run_fleet(
            server.address, slices
        )
    assert fleet_probs == expected
    assert fleet_solves == N_SESSIONS

    # Warm-fleet restart: a NEW server over the same shard files, NEW
    # workers — nothing may be solved again.
    with ShardCacheServer(n_shards=N_SHARDS, cache_db=stem) as server:
        warm_probs, warm_solves, warm_seconds = _run_fleet(
            server.address, slices
        )
    assert warm_probs == expected
    assert warm_solves == 0

    # Shared corpus: every worker races the FULL set against a fresh
    # server; fleet-wide single-flight admits one solve per session.
    with ShardCacheServer(n_shards=N_SHARDS) as server:
        shared_probs, shared_solves, shared_seconds = _run_fleet(
            server.address, [list(queries)] * N_FLEET
        )
    assert shared_probs == reference.probabilities * N_FLEET
    assert shared_solves == N_SESSIONS

    scaling = serial_seconds / max(fleet_seconds, 1e-12)
    required_scaling = N_FLEET / MAX_SCALING_GAP
    enforce_scaling = n_cpus >= 2 and not QUICK
    report = {
        "config": {
            "n_movies": N_MOVIES,
            "n_sessions": N_SESSIONS,
            "n_fleet": N_FLEET,
            "n_shards": N_SHARDS,
            "quick": QUICK,
            "n_cpus": n_cpus,
            "seed": SEED,
        },
        "scenarios": {
            "serial_unsharded": {"seconds": serial_seconds},
            "fleet_cold_disjoint": {
                "seconds": fleet_seconds,
                "distinct_solves": fleet_solves,
                "speedup_vs_serial": scaling,
            },
            "fleet_warm_restart": {
                "seconds": warm_seconds,
                "distinct_solves": warm_solves,
            },
            "fleet_shared_corpus": {
                "seconds": shared_seconds,
                "distinct_solves": shared_solves,
            },
        },
        "identity_bar": {
            "required": 0.0,
            "measured": 0.0,
            "enforced": True,
            "reason": None,
        },
        "warm_restart_bar": {
            "required": 0,
            "measured": warm_solves,
            "enforced": True,
            "reason": None,
        },
        "single_flight_bar": {
            "required": N_SESSIONS,
            "measured": shared_solves,
            "enforced": True,
            "reason": None,
        },
        "scaling_bar": {
            "required": required_scaling,
            "measured": scaling,
            "enforced": enforce_scaling,
            "reason": None if enforce_scaling else (
                "quick mode" if QUICK
                else "single-core host cannot express the bar"
            ),
        },
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    record_result(
        ExperimentResult(
            experiment="cache_shard",
            headers=["scenario", "distinct_solves", "seconds"],
            rows=[
                ["serial_unsharded", N_SESSIONS, serial_seconds],
                ["fleet_cold_disjoint", fleet_solves, fleet_seconds],
                ["fleet_warm_restart", warm_solves, warm_seconds],
                ["fleet_shared_corpus", shared_solves, shared_seconds],
            ],
            notes={
                "n_cpus": n_cpus,
                "fleet_speedup": round(scaling, 2),
                "scaling_bar_enforced": enforce_scaling,
            },
        )
    )

    if enforce_scaling:
        assert scaling >= required_scaling, (
            f"fleet of {N_FLEET} scaled {scaling:.2f}x over serial, "
            f"required {required_scaling:.2f}x on {n_cpus} CPUs"
        )
