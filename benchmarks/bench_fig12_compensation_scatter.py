"""Figure 12: compensation improves single-proposal accuracy on Benchmark-C.

Paper result: plotting relative error with compensation against without,
most instances fall below the diagonal; the largest improvements are on
instances whose uncompensated error is close to 100% (the single proposal
covers a tiny part of the posterior and the raw estimate collapses).

Scaled reproduction: m = 8 Benchmark-C with one proposal distribution; at
least half the instances must improve, and instances with near-total
uncompensated error must improve substantially.
"""

from repro.evaluation.experiments import figure_12


def test_figure_12_scatter(record_result, benchmark):
    result = benchmark.pedantic(
        lambda: figure_12(n_instances=10, m=8),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    assert result.notes["improved_fraction"] >= 0.5

    # Instances in the paper's lower-right corner: uncompensated error
    # above 90% should be reduced by compensation.
    corner = [
        row for row in result.rows if row[1] != float("inf") and row[1] > 0.9
    ]
    for row in corner:
        assert row[2] < row[1]
