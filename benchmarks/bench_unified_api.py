"""The unified query API on a mixed-kind repeated-template workload.

Not a paper figure: this benchmark covers the unified request/answer
surface of DESIGN.md Section 10.  The CrowdRank batch templates are served
as a *mixed-kind* workload — each base query asked both as a Boolean
``Probability`` and as a ``COUNT`` — and compared against evaluating the
same requests kind by kind on fresh services.

Acceptance bars:

* **mixed-kind dedup** — the mixed batch executes **>= 2x fewer** distinct
  solves than the kind-by-kind evaluation (a Count and a Probability of
  the same query share every solve, so the mixed batch costs the same as
  either kind alone);
* **bit-identity to the pre-redesign entry points** — ``count_session``,
  ``aggregate_session_attribute``, and ``most_probable_session`` (both
  strategies) are compared against verbatim reimplementations of the
  pre-redesign algorithms over the engine's primitives: expectations,
  per-session breakdowns, rankings, and effort counters must match
  exactly, and the unified ``answer()`` must agree with ``evaluate`` on
  every probability.

``BENCH_API_QUICK=1`` shrinks the workload for CI smoke runs.  Results are
written to ``benchmarks/BENCH_api.json`` (committed) and
``benchmarks/results/`` like every other benchmark.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.__main__ import batch_queries
from repro.api import answer
from repro.datasets.crowdrank import crowdrank_database
from repro.evaluation.experiments import ExperimentResult
from repro.plan.execute import session_upper_bound
from repro.query.aggregates import (
    aggregate_session_attribute,
    count_session,
    most_probable_session,
)
from repro.query.classify import analyze
from repro.query.compile import labeling_for_patterns
from repro.query.engine import compile_session_work, evaluate, solve_session
from repro.query.parser import parse_query
from repro.service import PreferenceService

QUICK = os.environ.get("BENCH_API_QUICK") == "1"
N_BASE_QUERIES = 8 if QUICK else 24
N_SESSIONS = 30 if QUICK else 80
N_MOVIES = 6 if QUICK else 8
MIN_DEDUP_RATIO = 2.0
DB_SEED = 7

JSON_PATH = Path(__file__).parent / "BENCH_api.json"


# ----------------------------------------------------------------------
# Verbatim pre-redesign reference implementations
# ----------------------------------------------------------------------


def reference_count(query, db):
    """count_session as it was before the unified API: evaluate + sum."""
    result = evaluate(query, db)
    per_session = [(e.key, e.probability) for e in result.per_session]
    return float(sum(p for _, p in per_session)), per_session


def reference_aggregate(query, db, relation, column, statistic, n_worlds, rng):
    """aggregate_session_attribute's pre-redesign numpy recipe, verbatim."""
    result = evaluate(query, db)
    attribute_relation = db.orelation(relation)
    column_index = attribute_relation.column_index(column)
    per_session = [
        (
            e.key,
            e.probability,
            float(
                attribute_relation.first_row_where({0: e.key[0]})[column_index]
            ),
        )
        for e in result.per_session
    ]
    probabilities = np.array([p for _, p, _ in per_session])
    values = np.array([v for _, _, v in per_session])
    weighted_total = float(probabilities @ values)
    probability_mass = float(probabilities.sum())
    weighted_average = (
        weighted_total / probability_mass if probability_mass > 0 else 0.0
    )
    if rng is None:
        rng = np.random.default_rng(0)
    draws = rng.random((n_worlds, len(per_session))) < probabilities
    any_satisfied = draws.any(axis=1)
    if statistic == "mean":
        counts = draws.sum(axis=1)
        sums = draws @ values
        with np.errstate(invalid="ignore"):
            world_values = np.where(
                counts > 0, sums / np.maximum(counts, 1), 0.0
            )
        satisfied_values = world_values[any_satisfied]
    else:
        satisfied_values = (draws @ values)[any_satisfied]
    expectation = (
        float(satisfied_values.mean()) if len(satisfied_values) else 0.0
    )
    return expectation, float(any_satisfied.mean()), weighted_average


def reference_topk(query, db, k, strategy, n_edges):
    """most_probable_session's pre-redesign loop, verbatim."""
    analysis = analyze(query, db)
    items = db.prelation(analysis.p_relation).items
    works = compile_session_work(query, db, analysis=analysis)
    labelings = {}

    def labeling_of(union):
        if union not in labelings:
            labelings[union] = labeling_for_patterns(union.patterns, items, db)
        return labelings[union]

    def exact(work):
        if work.union is None:
            return 0.0
        probability, _ = solve_session(
            work.model, labeling_of(work.union), work.union
        )
        return probability

    if strategy == "naive":
        scored = [(w.key, exact(w)) for w in works]
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return scored[:k], len(works), 0

    bounded = [
        (
            0.0
            if w.union is None
            else session_upper_bound(
                w.model, labeling_of(w.union), w.union, n_edges
            ),
            w,
        )
        for w in works
    ]
    bounded.sort(key=lambda pair: (-pair[0], repr(pair[1].key)))
    confirmed, n_exact = [], 0
    for bound, work in bounded:
        if len(confirmed) >= k:
            kth = sorted((p for _, p in confirmed), reverse=True)[k - 1]
            if kth >= bound:
                break
        confirmed.append((work.key, exact(work)))
        n_exact += 1
    confirmed.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return confirmed[:k], n_exact, len(works)


def test_unified_api(record_result):
    db = crowdrank_database(
        n_workers=N_SESSIONS, n_movies=N_MOVIES, seed=DB_SEED
    )
    texts = batch_queries(N_BASE_QUERIES)

    # --- kind-by-kind: each kind on its own fresh service --------------
    kind_started = time.perf_counter()
    prob_batch = PreferenceService().evaluate_many(texts, db)
    count_batch = PreferenceService().evaluate_many(
        [f"COUNT {text}" for text in texts], db
    )
    kind_seconds = time.perf_counter() - kind_started
    kind_by_kind_solves = (
        prob_batch.n_distinct_solves + count_batch.n_distinct_solves
    )

    # --- mixed-kind: one batch, one plan, cross-kind elimination -------
    mixed_requests = [
        request
        for text in texts
        for request in (text, f"COUNT {text}")
    ]
    mixed_started = time.perf_counter()
    mixed = PreferenceService().evaluate_many(mixed_requests, db)
    mixed_seconds = time.perf_counter() - mixed_started

    dedup_ratio = kind_by_kind_solves / max(mixed.n_distinct_solves, 1)
    assert dedup_ratio >= MIN_DEDUP_RATIO, (
        f"mixed-kind batch executed {mixed.n_distinct_solves} distinct "
        f"solves vs {kind_by_kind_solves} kind-by-kind; ratio "
        f"{dedup_ratio:.2f}x < {MIN_DEDUP_RATIO}x"
    )
    # The mixed batch costs no more than either kind alone.
    assert mixed.n_distinct_solves == prob_batch.n_distinct_solves

    # Mixed answers agree with the kind-by-kind batches, pairwise.
    for index, text in enumerate(texts):
        assert mixed[2 * index].value == prob_batch[index].probability
        assert mixed[2 * index + 1].value == count_batch[index].value

    # --- bit-identity of the deprecated shims --------------------------
    check_queries = [parse_query(text) for text in texts[:4]]
    for query in check_queries:
        expectation, per_session = reference_count(query, db)
        count = count_session(query, db)
        assert count.expectation == expectation
        assert count.per_session == per_session

        result = evaluate(query, db)
        assert answer(query, db).value == result.probability

        for strategy in ("naive", "upper_bound"):
            sessions, n_exact, n_upper = reference_topk(
                query, db, 3, strategy, 1
            )
            topk = most_probable_session(query, db, k=3, strategy=strategy)
            assert topk.sessions == sessions
            assert topk.n_exact_evaluations == n_exact
            assert topk.n_upper_bound_evaluations == n_upper

        expectation, probability_any, weighted_average = reference_aggregate(
            query, db, "V", "age", "mean", 10_000, None
        )
        aggregate = aggregate_session_attribute(query, db, "V", "age")
        assert aggregate.expectation == expectation
        assert aggregate.probability_any == probability_any
        assert aggregate.weighted_average == weighted_average

    report = {
        "config": {
            "n_base_queries": N_BASE_QUERIES,
            "n_sessions": N_SESSIONS,
            "n_movies": N_MOVIES,
            "quick": QUICK,
            "seed": DB_SEED,
        },
        "mixed_kind_dedup": {
            "kind_by_kind_solves": kind_by_kind_solves,
            "mixed_solves": mixed.n_distinct_solves,
            "required_ratio": MIN_DEDUP_RATIO,
            "measured_ratio": dedup_ratio,
            "enforced": True,
        },
        "bit_identity": {
            "count_session": True,
            "aggregate_session_attribute": True,
            "most_probable_session": True,
            "answer_vs_evaluate": True,
            "n_queries_checked": len(check_queries),
            "enforced": True,
        },
        "timings": {
            "kind_by_kind_seconds": kind_seconds,
            "mixed_seconds": mixed_seconds,
        },
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    record_result(
        ExperimentResult(
            experiment="unified_api",
            headers=["workload", "requests", "distinct_solves", "seconds"],
            rows=[
                [
                    "kind-by-kind (2 services)",
                    2 * N_BASE_QUERIES,
                    kind_by_kind_solves,
                    kind_seconds,
                ],
                [
                    "mixed-kind batch",
                    2 * N_BASE_QUERIES,
                    mixed.n_distinct_solves,
                    mixed_seconds,
                ],
            ],
            notes={
                "dedup_ratio": round(dedup_ratio, 2),
                "quick": QUICK,
            },
        )
    )
