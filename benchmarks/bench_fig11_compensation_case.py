"""Figure 11: typical vs atypical instances; the compensation ablation.

Paper result: on a typical Benchmark-A instance more proposal distributions
improve accuracy (11a); on an atypical instance the error is reduced mainly
by the compensation (11b) — with compensation disabled, accuracy improves
with proposals again but from a much worse starting point (11c).

Scaled reproduction: m = 10 Benchmark-A; the atypical instance is selected
as the one with the largest uncompensated single-proposal error.
"""

from repro.evaluation.experiments import figure_11


def test_figure_11_compensation_cases(record_result, benchmark):
    result = benchmark.pedantic(
        lambda: figure_11(d_values=(1, 5, 10, 20), n_instances=6, m=10),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    rows = {
        (row[0], row[1], row[2]): row[3] for row in result.rows
    }
    # 11c's shape: on the atypical instance, errors without compensation
    # start high at d = 1 and fall as proposals are added.
    assert rows[("atypical", "off", 1)] >= rows[("atypical", "off", 20)]
    # The compensation materially changes the atypical instance's error at
    # small d (the 11b vs 11c contrast).
    assert rows[("atypical", "on", 1)] != rows[("atypical", "off", 1)]
