"""Scalar vs vectorized kernel throughput (DESIGN.md Section 7).

Not a paper figure: this benchmark records the performance trajectory of
the ``repro.kernels`` layer.  For each hot path — batched Mallows (RIM)
sampling, constrained AMP sampling, and full rejection-sampling estimation
(sampling + vectorized predicate evaluation) — the scalar reference loop
and the batched kernel draw the same number of samples and their
throughputs (samples/second) are compared.  A cold/warm pair measures the
per-model memoized precompute: the first kernel call on a fresh model pays
the table construction, later calls reuse it.

Acceptance bar (full mode, n >= 2000 samples, m >= 20): the batched
kernels sustain at least 10x scalar throughput on AMP and rejection
sampling, and the seeded estimates of the two paths diverge by at most
1e-12.  ``BENCH_KERNELS_QUICK=1`` shrinks the workload for CI smoke runs
(the equivalence assertions still hold; the throughput bar relaxes to 3x
to stay robust on noisy shared runners).

Results are written to ``benchmarks/BENCH_kernels.json`` (committed, so
the perf trajectory is recorded) and to ``benchmarks/results/`` like every
other benchmark.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.evaluation.experiments import ExperimentResult
from repro.kernels import memoization_disabled, model_tables
from repro.kernels.predicates import subranking_predicate
from repro.patterns.labels import Labeling
from repro.patterns.matching import union_predicate
from repro.patterns.pattern import LabelPattern, PatternNode
from repro.patterns.union import PatternUnion
from repro.rankings.subranking import SubRanking
from repro.rim.amp import AMPSampler
from repro.rim.mallows import Mallows
from repro.rim.sampling import empirical_probability

QUICK = os.environ.get("BENCH_KERNELS_QUICK") == "1"
#: Acceptance bar: >= 10x in full mode; relaxed in CI quick mode where the
#: workload is too small to amortize per-call overhead reliably.
MIN_SPEEDUP = 3.0 if QUICK else 10.0
N_SAMPLES = 400 if QUICK else 2000
M = 20
PHI = 0.5
SEED = 20260730

JSON_PATH = Path(__file__).parent / "BENCH_kernels.json"


def _throughput(n_samples: int, seconds: float) -> float:
    return n_samples / max(seconds, 1e-12)


def _time(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _workload():
    items = list(range(M))
    model = Mallows(items, PHI)
    psi = SubRanking([M - 1, M // 2, 0])
    labeling = Labeling(
        {item: {"hi"} if item < M // 2 else {"lo"} for item in items}
    )
    union = PatternUnion(
        [
            LabelPattern(
                [
                    (
                        PatternNode("l", frozenset({"lo"})),
                        PatternNode("h", frozenset({"hi"})),
                    )
                ]
            )
        ]
    )
    return model, psi, labeling, union


def test_vectorized_kernel_throughput(record_result):
    model, psi, labeling, union = _workload()
    sampler = AMPSampler(model, psi)
    report = {
        "config": {
            "n_samples": N_SAMPLES,
            "m": M,
            "phi": PHI,
            "seed": SEED,
            "quick": QUICK,
            "min_speedup": MIN_SPEEDUP,
        }
    }

    # --- cold vs warm precompute -------------------------------------
    with memoization_disabled():
        cold_model = Mallows(list(range(M)), PHI)
        cold_seconds = _time(lambda: model_tables(cold_model))
    model_tables(model)  # prime the instance cache
    warm_seconds = _time(lambda: model_tables(model))
    report["precompute"] = {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
    }

    # --- batched RIM (Mallows) sampling -------------------------------
    scalar_seconds = _time(
        lambda: model.sample_many(
            N_SAMPLES, np.random.default_rng(SEED), vectorized=False
        )
    )
    vector_seconds = _time(
        lambda: model.sample_positions(N_SAMPLES, np.random.default_rng(SEED))
    )
    report["rim_sampling"] = {
        "scalar_samples_per_s": _throughput(N_SAMPLES, scalar_seconds),
        "vectorized_samples_per_s": _throughput(N_SAMPLES, vector_seconds),
        "speedup": scalar_seconds / max(vector_seconds, 1e-12),
    }

    # --- batched AMP sampling -----------------------------------------
    scalar_seconds = _time(
        lambda: sampler.sample_many(
            N_SAMPLES, np.random.default_rng(SEED), vectorized=False
        )
    )
    vector_seconds = _time(
        lambda: sampler.sample_positions(
            N_SAMPLES, np.random.default_rng(SEED)
        )
    )
    report["amp_sampling"] = {
        "scalar_samples_per_s": _throughput(N_SAMPLES, scalar_seconds),
        "vectorized_samples_per_s": _throughput(N_SAMPLES, vector_seconds),
        "speedup": scalar_seconds / max(vector_seconds, 1e-12),
    }

    # --- rejection estimation (sampling + predicate) ------------------
    predicate = union_predicate(union, labeling)
    scalar_estimate = None
    vector_estimate = None

    def run_scalar():
        nonlocal scalar_estimate
        scalar_estimate = empirical_probability(
            model,
            predicate,
            N_SAMPLES,
            np.random.default_rng(SEED),
            vectorized=False,
        )

    def run_vectorized():
        nonlocal vector_estimate
        vector_estimate = empirical_probability(
            model, predicate, N_SAMPLES, np.random.default_rng(SEED)
        )

    scalar_seconds = _time(run_scalar)
    vector_seconds = _time(run_vectorized)
    report["rejection"] = {
        "scalar_samples_per_s": _throughput(N_SAMPLES, scalar_seconds),
        "vectorized_samples_per_s": _throughput(N_SAMPLES, vector_seconds),
        "speedup": scalar_seconds / max(vector_seconds, 1e-12),
        "scalar_estimate": scalar_estimate.estimate,
        "vectorized_estimate": vector_estimate.estimate,
    }

    # --- seeded scalar/vectorized estimate equivalence ----------------
    estimate_divergence = abs(
        scalar_estimate.estimate - vector_estimate.estimate
    )
    subranking = subranking_predicate(psi)
    scalar_sub = empirical_probability(
        model,
        subranking,
        N_SAMPLES,
        np.random.default_rng(SEED),
        vectorized=False,
    )
    vector_sub = empirical_probability(
        model, subranking, N_SAMPLES, np.random.default_rng(SEED)
    )
    sub_divergence = abs(scalar_sub.estimate - vector_sub.estimate)
    report["equivalence"] = {
        "rejection_estimate_divergence": estimate_divergence,
        "subranking_estimate_divergence": sub_divergence,
    }

    # --- record --------------------------------------------------------
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    result = ExperimentResult(
        experiment="vectorized_kernels",
        headers=["path", "scalar_samples_per_s", "vectorized_samples_per_s",
                 "speedup"],
        rows=[
            [name,
             round(report[name]["scalar_samples_per_s"]),
             round(report[name]["vectorized_samples_per_s"]),
             round(report[name]["speedup"], 1)]
            for name in ("rim_sampling", "amp_sampling", "rejection")
        ],
        notes={
            "n_samples": N_SAMPLES,
            "m": M,
            "quick": QUICK,
            "precompute_cold_s": round(cold_seconds, 6),
            "precompute_warm_s": round(warm_seconds, 6),
        },
    )
    record_result(result)

    # Estimates are identical under the shared seed...
    assert estimate_divergence <= 1e-12
    assert sub_divergence <= 1e-12
    # ...and the batched kernels clear the throughput bar on the paths
    # the acceptance criteria name (AMP and rejection sampling).
    assert report["amp_sampling"]["speedup"] >= MIN_SPEEDUP
    assert report["rejection"]["speedup"] >= MIN_SPEEDUP
    assert report["rim_sampling"]["speedup"] >= MIN_SPEEDUP
    # The warm precompute path must not regress below the cold one.
    assert warm_seconds <= cold_seconds * 2 + 1e-3
