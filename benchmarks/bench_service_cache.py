"""Cold vs warm serving throughput with the cross-query solver cache.

Not a paper figure: this benchmark covers the serving layer built on top of
the reproduction (DESIGN.md, "The service layer"; EXPERIMENTS.md lists it
below the figure record).  A fixed family of CrowdRank-style queries — the
near-identical repeated traffic realistic preference workloads produce — is
evaluated twice through one ``PreferenceService``:

* the cold pass populates the cache (zero hits, one solve per distinct
  canonical (model, labeling, union) request);
* the warm pass re-compiles the queries but serves every session group
  from the cache (zero solves).

Acceptance bar: warm throughput >= 5x cold (locally typically 15-30x), and
cached probabilities identical (within 1e-12) to a cache-disabled engine
run on the same workload.
"""

from repro.__main__ import batch_queries
from repro.datasets.crowdrank import crowdrank_database
from repro.evaluation.experiments import ExperimentResult
from repro.query.engine import evaluate
from repro.query.parser import parse_query
from repro.service import PreferenceService

N_QUERIES = 8
N_SESSIONS = 100
N_MOVIES = 12
SEED = 7


def test_service_cache_cold_vs_warm(record_result):
    db = crowdrank_database(n_workers=N_SESSIONS, n_movies=N_MOVIES, seed=SEED)
    queries = batch_queries(N_QUERIES)
    service = PreferenceService(method="lifted", max_workers=1)

    cold = service.evaluate_many(queries, db)
    warm = service.evaluate_many(queries, db)

    cold_throughput = len(queries) / cold.seconds
    warm_throughput = len(queries) / warm.seconds
    speedup = warm_throughput / cold_throughput
    result = ExperimentResult(
        experiment="service_cache",
        headers=["pass", "queries", "distinct_solves", "cache_hits",
                 "seconds", "queries_per_s"],
        rows=[
            ["cold", len(queries), cold.n_distinct_solves, cold.n_cache_hits,
             cold.seconds, cold_throughput],
            ["warm", len(queries), warm.n_distinct_solves, warm.n_cache_hits,
             warm.seconds, warm_throughput],
        ],
        notes={"warm_vs_cold_speedup": round(speedup, 1)},
    )
    record_result(result)

    # The warm pass is pure cache traffic...
    assert cold.n_cache_hits == 0
    assert warm.n_distinct_solves == 0
    assert warm.n_cache_hits == cold.n_distinct_solves
    # ...and at least 5x the cold throughput (the acceptance bar).
    assert speedup >= 5.0

    # Cache-served probabilities are identical (within 1e-12) to a
    # cache-disabled engine run of the same workload.
    for query, cold_result, warm_result in zip(queries, cold, warm):
        reference = evaluate(parse_query(query), db, method="lifted")
        assert abs(cold_result.probability - reference.probability) <= 1e-12
        assert abs(warm_result.probability - reference.probability) <= 1e-12
