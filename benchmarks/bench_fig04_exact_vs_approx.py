"""Figure 4: exact solvers vs MIS-AMP-adaptive on a Polls two-label query.

Paper result: over Polls with 20-30 candidates, the two-label solver is the
fastest exact solver, the bipartite solver is next, the general solver is
slowest; MIS-AMP-adaptive is the most scalable, with 77%/93% of instances
under 1%/10% relative error.

Scaled reproduction: 8-12 candidates (the exact solvers are exponential;
the ordering and the accuracy profile are scale-invariant).
"""

from repro.datasets.polls import polls_database
from repro.evaluation.experiments import FIG4_QUERY, accuracy_table, figure_4
from repro.query.compile import labeling_for_patterns
from repro.query.engine import compile_session_work
from repro.query.parser import parse_query
from repro.solvers.two_label import two_label_probability


def test_figure_4_sweep(record_result, benchmark):
    result = figure_4(m_values=(8, 10, 12), sessions_per_m=4, n_voters=25)
    record_result(result)
    accuracy = accuracy_table(m=10, n_sessions=12, n_voters=30)
    record_result(accuracy)

    # Representative timed unit: the two-label solver on one session.
    db = polls_database(n_candidates=10, n_voters=10, seed=4)
    query = parse_query(FIG4_QUERY)
    work = next(
        w for w in compile_session_work(query, db) if w.union is not None
    )
    labeling = labeling_for_patterns(
        work.union.patterns, db.prelation("P").items, db
    )
    benchmark(
        lambda: two_label_probability(work.model, labeling, work.union)
    )


def test_figure_4_solver_ordering(record_result, benchmark):
    """The paper's ordering: two_label <= bipartite <= general (median)."""
    result = benchmark.pedantic(
        lambda: figure_4(m_values=(9,), sessions_per_m=4, n_voters=25),
        rounds=1,
        iterations=1,
    )
    medians = {row[1]: row[2] for row in result.rows}
    assert medians["two_label"] <= medians["bipartite"] * 1.5
    assert medians["bipartite"] <= medians["general"] * 1.5
    record_result(result)
