"""Scalar vs array-compiled DP solver cores (DESIGN.md Section 12).

Not a paper figure: this benchmark records the performance trajectory of
the ``repro.kernels.dp`` state-table engines that power the three exact
insertion DPs.  For each solver — two_label (Algorithm 3), bipartite
pruned (Algorithm 4), and the lifted relevant-item DP — one fig 5-7-scale
workload is solved by the scalar dict-of-tuples reference and by the
vectorized engine, and the wall times are compared.  A seeded corpus of
small instances is then solved by both paths under every solver option
(``merge_gaps``, pruned/basic, ``prune_dead``) and the probabilities must
be **bit-identical** — the engines replicate the scalar candidate order,
dedup order, and left-to-right accumulation exactly, so equality is exact,
not approximate.

Acceptance bar (full mode): >= 10x per solver on the scaled fig 5-7
workloads, zero probability divergence on the corpus.
``BENCH_DP_QUICK=1`` shrinks the workloads for CI smoke runs (the
bit-identity assertions still hold; the speedup bar relaxes to 2x to stay
robust on noisy shared runners).

Results are written to ``benchmarks/BENCH_dp.json`` (committed, so the
perf trajectory is recorded) and to ``benchmarks/results/`` like every
other benchmark.
"""

import json
import os
import time
from pathlib import Path

from repro.datasets.benchmarks import benchmark_a, benchmark_c, benchmark_d
from repro.evaluation.experiments import ExperimentResult
from repro.solvers.bipartite import bipartite_probability
from repro.solvers.lifted import lifted_probability
from repro.solvers.two_label import two_label_probability

QUICK = os.environ.get("BENCH_DP_QUICK") == "1"
#: Acceptance bar: >= 10x in full mode; relaxed in CI quick mode where the
#: workloads are too small to amortize per-call overhead reliably.
MIN_SPEEDUP = 2.0 if QUICK else 10.0

JSON_PATH = Path(__file__).parent / "BENCH_dp.json"


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def _two_label_workload():
    m, z = (20, 2) if QUICK else (40, 2)
    instance = next(
        iter(
            benchmark_d(
                m_values=(m,),
                patterns_per_union=(z,),
                items_per_label=(3,),
                instances_per_combo=1,
                seed=1,
            )
        )
    )
    return f"benchmark_d m={m} z={z}", instance, lambda vec: (
        two_label_probability(
            instance.model, instance.labeling, instance.union, vectorized=vec
        )
    )


def _bipartite_workload():
    m = 16 if QUICK else 20
    instance = next(
        iter(
            benchmark_c(
                m_values=(m,),
                patterns_per_union=(2,),
                labels_per_pattern=(3,),
                items_per_label=(3,),
                instances_per_combo=1,
                seed=2,
            )
        )
    )
    return f"benchmark_c m={m} z=2 q=3", instance, lambda vec: (
        bipartite_probability(
            instance.model,
            instance.labeling,
            instance.union,
            pruned=True,
            vectorized=vec,
        )
    )


def _lifted_workload():
    m, index = (9, 1) if QUICK else (11, 0)
    instance = benchmark_a(
        n_unions=4, m=m, items_per_label=2, seed=20200316
    )[index]
    return f"benchmark_a m={m}", instance, lambda vec: (
        lifted_probability(
            instance.model, instance.labeling, instance.union, vectorized=vec
        )
    )


def _equivalence_corpus():
    """Small seeded instances exercising every solver and option combo."""
    cases = []
    for instance in benchmark_d(
        m_values=(8, 10),
        patterns_per_union=(2,),
        items_per_label=(3,),
        instances_per_combo=2,
        seed=11,
    ):
        for merge_gaps in (True, False):
            cases.append(
                (
                    f"two_label[{instance.name}] merge_gaps={merge_gaps}",
                    lambda i=instance, g=merge_gaps, v=True: (
                        two_label_probability(
                            i.model, i.labeling, i.union,
                            merge_gaps=g, vectorized=v,
                        )
                    ),
                    lambda i=instance, g=merge_gaps: two_label_probability(
                        i.model, i.labeling, i.union,
                        merge_gaps=g, vectorized=False,
                    ),
                )
            )
    for index, instance in enumerate(
        benchmark_c(
            m_values=(8,),
            patterns_per_union=(2,),
            labels_per_pattern=(2,),
            items_per_label=(2,),
            instances_per_combo=2,
        )
    ):
        if index >= 2:
            break
        for merge_gaps in (True, False):
            for pruned in (True, False):
                cases.append(
                    (
                        f"bipartite[{instance.name}] "
                        f"merge_gaps={merge_gaps} pruned={pruned}",
                        lambda i=instance, g=merge_gaps, p=pruned: (
                            bipartite_probability(
                                i.model, i.labeling, i.union,
                                merge_gaps=g, pruned=p, vectorized=True,
                            )
                        ),
                        lambda i=instance, g=merge_gaps, p=pruned: (
                            bipartite_probability(
                                i.model, i.labeling, i.union,
                                merge_gaps=g, pruned=p, vectorized=False,
                            )
                        ),
                    )
                )
    for instance in benchmark_a(
        n_unions=2, m=8, items_per_label=2, seed=20200316
    ):
        for merge_gaps in (True, False):
            for prune_dead in (True, False):
                cases.append(
                    (
                        f"lifted[{instance.name}] "
                        f"merge_gaps={merge_gaps} prune_dead={prune_dead}",
                        lambda i=instance, g=merge_gaps, p=prune_dead: (
                            lifted_probability(
                                i.model, i.labeling, i.union,
                                merge_gaps=g, prune_dead=p, vectorized=True,
                            )
                        ),
                        lambda i=instance, g=merge_gaps, p=prune_dead: (
                            lifted_probability(
                                i.model, i.labeling, i.union,
                                merge_gaps=g, prune_dead=p, vectorized=False,
                            )
                        ),
                    )
                )
    return cases


def test_dp_engine_speedups_and_bit_identity(record_result):
    report = {"config": {"quick": QUICK, "min_speedup": MIN_SPEEDUP}}
    rows = []

    for solver, make in (
        ("two_label", _two_label_workload),
        ("bipartite[pruned]", _bipartite_workload),
        ("lifted", _lifted_workload),
    ):
        workload, _instance, solve = make()
        scalar_seconds, scalar = _timed(lambda: solve(False))
        vector_seconds, vector = _timed(lambda: solve(True))
        speedup = scalar_seconds / max(vector_seconds, 1e-12)
        report[solver] = {
            "workload": workload,
            "scalar_seconds": scalar_seconds,
            "vectorized_seconds": vector_seconds,
            "speedup": speedup,
            "probability": vector.probability,
            "bit_identical": vector.probability == scalar.probability,
            "peak_states": vector.stats.get("peak_states"),
        }
        rows.append([solver, workload, round(scalar_seconds, 3),
                     round(vector_seconds, 3), round(speedup, 1)])

    # --- bit-identity over the seeded corpus ---------------------------
    divergent = []
    corpus = _equivalence_corpus()
    for name, run_vectorized, run_scalar in corpus:
        vector = run_vectorized()
        scalar = run_scalar()
        if vector.probability != scalar.probability:
            divergent.append(name)
    report["equivalence_corpus"] = {
        "cases": len(corpus),
        "divergent": divergent,
    }

    # --- record ---------------------------------------------------------
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    record_result(
        ExperimentResult(
            experiment="dp_kernels",
            headers=["solver", "workload", "scalar_s", "vectorized_s",
                     "speedup"],
            rows=rows,
            notes={
                "quick": QUICK,
                "min_speedup": MIN_SPEEDUP,
                "equivalence_cases": len(corpus),
            },
        )
    )

    # Probabilities are bit-identical on every corpus case and on the
    # fig-scale workloads themselves...
    assert not divergent
    for solver in ("two_label", "bipartite[pruned]", "lifted"):
        assert report[solver]["bit_identical"], solver
    # ...and every engine clears the speedup bar.
    for solver in ("two_label", "bipartite[pruned]", "lifted"):
        assert report[solver]["speedup"] >= MIN_SPEEDUP, (
            solver,
            report[solver]["speedup"],
        )
