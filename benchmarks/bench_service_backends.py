"""Execution backends and the persistent cache tier under an exact batch.

Not a paper figure: this benchmark covers PR 3 of the serving layer
(DESIGN.md, "Executors, persistence, planning").  A batch of general-class
exact solves over sessions with *distinct* Mallows models — so neither the
within-batch grouping nor the cache can collapse the work — is served cold
through each execution backend:

* ``serial`` — the baseline loop;
* ``thread`` — a thread pool (roughly serial for the GIL-bound DP solvers);
* ``process`` — a process pool shipping canonical ``SolveTask``
  descriptors, the backend that actually scales the solves across cores.

A second scenario measures the persistent tier: a service with a SQLite
``cache_db`` serves the batch cold, is discarded, and a brand-new service
over the same file serves the same batch again — the restart must perform
**zero** solves (``n_distinct_solves == 0``), entirely from disk.

Acceptance bars:

* every backend and the persistent warm restart return probabilities
  bit-identical to sequential ``engine.evaluate``;
* the warm restart performs zero solves;
* on a multi-core host (>= 2 usable CPUs, full mode) the process backend
  is >= 2x faster than serial.  The bar is *physically unmeasurable* on a
  single-core host, so it is enforced exactly when the host can express
  it; the committed ``BENCH_backends.json`` records the core count and
  whether the bar was enforced.

``BENCH_BACKENDS_QUICK=1`` shrinks the workload for CI smoke runs.
Results are written to ``benchmarks/BENCH_backends.json`` (committed) and
``benchmarks/results/`` like every other benchmark.
"""

import json
import os
import time
from pathlib import Path

from repro.db.database import PPDatabase
from repro.db.schema import ORelation, PRelation
from repro.evaluation.experiments import ExperimentResult
from repro.query.engine import evaluate
from repro.query.parser import parse_query
from repro.rankings.permutation import Ranking
from repro.rim.mallows import Mallows
from repro.service import PreferenceService

QUICK = os.environ.get("BENCH_BACKENDS_QUICK") == "1"
# 16 movies keeps the cold batch at a few seconds of real DP work now
# that the array-compiled solver cores landed — enough for the process
# bar to measure scaling rather than process-pool startup.
N_MOVIES = 9 if QUICK else 16
N_SESSIONS = 4 if QUICK else 8
MIN_PROCESS_SPEEDUP = 2.0
SEED = 20260730

JSON_PATH = Path(__file__).parent / "BENCH_backends.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _database() -> PPDatabase:
    """Distinct-phi Mallows sessions over a small labeled catalog.

    Each session's model differs (phi = 0.30, 0.35, ...), so the batch's
    general-class query compiles into one distinct exact solve per session
    — the worst case for grouping and the honest case for comparing
    execution backends.
    """
    movie_ids = list(range(1, N_MOVIES + 1))
    movie_rows = [
        (
            movie_id,
            "Thriller" if movie_id % 3 == 0 else "Drama",
            "short" if movie_id % 2 == 0 else "long",
        )
        for movie_id in movie_ids
    ]
    movies = ORelation("M", ["id", "genre", "duration"], movie_rows)
    sessions = {
        (f"w{index}",): Mallows(Ranking(movie_ids), 0.30 + 0.05 * index)
        for index in range(N_SESSIONS)
    }
    return PPDatabase(
        orelations=[movies],
        prelations=[PRelation("P", ["worker"], sessions)],
    )


#: A two-hop (three-node chain) query: general solver class.
QUERY = (
    "P(w; m1; m2), P(w; m2; m3), M(m1, 'Thriller', _), "
    "M(m2, _, 'short'), M(m3, 'Drama', _)"
)


def _serve(db, backend: str, workers: int, cache_db=None):
    service = PreferenceService(
        backend=backend, max_workers=workers, cache_db=cache_db
    )
    started = time.perf_counter()
    batch = service.evaluate_many([QUERY], db)
    return batch, time.perf_counter() - started


def test_service_backends(record_result, tmp_path):
    db = _database()
    n_cpus = _usable_cpus()
    workers = max(2, min(4, n_cpus))
    reference = evaluate(parse_query(QUERY), db)

    timings = {}
    for backend in ("serial", "thread", "process"):
        batch, seconds = _serve(db, backend, workers)
        timings[backend] = seconds
        assert batch.n_distinct_solves == N_SESSIONS
        # Bit-identical to the sequential engine, whichever backend ran.
        assert batch[0].probability == reference.probability

    # Persistent tier: cold pass writes through, then a *new* service over
    # the same file restarts warm.
    cache_db = tmp_path / "backends.sqlite"
    cold_batch, cold_seconds = _serve(db, "serial", workers, cache_db=cache_db)
    warm_batch, warm_seconds = _serve(db, "serial", workers, cache_db=cache_db)
    assert cold_batch.n_distinct_solves == N_SESSIONS
    assert warm_batch.n_distinct_solves == 0
    assert warm_batch.n_cache_hits == N_SESSIONS
    assert warm_batch[0].probability == reference.probability

    process_speedup = timings["serial"] / max(timings["process"], 1e-12)
    restart_speedup = cold_seconds / max(warm_seconds, 1e-12)
    enforce_bar = n_cpus >= 2 and not QUICK
    report = {
        "config": {
            "n_movies": N_MOVIES,
            "n_sessions": N_SESSIONS,
            "quick": QUICK,
            "n_cpus": n_cpus,
            "workers": workers,
            "seed": SEED,
        },
        "backends": {
            name: {"seconds": seconds, "speedup_vs_serial": timings["serial"] / max(seconds, 1e-12)}
            for name, seconds in timings.items()
        },
        "persistent_restart": {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cold_distinct_solves": cold_batch.n_distinct_solves,
            "warm_distinct_solves": warm_batch.n_distinct_solves,
            "restart_speedup": restart_speedup,
        },
        "process_speedup_bar": {
            "required": MIN_PROCESS_SPEEDUP,
            "measured": process_speedup,
            "enforced": enforce_bar,
            "reason": None if enforce_bar else (
                "quick mode" if QUICK else "single-core host cannot express the bar"
            ),
        },
        "equivalence": {"max_divergence_vs_engine": 0.0},
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    rows = [
        [name, N_SESSIONS, timings[name], timings["serial"] / max(timings[name], 1e-12)]
        for name in ("serial", "thread", "process")
    ]
    rows.append(["persistent(warm)", 0, warm_seconds, restart_speedup])
    record_result(
        ExperimentResult(
            experiment="service_backends",
            headers=["backend", "distinct_solves", "seconds", "speedup_vs_serial"],
            rows=rows,
            notes={
                "n_cpus": n_cpus,
                "process_speedup": round(process_speedup, 2),
                "bar_enforced": enforce_bar,
            },
        )
    )

    if enforce_bar:
        assert process_speedup >= MIN_PROCESS_SPEEDUP, (
            f"process backend {process_speedup:.2f}x vs serial, "
            f"required {MIN_PROCESS_SPEEDUP}x on {n_cpus} CPUs"
        )
