"""Figure 5: general-solver subroutine time vs conjunction size (Benchmark-A).

Paper result: the running time of the single-pattern solver grows
exponentially with the number of patterns in an inclusion-exclusion
conjunction (about 10 s at size 1 to 10^5 s at size 3 on m = 15).

Scaled reproduction: m = 8, 1 item per label; same exponential growth.
"""

from repro.datasets.benchmarks import benchmark_a
from repro.evaluation.experiments import figure_5
from repro.patterns.pattern import pattern_conjunction
from repro.solvers.lifted import lifted_probability


def test_figure_5_sweep(record_result, benchmark):
    result = figure_5(n_unions=3, m=8, items_per_label=1)
    record_result(result)

    # Growth must be monotone in the conjunction size (the figure's shape).
    means = {row[0]: row[1] for row in result.rows}
    assert means[1] < means[2] < means[3]

    # Representative timed unit: one size-2 conjunction.
    instance = benchmark_a(n_unions=1, m=8, items_per_label=1, seed=5)[0]
    conjunction = pattern_conjunction(list(instance.union.patterns[:2]))
    benchmark.pedantic(
        lambda: lifted_probability(
            instance.model, instance.labeling, conjunction
        ),
        rounds=3,
        iterations=1,
    )
