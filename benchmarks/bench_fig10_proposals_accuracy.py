"""Figure 10: MIS-AMP-lite accuracy vs number of proposal distributions.

Paper result: on Benchmark-A and Benchmark-C (3 patterns/union, 3
labels/pattern, 3 items/label) the relative-error distribution tightens as
the number of proposal distributions grows from 1 to 20, plateauing around
20; overall errors are low.

Scaled reproduction: m = 10 (A) and m = 8 (C); the median error at d = 20
must improve on d = 1.
"""

import numpy as np

from repro.approx.lite import LiteWorkspace, mis_amp_lite
from repro.datasets.benchmarks import benchmark_a
from repro.evaluation.experiments import figure_10


def test_figure_10a_benchmark_a(record_result, benchmark):
    result = figure_10(
        benchmark="a", d_values=(1, 2, 5, 10, 20), n_instances=6, m=10
    )
    record_result(result)
    medians = {row[0]: row[2] for row in result.rows}
    assert medians[20] <= medians[1]

    instance = benchmark_a(n_unions=1, m=10, items_per_label=2, seed=10)[0]
    workspace = LiteWorkspace(instance.model, instance.labeling, instance.union)
    rng = np.random.default_rng(10)
    benchmark.pedantic(
        lambda: mis_amp_lite(
            instance.model, instance.labeling, instance.union,
            n_proposals=10, n_per_proposal=300, rng=rng, workspace=workspace,
        ),
        rounds=3,
        iterations=1,
    )


def test_figure_10b_benchmark_c(record_result, benchmark):
    result = benchmark.pedantic(
        lambda: figure_10(
            benchmark="c", d_values=(1, 2, 5, 10, 20), n_instances=6, m=8
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    medians = {row[0]: row[2] for row in result.rows}
    assert medians[20] <= medians[1]
