"""Figure 6: two-label solver completion heatmap on Benchmark-D.

Paper result: the fraction of instances finishing within 10 minutes falls
from 100% (m = 20, z = 2) to 3% (m = 60, z = 5): the solver is sensitive to
both the model size and the union size.

Scaled reproduction: m in 10..22, 3-second budget (``TIME_BUDGET``,
surfaced in the recorded result's notes); the completion fraction must be
non-increasing along both axes (up to sampling noise, checked on the
corners).
"""

from repro.datasets.benchmarks import benchmark_d
from repro.evaluation.experiments import figure_6
from repro.solvers.two_label import two_label_probability

#: One source of truth for the scaled-down budget: the docstring, the
#: experiment call, and the recorded result config all reference it.
TIME_BUDGET = 3.0


def test_figure_6_heatmap(record_result, benchmark):
    result = figure_6(
        m_values=(10, 14, 18, 22),
        patterns_per_union=(2, 3, 4, 5),
        instances_per_cell=2,
        time_budget=TIME_BUDGET,
    )
    assert result.notes["time_budget"] == TIME_BUDGET
    record_result(result)

    fractions = {(row[0], row[1]): row[2] for row in result.rows}
    # Corner ordering: the easiest cell completes at least as often as the
    # hardest cell.
    assert fractions[(10, 2)] >= fractions[(22, 5)]

    # Representative timed unit: one easy instance (m=10, z=2).
    instance = next(
        iter(
            benchmark_d(
                m_values=(10,),
                patterns_per_union=(2,),
                items_per_label=(3,),
                instances_per_combo=1,
                seed=6,
            )
        )
    )
    benchmark.pedantic(
        lambda: two_label_probability(
            instance.model, instance.labeling, instance.union
        ),
        rounds=3,
        iterations=1,
    )
