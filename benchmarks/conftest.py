"""Shared helpers for the benchmark suite.

Every benchmark prints the same rows/series the paper's figure reports
(scaled down — see EXPERIMENTS.md) and saves them under
``benchmarks/results/``.  The pytest-benchmark fixture times one
representative unit of work per figure.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.evaluation.harness import format_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_result(capsys):
    """Print an ExperimentResult table and save it to benchmarks/results/."""

    def _record(result):
        table = format_table(result.headers, result.rows)
        text = f"== {result.experiment} ==\n{table}\n"
        if result.notes:
            text += f"notes: {result.notes}\n"
        with capsys.disabled():
            print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.experiment}.txt").write_text(text)
        return result

    return _record
