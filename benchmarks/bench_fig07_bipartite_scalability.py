"""Figure 7: bipartite-solver scalability on Benchmark-C.

Paper result: runtime increases very fast both with the number of items m
and with the number of labels per pattern (7a; 3 patterns/union fixed) and
with the number of patterns per union (7b; 3 labels/pattern fixed) —
complexity O(m^{qz}) — but the solver is practical for lower m.

Scaled reproduction: m in 6..10, 1 item per label.
"""

from repro.datasets.benchmarks import benchmark_c
from repro.evaluation.experiments import figure_7a, figure_7b
from repro.solvers.bipartite import bipartite_probability


def test_figure_7a_labels_axis(record_result, benchmark):
    result = figure_7a(
        m_values=(6, 8, 10),
        labels_per_pattern=(2, 3, 4),
        instances_per_cell=2,
        time_budget=20.0,
    )
    record_result(result)
    medians = {(row[0], row[1]): row[2] for row in result.rows}
    # Runtime grows with both axes (corner comparison).
    assert medians[(6, 2)] <= medians[(10, 4)]

    instance = next(
        iter(
            benchmark_c(
                m_values=(8,),
                patterns_per_union=(3,),
                labels_per_pattern=(3,),
                items_per_label=(1,),
                instances_per_combo=1,
                seed=7,
            )
        )
    )
    benchmark.pedantic(
        lambda: bipartite_probability(
            instance.model, instance.labeling, instance.union
        ),
        rounds=3,
        iterations=1,
    )


def test_figure_7b_patterns_axis(record_result, benchmark):
    result = benchmark.pedantic(
        lambda: figure_7b(
            m_values=(6, 8, 10),
            patterns_per_union=(1, 2, 3),
            instances_per_cell=2,
            time_budget=20.0,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)
    medians = {(row[0], row[1]): row[2] for row in result.rows}
    assert medians[(6, 1)] <= medians[(10, 3)]
