"""Figure 13: MIS-AMP-adaptive scalability on Benchmark-B.

Paper result: (a) the proposal-construction overhead rises sharply with the
number of labels per pattern (and items per label); (b) once proposals are
built, the sampling stage converges quickly — its time grows only
moderately with m and is largely insensitive to the label count.

Scaled reproduction: m = 30 for the overhead sweep, m in 20..100 for the
convergence sweep.
"""

from repro.evaluation.experiments import figure_13a, figure_13b


def test_figure_13a_overhead(record_result, benchmark):
    result = benchmark.pedantic(
        lambda: figure_13a(
            labels_per_pattern=(3, 4, 5),
            items_per_label=(3, 5),
            m=30,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    overhead = {(row[0], row[1]): row[2] for row in result.rows}
    # Overhead grows with the number of labels (compare at items/label=3).
    assert overhead[(3, 3)] <= overhead[(5, 3)]
    # And with items per label (compare at 4 labels).
    assert overhead[(4, 3)] <= overhead[(4, 5)]


def test_figure_13b_convergence(record_result, benchmark):
    result = benchmark.pedantic(
        lambda: figure_13b(
            m_values=(20, 50, 100),
            labels_per_pattern=(3, 4),
            n_per_proposal=100,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    sampling = {(row[0], row[1]): row[2] for row in result.rows}
    # Sampling time grows moderately with m: far less than the m^2 per-sample
    # cost ratio would suggest if proposals were rebuilt each time.
    assert sampling[(100, 3)] < 100 * max(sampling[(20, 3)], 1e-3)
