"""The query planner on an overlapping repeated-template workload.

Not a paper figure: this benchmark covers PR 4, the plan IR + optimizer of
DESIGN.md Section 9.  A 50-query CrowdRank-style workload (the batch
templates cycled over overlapping genre/sex/duration parameters, so many
queries compile to shared (model, union) solves) is served three ways:

* **naive** — per-query ``evaluate(..., group_sessions=False)``: one solve
  per satisfiable session, the pre-Section-6.4 baseline;
* **unoptimized plan** — per-query ``evaluate(..., optimize=False)``: the
  plan executor without any optimizer pass, the equivalence reference;
* **planned batch** — ``PreferenceService.evaluate_many`` over the whole
  workload: one plan, canonical common-solve elimination across sessions
  and queries, LPT-ordered frontier.

Acceptance bars:

* optimized evaluation is **bit-identical** to the unoptimized plan —
  probabilities and per-session solver attributions — for every query;
* the planner executes **>= 2x fewer** distinct solves than the naive
  baseline over the workload;
* building + optimizing + rendering ``explain()`` for the whole workload
  costs **< 5%** of the naive workload's solve time (enforced in full
  mode; recorded in quick mode, where the denominator is too small to be
  stable).

``BENCH_PLANNER_QUICK=1`` shrinks the workload for CI smoke runs.
Results are written to ``benchmarks/BENCH_planner.json`` (committed) and
``benchmarks/results/`` like every other benchmark.
"""

import json
import os
import time
from pathlib import Path

from repro.__main__ import batch_queries
from repro.datasets.crowdrank import crowdrank_database
from repro.evaluation.experiments import ExperimentResult
from repro.plan import build_plan, optimize_plan
from repro.query.engine import evaluate
from repro.query.parser import parse_query
from repro.service import PreferenceService

QUICK = os.environ.get("BENCH_PLANNER_QUICK") == "1"
N_QUERIES = 12 if QUICK else 50
N_SESSIONS = 30 if QUICK else 80
N_MOVIES = 6 if QUICK else 8
MIN_ELIMINATION_RATIO = 2.0
MAX_EXPLAIN_OVERHEAD = 0.05
DB_SEED = 7

JSON_PATH = Path(__file__).parent / "BENCH_planner.json"


def _signature(result):
    return [
        (evaluation.key, evaluation.probability, evaluation.solver)
        for evaluation in result.per_session
    ]


def test_query_planner(record_result):
    db = crowdrank_database(
        n_workers=N_SESSIONS, n_movies=N_MOVIES, seed=DB_SEED
    )
    texts = batch_queries(N_QUERIES)
    queries = [parse_query(text) for text in texts]

    # --- naive baseline: one solve per satisfiable session ------------
    naive_started = time.perf_counter()
    naive_results = [
        evaluate(query, db, group_sessions=False) for query in queries
    ]
    naive_seconds = time.perf_counter() - naive_started
    naive_solves = sum(result.n_solver_calls for result in naive_results)

    # --- unoptimized plan: the bit-identity reference ------------------
    unoptimized = [evaluate(query, db, optimize=False) for query in queries]

    # --- optimized per-query evaluation (optimizer on by default) ------
    optimized = [evaluate(query, db) for query in queries]
    for raw, planned in zip(unoptimized, optimized):
        assert planned.probability == raw.probability
        assert _signature(planned) == _signature(raw)
    # The naive baseline agrees too (same solves, independent grouping).
    for raw, planned in zip(naive_results, optimized):
        assert planned.probability == raw.probability

    # --- planned batch: elimination across sessions AND queries --------
    service = PreferenceService()
    batch_started = time.perf_counter()
    batch = service.evaluate_many(texts, db)
    batch_seconds = time.perf_counter() - batch_started
    for sequential, result in zip(optimized, batch):
        assert result.probability == sequential.probability
        assert _signature(result) == _signature(sequential)

    elimination_ratio = naive_solves / max(batch.n_distinct_solves, 1)
    assert elimination_ratio >= MIN_ELIMINATION_RATIO, (
        f"planner executed {batch.n_distinct_solves} distinct solves vs "
        f"{naive_solves} naive; ratio {elimination_ratio:.2f}x < "
        f"{MIN_ELIMINATION_RATIO}x"
    )

    # --- explain overhead: plan + optimize + render, no execution ------
    explain_started = time.perf_counter()
    plan = build_plan(queries, db)
    optimize_plan(plan, canonical=True)
    explain_text = plan.explain()
    explain_seconds = time.perf_counter() - explain_started
    assert "Solve #" in explain_text
    overhead = explain_seconds / max(naive_seconds, 1e-12)
    if not QUICK:
        assert overhead < MAX_EXPLAIN_OVERHEAD, (
            f"explain took {explain_seconds:.3f}s vs {naive_seconds:.3f}s "
            f"of naive solve time ({overhead:.1%} >= "
            f"{MAX_EXPLAIN_OVERHEAD:.0%})"
        )

    stats = service.stats()
    report = {
        "config": {
            "n_queries": N_QUERIES,
            "n_sessions": N_SESSIONS,
            "n_movies": N_MOVIES,
            "quick": QUICK,
            "seed": DB_SEED,
        },
        "solves": {
            "naive": naive_solves,
            "planned": plan.n_solves_planned,
            "eliminated": plan.n_solves_eliminated,
            "frontier": len(plan.solve_order),
            "executed_distinct": batch.n_distinct_solves,
        },
        "elimination_ratio": {
            "required": MIN_ELIMINATION_RATIO,
            "measured": elimination_ratio,
            "enforced": True,
        },
        "explain_overhead": {
            "required": MAX_EXPLAIN_OVERHEAD,
            "measured": overhead,
            "explain_seconds": explain_seconds,
            "naive_seconds": naive_seconds,
            "enforced": not QUICK,
            "reason": None if not QUICK else "quick mode: denominator too small",
        },
        "equivalence": {
            "bit_identical_to_unoptimized": True,
            "bit_identical_batch_vs_sequential": True,
        },
        "timings": {
            "naive_seconds": naive_seconds,
            "batch_seconds": batch_seconds,
        },
        "cache_stats": {
            name: stats[name]
            for name in (
                "n_solves_planned",
                "n_solves_eliminated",
                "n_passes_applied",
            )
        },
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    record_result(
        ExperimentResult(
            experiment="query_planner",
            headers=["strategy", "distinct_solves", "seconds"],
            rows=[
                ["naive(group_sessions=False)", naive_solves, naive_seconds],
                ["planned batch", batch.n_distinct_solves, batch_seconds],
                ["explain(no execution)", 0, explain_seconds],
            ],
            notes={
                "elimination_ratio": round(elimination_ratio, 2),
                "explain_overhead": round(overhead, 4),
                "quick": QUICK,
            },
        )
    )
