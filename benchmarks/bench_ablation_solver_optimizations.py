"""Ablations for the design choices called out in DESIGN.md Section 4.

* bipartite solver: Algorithm 4's satisfied/violated/uncertain pruning vs
  the basic full-tracking DP;
* lifted solver: gap merging and dead-state pruning on/off;
* two-label solver: gap merging on/off.

Each ablation verifies the optimized and unoptimized variants agree and
reports their runtimes; the optimized variants must not be substantially
slower and are typically much faster.
"""


from repro.datasets.benchmarks import benchmark_a, benchmark_c, benchmark_d
from repro.evaluation.experiments_exact import ExperimentResult
from repro.evaluation.harness import Timer
from repro.solvers.bipartite import bipartite_probability
from repro.solvers.lifted import lifted_probability
from repro.solvers.two_label import two_label_probability


def test_bipartite_pruning_ablation(record_result, benchmark):
    result = ExperimentResult(
        experiment="ablation_bipartite_pruning",
        headers=["instance", "pruned_s", "basic_s", "speedup", "agree"],
    )
    instances = list(
        benchmark_c(
            m_values=(8, 10),
            patterns_per_union=(2,),
            labels_per_pattern=(3,),
            items_per_label=(2,),
            instances_per_combo=2,
            seed=41,
        )
    )
    speedups = []
    for instance in instances:
        with Timer() as pruned_timer:
            pruned = bipartite_probability(
                instance.model, instance.labeling, instance.union
            )
        with Timer() as basic_timer:
            basic = bipartite_probability(
                instance.model, instance.labeling, instance.union,
                pruned=False,
            )
        agree = abs(pruned.probability - basic.probability) < 1e-9
        speedup = basic_timer.seconds / max(pruned_timer.seconds, 1e-9)
        speedups.append(speedup)
        result.rows.append(
            [instance.name, pruned_timer.seconds, basic_timer.seconds,
             speedup, agree]
        )
        assert agree
    record_result(result)

    instance = instances[0]
    benchmark.pedantic(
        lambda: bipartite_probability(
            instance.model, instance.labeling, instance.union
        ),
        rounds=3,
        iterations=1,
    )


def test_lifted_optimizations_ablation(record_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="ablation_lifted_optimizations",
        headers=["instance", "full_s", "no_gap_merge_s", "no_dead_prune_s", "agree"],
    )
    instances = benchmark_a(n_unions=3, m=8, items_per_label=1, seed=42)
    for instance in instances:
        union = instance.union
        with Timer() as full_timer:
            full = lifted_probability(instance.model, instance.labeling, union)
        with Timer() as no_merge_timer:
            no_merge = lifted_probability(
                instance.model, instance.labeling, union, merge_gaps=False
            )
        with Timer() as no_prune_timer:
            no_prune = lifted_probability(
                instance.model, instance.labeling, union, prune_dead=False
            )
        agree = (
            abs(full.probability - no_merge.probability) < 1e-9
            and abs(full.probability - no_prune.probability) < 1e-9
        )
        result.rows.append(
            [instance.name, full_timer.seconds, no_merge_timer.seconds,
             no_prune_timer.seconds, agree]
        )
        assert agree
    record_result(result)


def test_two_label_gap_merge_ablation(record_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="ablation_two_label_gap_merge",
        headers=["instance", "merged_s", "plain_s", "speedup", "agree"],
    )
    instances = list(
        benchmark_d(
            m_values=(20,),
            patterns_per_union=(2, 3),
            items_per_label=(3,),
            instances_per_combo=2,
            seed=43,
        )
    )
    speedups = []
    for instance in instances:
        with Timer() as merged_timer:
            merged = two_label_probability(
                instance.model, instance.labeling, instance.union
            )
        with Timer() as plain_timer:
            plain = two_label_probability(
                instance.model, instance.labeling, instance.union,
                merge_gaps=False,
            )
        agree = abs(merged.probability - plain.probability) < 1e-9
        speedup = plain_timer.seconds / max(merged_timer.seconds, 1e-9)
        speedups.append(speedup)
        result.rows.append(
            [instance.name, merged_timer.seconds, plain_timer.seconds,
             speedup, agree]
        )
        assert agree
    record_result(result)
    # Gap merging should help on average (items serving no label dominate).
    assert sum(speedups) / len(speedups) > 1.0


def test_memoized_precompute_ablation(record_result, benchmark):
    """Per-model precompute on/off (DESIGN.md Section 7 memoization contract).

    The workload repeats what MIS-AMP-style traffic does: construct
    same-(m, phi) Mallows models (recentered proposals), run an exact
    solver, and draw a sample batch.  With memoization off, every
    construction rebuilds the (m, phi) insertion matrix and every solver
    and sampler call rebuilds the prefix-sum tables — the pre-kernel
    behavior; with it on, the parameter tables are shared and the derived
    tables are built once per model.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.kernels import clear_caches, memoization_disabled
    from repro.rankings.permutation import Ranking as _Ranking
    from repro.rim.mallows import Mallows as _Mallows
    import numpy as _np

    m = 20
    phi = 0.6
    repeats = 20
    instance = next(
        iter(
            benchmark_d(
                m_values=(m,),
                patterns_per_union=(2,),
                items_per_label=(3,),
                instances_per_combo=1,
                seed=44,
            )
        )
    )

    def workload():
        # Same-(m, phi) model churn + solver + sampler traffic.
        base = _Mallows(list(range(m)), phi)
        probability = two_label_probability(
            instance.model, instance.labeling, instance.union
        ).probability
        rng = _np.random.default_rng(44)
        for _ in range(repeats):
            recentered = base.recenter(
                _Ranking(rng.permutation(m).tolist())
            )
            recentered.sample_positions(50, rng)
        return probability

    with memoization_disabled():
        with Timer() as off_timer:
            p_off = workload()
    clear_caches()
    with Timer() as cold_timer:
        p_cold = workload()  # first memoized pass: fills the caches
    with Timer() as warm_timer:
        p_warm = workload()  # steady state: all parameter tables shared

    agree = abs(p_off - p_cold) < 1e-9 and abs(p_off - p_warm) < 1e-9
    speedup = off_timer.seconds / max(warm_timer.seconds, 1e-9)
    result = ExperimentResult(
        experiment="ablation_memoized_precompute",
        headers=["memoization", "seconds", "speedup_vs_off", "agree"],
        rows=[
            ["off", off_timer.seconds, 1.0, agree],
            ["on_cold", cold_timer.seconds,
             off_timer.seconds / max(cold_timer.seconds, 1e-9), agree],
            ["on_warm", warm_timer.seconds, speedup, agree],
        ],
        notes={"m": m, "phi": phi, "model_churn": repeats},
    )
    record_result(result)
    assert agree
    # Warm memoized traffic must not be slower than recompute-per-call.
    assert warm_timer.seconds <= off_timer.seconds * 1.2
