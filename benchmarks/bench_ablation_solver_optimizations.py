"""Ablations for the design choices called out in DESIGN.md Section 4.

* bipartite solver: Algorithm 4's satisfied/violated/uncertain pruning vs
  the basic full-tracking DP;
* lifted solver: gap merging and dead-state pruning on/off;
* two-label solver: gap merging on/off.

Each ablation verifies the optimized and unoptimized variants agree and
reports their runtimes; the optimized variants must not be substantially
slower and are typically much faster.
"""

import pytest

from repro.datasets.benchmarks import benchmark_a, benchmark_c, benchmark_d
from repro.evaluation.experiments_exact import ExperimentResult
from repro.evaluation.harness import Timer
from repro.solvers.bipartite import bipartite_probability
from repro.solvers.lifted import lifted_probability
from repro.solvers.two_label import two_label_probability


def test_bipartite_pruning_ablation(record_result, benchmark):
    result = ExperimentResult(
        experiment="ablation_bipartite_pruning",
        headers=["instance", "pruned_s", "basic_s", "speedup", "agree"],
    )
    instances = list(
        benchmark_c(
            m_values=(8, 10),
            patterns_per_union=(2,),
            labels_per_pattern=(3,),
            items_per_label=(2,),
            instances_per_combo=2,
            seed=41,
        )
    )
    speedups = []
    for instance in instances:
        with Timer() as pruned_timer:
            pruned = bipartite_probability(
                instance.model, instance.labeling, instance.union
            )
        with Timer() as basic_timer:
            basic = bipartite_probability(
                instance.model, instance.labeling, instance.union,
                pruned=False,
            )
        agree = abs(pruned.probability - basic.probability) < 1e-9
        speedup = basic_timer.seconds / max(pruned_timer.seconds, 1e-9)
        speedups.append(speedup)
        result.rows.append(
            [instance.name, pruned_timer.seconds, basic_timer.seconds,
             speedup, agree]
        )
        assert agree
    record_result(result)

    instance = instances[0]
    benchmark.pedantic(
        lambda: bipartite_probability(
            instance.model, instance.labeling, instance.union
        ),
        rounds=3,
        iterations=1,
    )


def test_lifted_optimizations_ablation(record_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="ablation_lifted_optimizations",
        headers=["instance", "full_s", "no_gap_merge_s", "no_dead_prune_s", "agree"],
    )
    instances = benchmark_a(n_unions=3, m=8, items_per_label=1, seed=42)
    for instance in instances:
        union = instance.union
        with Timer() as full_timer:
            full = lifted_probability(instance.model, instance.labeling, union)
        with Timer() as no_merge_timer:
            no_merge = lifted_probability(
                instance.model, instance.labeling, union, merge_gaps=False
            )
        with Timer() as no_prune_timer:
            no_prune = lifted_probability(
                instance.model, instance.labeling, union, prune_dead=False
            )
        agree = (
            abs(full.probability - no_merge.probability) < 1e-9
            and abs(full.probability - no_prune.probability) < 1e-9
        )
        result.rows.append(
            [instance.name, full_timer.seconds, no_merge_timer.seconds,
             no_prune_timer.seconds, agree]
        )
        assert agree
    record_result(result)


def test_two_label_gap_merge_ablation(record_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="ablation_two_label_gap_merge",
        headers=["instance", "merged_s", "plain_s", "speedup", "agree"],
    )
    instances = list(
        benchmark_d(
            m_values=(20,),
            patterns_per_union=(2, 3),
            items_per_label=(3,),
            instances_per_combo=2,
            seed=43,
        )
    )
    speedups = []
    for instance in instances:
        with Timer() as merged_timer:
            merged = two_label_probability(
                instance.model, instance.labeling, instance.union
            )
        with Timer() as plain_timer:
            plain = two_label_probability(
                instance.model, instance.labeling, instance.union,
                merge_gaps=False,
            )
        agree = abs(merged.probability - plain.probability) < 1e-9
        speedup = plain_timer.seconds / max(merged_timer.seconds, 1e-9)
        speedups.append(speedup)
        result.rows.append(
            [instance.name, merged_timer.seconds, plain_timer.seconds,
             speedup, agree]
        )
        assert agree
    record_result(result)
    # Gap merging should help on average (items serving no label dominate).
    assert sum(speedups) / len(speedups) > 1.0
