"""Figure 8: the Most-Probable-Session top-k optimization on Polls.

Paper result: on Polls with 16 candidates and the self-join star query,
pre-filtering sessions with 1-edge (2-edge) upper bounds speeds up k = 1
evaluation by 5.2x (8.2x), and still 1.6x (2.1x) at k = 100.

Scaled reproduction: 16 candidates, 120 voters, k in {1, 10, 25}.  The
optimized strategies must return the same top-k sets as the full strategy
and evaluate no more sessions exactly.
"""

from repro.datasets.polls import polls_database
from repro.evaluation.experiments import FIG8_QUERY, figure_8
from repro.query.aggregates import most_probable_session
from repro.query.parser import parse_query


def test_figure_8_topk(record_result, benchmark):
    result = figure_8(k_values=(1, 10, 25), n_candidates=16, n_voters=120)
    record_result(result)

    rows = {(row[0], row[1]): row for row in result.rows}
    for k in (1, 10, 25):
        # Optimized strategies agree with the naive top-k (up to ties,
        # which figure_8 already accounts for by comparing probabilities).
        assert rows[(k, "1-edge")][6] is True
        assert rows[(k, "2-edge")][6] is True
        # And never evaluate more sessions exactly.
        assert rows[(k, "1-edge")][5] <= rows[(k, "full")][5]
        assert rows[(k, "2-edge")][5] <= rows[(k, "full")][5]
    # The paper's headline: at k = 1 the upper bounds prune aggressively.
    assert rows[(1, "1-edge")][5] < rows[(1, "full")][5]

    db = polls_database(n_candidates=16, n_voters=40, seed=8)
    query = parse_query(FIG8_QUERY)
    benchmark.pedantic(
        lambda: most_probable_session(
            query, db, k=1, strategy="upper_bound", n_edges=1
        ),
        rounds=3,
        iterations=1,
    )
