"""The serving front-end's request coalescer on live concurrent traffic.

Not a paper figure: this benchmark covers the server PR (DESIGN.md
Section 11).  A 50-request overlapping mixed-kind workload (the
``batch_queries`` templates cycled through plain/COUNT/TOPK/AGG forms)
is served two ways through the full :class:`ServerApp` route — protocol
decode, admission, coalescer, metrics:

* **per-request baseline** — ``window_seconds=0`` and a capacity-1
  cache: request-at-a-time serving without the shared cache tier, the
  pre-coalescer cost of the workload (a warm shared cache is also
  measured and recorded, unenforced, for context);
* **coalesced** — concurrent clients land in one coalescing window and
  are planned as one batch, so the planner's mixed-kind dedup and
  cross-query common-solve elimination run on live traffic.

Acceptance bars:

* the coalesced serving executes **>= 2x fewer** distinct solves than
  the per-request baseline over the same 50 requests;
* coalesced answers are **bit-identical** to sequential
  ``answer()`` calls for every request;
* ``/stats`` reports p50/p95/p99 latency and a coalesce ratio **> 1**.

``BENCH_SERVER_QUICK=1`` shrinks the workload for CI smoke runs.
Results are written to ``benchmarks/BENCH_server.json`` (committed) and
``benchmarks/results/`` like every other benchmark.
"""

import asyncio
import json
import os
import time
from pathlib import Path

from repro.__main__ import batch_queries
from repro.api.evaluate import answer
from repro.evaluation.experiments import ExperimentResult
from repro.server.app import ServerApp
from repro.server.config import ServerConfig
from repro.server.protocol import jsonable

QUICK = os.environ.get("BENCH_SERVER_QUICK") == "1"
N_REQUESTS = 12 if QUICK else 50
N_SESSIONS = 20 if QUICK else 50
N_MOVIES = 6 if QUICK else 8
MIN_SOLVE_RATIO = 2.0
DB_SEED = 7

JSON_PATH = Path(__file__).parent / "BENCH_server.json"

_KIND_WRAPPERS = (
    lambda text: text,
    lambda text: f"COUNT {text}",
    lambda text: f"TOPK 3 {text}",
    lambda text: f"AGG mean(V.age) {text}",
)


def mixed_corpus(n_requests: int) -> list[str]:
    """Overlapping mixed-kind traffic: all four kinds over hot queries.

    Live traffic repeats: a small family of hot queries is asked over and
    over, under different kinds (the dashboard wants the COUNT, the
    ranking page the TOPK, of the same filter).  Each pass over the
    distinct queries switches the kind, so every query recurs under
    several kinds across the corpus — exactly what mixed-kind dedup and
    cross-query elimination collapse when the window merges them.
    """
    distinct = batch_queries(max(4, n_requests // 4))
    return [
        _KIND_WRAPPERS[(index // len(distinct)) % len(_KIND_WRAPPERS)](
            distinct[index % len(distinct)]
        )
        for index in range(n_requests)
    ]


def make_app(**overrides) -> ServerApp:
    overrides.setdefault("sessions", N_SESSIONS)
    overrides.setdefault("movies", N_MOVIES)
    overrides.setdefault("seed", DB_SEED)
    overrides.setdefault("backend", "serial")
    overrides.setdefault("port", 0)
    overrides.setdefault("max_pending_total", 4 * N_REQUESTS)
    overrides.setdefault("max_pending_per_client", 4 * N_REQUESTS)
    return ServerApp(ServerConfig(**overrides))


async def serve_corpus(app: ServerApp, corpus, concurrent: bool):
    """Answer the corpus through the full route; return encoded payloads."""
    try:
        if concurrent:
            responses = await asyncio.gather(
                *(
                    app.handle("POST", "/answer", text, f"client-{i}")
                    for i, text in enumerate(corpus)
                )
            )
        else:
            responses = [
                await app.handle("POST", "/answer", text, f"client-{i}")
                for i, text in enumerate(corpus)
            ]
    finally:
        await app.shutdown()
    for status, payload, _ in responses:
        assert status == 200, payload
    return [payload for _, payload, _ in responses]


def distinct_solves(app: ServerApp) -> int:
    return app.metrics.snapshot()["coalescing"]["n_distinct_solves"]


def test_server_coalescing(record_result):
    corpus = mixed_corpus(N_REQUESTS)

    # --- per-request baseline: window 0, no shared cache tier ----------
    baseline_app = make_app(window_seconds=0, cache_capacity=1)
    baseline_started = time.perf_counter()
    asyncio.run(serve_corpus(baseline_app, corpus, concurrent=False))
    baseline_seconds = time.perf_counter() - baseline_started
    baseline_solves = distinct_solves(baseline_app)

    # --- context: request-at-a-time with the default shared cache ------
    cached_app = make_app(window_seconds=0)
    asyncio.run(serve_corpus(cached_app, corpus, concurrent=False))
    cached_baseline_solves = distinct_solves(cached_app)

    # --- coalesced: concurrent clients merged into planned batches -----
    coalesced_app = make_app(window_seconds=0.25, max_batch=2 * N_REQUESTS)
    coalesced_started = time.perf_counter()
    payloads = asyncio.run(
        serve_corpus(coalesced_app, corpus, concurrent=True)
    )
    coalesced_seconds = time.perf_counter() - coalesced_started
    coalesced_solves = distinct_solves(coalesced_app)
    stats = coalesced_app.handle_stats()

    # --- bit-identity vs sequential answer() ---------------------------
    db = coalesced_app.db
    for text, payload in zip(corpus, payloads):
        want = answer(text, db)
        assert payload["value"] == jsonable(want.value), text
        assert payload["kind"] == want.kind

    # --- the bars -------------------------------------------------------
    solve_ratio = baseline_solves / max(coalesced_solves, 1)
    assert solve_ratio >= MIN_SOLVE_RATIO, (
        f"coalesced serving executed {coalesced_solves} distinct solves vs "
        f"{baseline_solves} per-request; ratio {solve_ratio:.2f}x < "
        f"{MIN_SOLVE_RATIO}x"
    )
    coalescing = stats["coalescing"]
    assert coalescing["coalesce_ratio"] > 1.0
    assert coalescing["n_solves_eliminated"] > 0
    latency = stats["latency_seconds"]
    for percentile in ("p50", "p95", "p99"):
        assert latency[percentile] > 0
    assert latency["p50"] <= latency["p95"] <= latency["p99"]

    report = {
        "config": {
            "n_requests": N_REQUESTS,
            "n_sessions": N_SESSIONS,
            "n_movies": N_MOVIES,
            "quick": QUICK,
            "seed": DB_SEED,
            "kinds": ["probability", "count", "top_k", "aggregate"],
        },
        "solves": {
            "per_request_baseline": baseline_solves,
            "per_request_with_shared_cache": cached_baseline_solves,
            "coalesced": coalesced_solves,
            "planned": coalescing["n_solves_planned"],
            "eliminated": coalescing["n_solves_eliminated"],
        },
        "solve_ratio": {
            "required": MIN_SOLVE_RATIO,
            "measured": solve_ratio,
            "enforced": True,
        },
        "coalescing": {
            "n_batches": coalescing["n_batches"],
            "coalesce_ratio": coalescing["coalesce_ratio"],
            "largest_batch": coalescing["largest_batch"],
        },
        "latency_seconds": {
            "p50": latency["p50"],
            "p95": latency["p95"],
            "p99": latency["p99"],
        },
        "equivalence": {"bit_identical_to_sequential_answer": True},
        "timings": {
            "per_request_seconds": baseline_seconds,
            "coalesced_seconds": coalesced_seconds,
        },
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    record_result(
        ExperimentResult(
            experiment="server_coalescing",
            headers=["serving", "distinct_solves", "seconds"],
            rows=[
                ["per-request (window=0)", baseline_solves, baseline_seconds],
                [
                    "per-request + shared cache",
                    cached_baseline_solves,
                    float("nan"),
                ],
                ["coalesced window", coalesced_solves, coalesced_seconds],
            ],
            notes={
                "solve_ratio": round(solve_ratio, 2),
                "coalesce_ratio": round(coalescing["coalesce_ratio"], 2),
                "p95_ms": round(latency["p95"] * 1000, 2),
                "quick": QUICK,
            },
        )
    )
