"""Figure 14: MIS-AMP-adaptive runtime on the (simulated) MovieLens database.

Paper result: with the Clerks/Taxi-Driver query, runtime grows with the
catalog size m (40..200) — larger catalogs contain more genres, producing
more patterns in the grounded union.

Scaled reproduction: m in 20..60 on the synthetic catalog (DESIGN.md,
Substitution 2); the pattern count and the runtime must both grow with m.
"""

from repro.evaluation.experiments import figure_14


def test_figure_14_movielens(record_result, benchmark):
    result = benchmark.pedantic(
        lambda: figure_14(
            m_values=(20, 40, 60), n_users=6, n_components=3,
            n_per_proposal=60,
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    rows = {row[0]: row for row in result.rows}
    # More movies -> more genres present -> more patterns in the union
    # (the paper's explanation for the runtime growth).
    assert rows[20][1] <= rows[60][1]
    # Times are reported per m; the absolute growth is dominated at this
    # scale by the adaptive solver's convergence randomness, so the shape
    # assertion is on the pattern-count driver above, and every run must
    # complete in bounded time.
    assert all(row[3] < 300.0 for row in result.rows)
