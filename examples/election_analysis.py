"""Election polling analysis over the synthetic Polls database.

Reproduces the analyst workflow of the paper's Section 6.2 at laptop scale:

1. build a Polls RIM-PPD (candidates with demographics, voters in
   demographic groups, one Mallows model per voter);
2. evaluate the Figure 4 query — "does some session prefer a male candidate
   to a female candidate of the same party?" — with every exact solver and
   with MIS-AMP-adaptive, comparing runtimes and answers;
3. count the expected number of supporting sessions;
4. find the most supportive sessions with the top-k upper-bound
   optimization and show how many exact evaluations it saves.

Run:  python examples/election_analysis.py
"""

import time

import numpy as np

from repro.datasets.polls import polls_database
from repro.query import count_session, evaluate, most_probable_session, parse_query

QUERY = "P(_, _; l; r), C(l, p, 'M', _, _, _), C(r, p, 'F', _, _, _)"


def main() -> None:
    db = polls_database(n_candidates=10, n_voters=40, seed=2016)
    print(
        f"Polls database: {len(db.orelation('C'))} candidates, "
        f"{db.prelation('P').n_sessions} poll sessions"
    )
    query = parse_query(QUERY)
    print(f"Query: {query}")
    print()

    # ------------------------------------------------------------------
    # Exact solvers, specialized to general, plus the adaptive sampler.
    # ------------------------------------------------------------------
    print("Per-method evaluation (whole database):")
    rng = np.random.default_rng(7)
    for method in ("two_label", "bipartite", "general", "mis_amp_adaptive"):
        kwargs = {"rng": rng, "n_per_proposal": 150} if method.startswith("mis") else {}
        started = time.perf_counter()
        result = evaluate(query, db, method=method, **kwargs)
        seconds = time.perf_counter() - started
        print(
            f"  {method:18s} P = {result.probability:.6f}  "
            f"({seconds:6.2f}s, {result.n_solver_calls} solver calls, "
            f"{result.n_groups} groups)"
        )
    print()

    # ------------------------------------------------------------------
    # Count-Session: the expected number of supporting sessions.
    # ------------------------------------------------------------------
    count = count_session(query, db)
    print(
        f"count(Q) = {count.expectation:.2f} of "
        f"{len(count.per_session)} sessions expected to satisfy Q"
    )
    weakest = sorted(count.per_session, key=lambda pair: pair[1])[:3]
    print(
        "least supportive sessions:",
        [(key[0], round(p, 3)) for key, p in weakest],
    )
    print()

    # ------------------------------------------------------------------
    # Most-Probable-Session with and without the upper-bound optimization.
    # ------------------------------------------------------------------
    for strategy, n_edges in (("naive", 1), ("upper_bound", 1), ("upper_bound", 2)):
        started = time.perf_counter()
        top = most_probable_session(
            query, db, k=3, strategy=strategy, n_edges=n_edges
        )
        seconds = time.perf_counter() - started
        label = strategy if strategy == "naive" else f"{strategy}[{n_edges}-edge]"
        print(
            f"top(Q, 3) via {label:22s}: {seconds:6.2f}s, "
            f"{top.n_exact_evaluations} exact evaluations"
        )
        for key, probability in top.sessions:
            print(f"     {key}: {probability:.5f}")


if __name__ == "__main__":
    main()
