"""Estimating rare preference events: RS vs IS-AMP vs MIS-AMP.

Reproduces the Section 5 narrative of the paper on a single model:

1. the event ``sigma_m > sigma_1`` under ``MAL(sigma, 0.1)`` is
   exponentially rare in m, so rejection sampling burns through samples;
2. IS-AMP fixes the sampling efficiency but mis-weights multi-modal
   posteriors (the paper's Example 5.1);
3. MIS-AMP centers one AMP proposal per greedy modal (Algorithm 5) and
   recovers the exact value.

Everything is checked against exact values from the two-label solver.

Run:  python examples/rare_events.py
"""

import time

import numpy as np

from repro.approx.is_amp import is_amp_estimate
from repro.approx.mis import mis_amp_estimate
from repro.approx.modals import greedy_modals
from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, PatternNode
from repro.rankings.subranking import SubRanking
from repro.rim.mallows import Mallows
from repro.rim.sampling import rejection_estimate
from repro.solvers.two_label import two_label_probability


def last_above_first_pattern():
    low = PatternNode("l", frozenset({"last"}))
    high = PatternNode("r", frozenset({"first"}))
    return LabelPattern([(low, high)])


def main() -> None:
    rng = np.random.default_rng(42)
    print("Event: sigma_m preferred to sigma_1 under MAL(sigma, 0.1)")
    print()
    print(f"{'m':>3} {'exact':>12} {'RS(20k)':>12} {'IS-AMP':>12} {'MIS-AMP':>12}")
    for m in (4, 6, 8):
        items = list(range(m))
        model = Mallows(items, 0.1)
        labeling = Labeling({0: {"first"}, m - 1: {"last"}})
        pattern = last_above_first_pattern()
        exact = two_label_probability(model, labeling, pattern).probability
        psi = SubRanking([m - 1, 0])

        rs = rejection_estimate(
            model, psi.is_consistent_with, 20_000, rng
        ).estimate
        is_amp = is_amp_estimate(model, psi, 3000, rng).estimate
        mis = mis_amp_estimate(model, psi, 1500, rng).estimate
        print(
            f"{m:>3} {exact:>12.3e} {rs:>12.3e} {is_amp:>12.3e} {mis:>12.3e}"
        )
    print("(RS returns 0 once the event stops appearing in 20k samples;")
    print(" the importance samplers keep tracking it.)")
    print()

    # ------------------------------------------------------------------
    # The paper's Example 5.1 / 5.2: a multi-modal posterior.
    # ------------------------------------------------------------------
    model = Mallows(["s1", "s2", "s3"], 0.01)
    psi = SubRanking(["s3", "s1"])
    exact = sum(
        p for tau, p in model.enumerate_support() if psi.is_consistent_with(tau)
    )
    modals = greedy_modals(psi, model.sigma)
    print("Example 5.1/5.2 of the paper: psi = <s3, s1>, MAL(<s1,s2,s3>, 0.01)")
    print(f"  greedy modals found: {[list(r.items) for r in modals]}")
    is_amp = is_amp_estimate(model, psi, 4000, rng).estimate
    mis = mis_amp_estimate(model, psi, 2000, rng).estimate
    print(f"  exact   = {exact:.3e}")
    print(f"  IS-AMP  = {is_amp:.3e}   (biased: single-mode proposal)")
    print(f"  MIS-AMP = {mis:.3e}   (balance heuristic over both modes)")
    print()

    # ------------------------------------------------------------------
    # Timing: RS with an optimistic stopping rule vs a fixed MIS budget.
    # ------------------------------------------------------------------
    print("Wall-clock comparison at m = 8:")
    model = Mallows(list(range(8)), 0.1)
    psi = SubRanking([7, 0])
    started = time.perf_counter()
    mis = mis_amp_estimate(model, psi, 1500, rng)
    mis_seconds = time.perf_counter() - started
    started = time.perf_counter()
    rs = rejection_estimate(model, psi.is_consistent_with, 100_000, rng)
    rs_seconds = time.perf_counter() - started
    print(
        f"  MIS-AMP: {mis.estimate:.3e} in {mis_seconds:.2f}s "
        f"({mis.n_samples} weighted samples)"
    )
    print(
        f"  RS:      {rs.estimate:.3e} in {rs_seconds:.2f}s "
        f"({rs.n_hits} hits out of {rs.n_samples})"
    )


if __name__ == "__main__":
    main()
