"""Quickstart: the paper's Figure 1 database and running examples Q0-Q2.

Builds the polling RIM-PPD from Figure 1 of the paper, evaluates the three
queries discussed in the introduction (exactly and approximately), and
validates one of them by sampling possible worlds.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.db.examples import polling_example
from repro.query import (
    analyze,
    count_session,
    evaluate,
    most_probable_session,
    parse_query,
)


def main() -> None:
    db = polling_example()
    print("Database:", db)
    print()

    # ------------------------------------------------------------------
    # Q0: does Ann (poll of 5/5) prefer Trump to both Clinton and Rubio?
    # A Boolean CQ over one session — the marginal of two preference pairs
    # under MAL(<Clinton, Sanders, Rubio, Trump>, 0.3).
    # ------------------------------------------------------------------
    q0 = parse_query(
        "P('Ann', '5/5'; 'Trump'; 'Clinton'), P('Ann', '5/5'; 'Trump'; 'Rubio')"
    )
    r0 = evaluate(q0, db)
    print(f"Q0 (Ann: Trump above Clinton and Rubio) = {r0.probability:.4f}")

    # ------------------------------------------------------------------
    # Q1: an itemwise CQ — is some female candidate preferred to some male
    # candidate in some session?  Compiles to the label pattern F > M.
    # ------------------------------------------------------------------
    q1 = parse_query(
        "P(_, _; c1; c2), C(c1, _, 'F', _, _, _), C(c2, _, 'M', _, _, _)"
    )
    analysis = analyze(q1, db)
    print(f"Q1 itemwise: {analysis.is_itemwise}")
    r1 = evaluate(q1, db)
    print(f"Q1 (female above male) = {r1.probability:.4f}")

    # ------------------------------------------------------------------
    # Q2: the paper's hard query — a Democrat preferred to a Republican
    # with the same education.  The shared variable e makes it
    # non-itemwise; Algorithm 2 grounds e over {BS, JD} and the engine
    # evaluates the union of the two itemwise rewritings.
    # ------------------------------------------------------------------
    q2 = parse_query(
        "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
    )
    analysis = analyze(q2, db)
    print(
        f"Q2 itemwise: {analysis.is_itemwise}; "
        f"V+(Q2) = {sorted(v.name for v in analysis.groundable)}"
    )
    r2 = evaluate(q2, db)
    print(f"Q2 (D above R, same edu) = {r2.probability:.4f}")
    for session in r2.per_session:
        print(f"   session {session.key}: {session.probability:.4f}")

    # Validate Q2 against the possible-world semantics by Monte Carlo.
    rng = np.random.default_rng(0)
    hits = 0
    n = 20_000
    for _ in range(n):
        world = db.sample_world(rng)
        if any(
            tau.prefers("Sanders", "Trump") or tau.prefers("Clinton", "Rubio")
            for tau in world.values()
        ):
            hits += 1
    print(f"Q2 Monte-Carlo check over {n} worlds: {hits / n:.4f}")
    print()

    # ------------------------------------------------------------------
    # Aggregates: Count-Session and Most-Probable-Session (Section 3.2).
    # ------------------------------------------------------------------
    count = count_session(q2, db)
    print(f"count(Q2) expectation = {count.expectation:.4f}")
    top = most_probable_session(q2, db, k=2, strategy="upper_bound")
    print(
        "top(Q2, 2) =",
        [(key, round(p, 4)) for key, p in top.sessions],
        f"(exact evaluations: {top.n_exact_evaluations} of 3 sessions)",
    )

    # ------------------------------------------------------------------
    # Approximate evaluation with MIS-AMP-adaptive (Section 5).
    # ------------------------------------------------------------------
    approx = evaluate(
        q2, db, method="mis_amp_adaptive",
        rng=np.random.default_rng(1), n_per_proposal=300,
    )
    print(f"Q2 via MIS-AMP-adaptive = {approx.probability:.4f}")


if __name__ == "__main__":
    main()
