"""Movie-preference analytics over the simulated MovieLens / CrowdRank data.

Demonstrates the paper's Section 6.3-6.4 workloads:

1. the Figure 14 query over a MovieLens-style catalog — a non-itemwise CQ
   whose grounding produces one pattern per genre, evaluated with
   MIS-AMP-adaptive (exact solvers are hopeless here: every movie carries a
   year label, so the patterns touch the whole catalog);
2. the Section 6.4 demographic query over a CrowdRank-style database —
   the session join binds each worker's sex and age into the pattern, and
   grouping identical (model, pattern) requests slashes the solver calls.

Run:  python examples/movie_preferences.py
"""

import time

import numpy as np

from repro.datasets.crowdrank import crowdrank_database
from repro.datasets.movielens import movielens_database
from repro.query import analyze, evaluate, parse_query

MOVIELENS_QUERY = (
    "P(_; 2; 1), P(_; x; 1), P(_; x; y), "
    "M(x, _, year1, genre), year1 >= 1990, "
    "M(y, _, year2, genre), year2 < 1990"
)

CROWDRANK_QUERY = (
    "P(v; m1; m2), P(v; m2; m3), V(v, sex, age), "
    "M(m1, _, sex, _, 'short'), M(m2, _, _, age, 'short'), "
    "M(m3, 'Thriller', _, _, _)"
)


def movielens_demo() -> None:
    db = movielens_database(n_movies=24, n_users=30, n_components=4, seed=1)
    query = parse_query(MOVIELENS_QUERY)
    analysis = analyze(query, db)
    print("MovieLens-style query (Figure 14 of the paper):")
    print(f"  {query}")
    print(
        f"  non-itemwise: V+ = {sorted(v.name for v in analysis.groundable)} "
        "(grounded over the genres present in the catalog)"
    )
    rng = np.random.default_rng(14)
    started = time.perf_counter()
    result = evaluate(
        query, db, method="mis_amp_adaptive", rng=rng,
        n_per_proposal=60, max_proposals=7,
    )
    seconds = time.perf_counter() - started
    print(
        f"  Pr(Q) = {result.probability:.4f} over {result.n_sessions} users "
        f"({seconds:.1f}s, {result.n_solver_calls} solver calls after grouping)"
    )
    print()


def crowdrank_demo() -> None:
    db = crowdrank_database(n_workers=2000, n_movies=12, seed=2)
    query = parse_query(CROWDRANK_QUERY)
    analysis = analyze(query, db)
    print("CrowdRank-style demographic query (Section 6.4 of the paper):")
    print(f"  {query}")
    print(
        "  session-bound variables:",
        sorted(v.name for v in analysis.session_bound),
    )
    for grouped in (True, False):
        started = time.perf_counter()
        result = evaluate(
            query, db, method="lifted", group_sessions=grouped,
            session_limit=2000,
        )
        seconds = time.perf_counter() - started
        label = "grouped" if grouped else "naive  "
        print(
            f"  {label}: Pr(Q) = {result.probability:.6f}  "
            f"({seconds:6.2f}s, {result.n_solver_calls} solver calls "
            f"for {result.n_sessions} sessions)"
        )
    print()


def main() -> None:
    movielens_demo()
    crowdrank_demo()


if __name__ == "__main__":
    main()
