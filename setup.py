"""Legacy setup shim: enables `pip install -e .` in offline environments
where the `wheel` package (needed for PEP 660 editable builds) is absent."""

from setuptools import setup

setup()
