"""Regression tests for solver bugs found during development.

Each test pins a concrete instance that once produced a wrong probability,
with the root cause documented, so the bug cannot silently return.
"""

import pytest

from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, node
from repro.patterns.union import PatternUnion
from repro.rim.mallows import Mallows
from repro.solvers.bipartite import bipartite_probability
from repro.solvers.brute import brute_force_probability
from repro.solvers.two_label import two_label_probability


class TestMaxPositionShiftRegression:
    """The paper's literal update rule beta' = max(beta, j) is wrong when a
    served R-label's current maximum position sits at or below the
    insertion point: the previous maximum-position server is itself pushed
    down by the insertion, so the new maximum is beta + 1.  The original
    implementation copied the literal rule and under-counted beta.
    """

    def _instance(self):
        # Two R-servers inserted around an existing maximum exercise the
        # shift: items b and d carry the right-side label, a and c the left.
        model = Mallows(list("abcd"), 0.7)
        labeling = Labeling(
            {"a": {"L"}, "b": {"R"}, "c": {"L"}, "d": {"R"}}
        )
        pattern = LabelPattern([(node("l", "L"), node("r", "R"))])
        return model, labeling, pattern

    def test_two_label_solver(self):
        model, labeling, pattern = self._instance()
        expected = brute_force_probability(model, labeling, pattern).probability
        actual = two_label_probability(model, labeling, pattern).probability
        assert actual == pytest.approx(expected, abs=1e-12)

    def test_bipartite_solver_both_variants(self):
        model, labeling, pattern = self._instance()
        expected = brute_force_probability(model, labeling, pattern).probability
        for pruned in (True, False):
            actual = bipartite_probability(
                model, labeling, pattern, pruned=pruned
            ).probability
            assert actual == pytest.approx(expected, abs=1e-12)

    def test_original_failing_seed(self):
        # Reconstruction of the randomized instance (seed 42, trial 15)
        # that first exposed the bug: m = 5, phi = 0.7, a two-pattern
        # bipartite union whose basic-variant probability was 0.9714
        # instead of 0.9833.
        model = Mallows(list(range(5)), 0.7)
        labeling = Labeling(
            {0: {"A", "B"}, 1: {"B", "C"}, 2: {"A"}, 3: {"B", "D"}, 4: {"C"}}
        )
        union = PatternUnion(
            [
                LabelPattern([(node("l0", "A"), node("r0", "C"))]),
                LabelPattern([(node("l1", "D"), node("r1", "B"))]),
            ]
        )
        expected = brute_force_probability(model, labeling, union).probability
        for solver, kwargs in (
            (two_label_probability, {}),
            (bipartite_probability, {}),
            (bipartite_probability, {"pruned": False}),
        ):
            assert solver(model, labeling, union, **kwargs).probability == (
                pytest.approx(expected, abs=1e-12)
            )


class TestSharedLabelAcrossSides:
    """A label may serve as an L-side node in one pattern and an R-side
    node in another; the solvers track its min and max positions
    independently per role.
    """

    def test_same_label_both_roles(self):
        model = Mallows(list("abc"), 0.5)
        labeling = Labeling({"a": {"X"}, "b": {"Y"}, "c": {"X"}})
        union = PatternUnion(
            [
                LabelPattern([(node("l0", "X"), node("r0", "Y"))]),
                LabelPattern([(node("l1", "Y"), node("r1", "X"))]),
            ]
        )
        expected = brute_force_probability(model, labeling, union).probability
        assert two_label_probability(model, labeling, union).probability == (
            pytest.approx(expected, abs=1e-12)
        )
        assert bipartite_probability(model, labeling, union).probability == (
            pytest.approx(expected, abs=1e-12)
        )


class TestItemServingBothEndpoints:
    """One item carrying both endpoint labels of an edge cannot satisfy the
    edge on its own (the embedding needs strictly ordered positions), but
    two such items can.
    """

    def test_single_dual_item(self):
        model = Mallows(["x", "y"], 1.0)
        labeling = Labeling({"x": {"L", "R"}, "y": set()})
        pattern = LabelPattern([(node("l", "L"), node("r", "R"))])
        assert two_label_probability(
            model, labeling, pattern
        ).probability == pytest.approx(0.0, abs=1e-12)

    def test_two_dual_items(self):
        model = Mallows(["x", "y"], 1.0)
        labeling = Labeling({"x": {"L", "R"}, "y": {"L", "R"}})
        pattern = LabelPattern([(node("l", "L"), node("r", "R"))])
        # Any of the two orders works: one item embeds L, the other R.
        assert two_label_probability(
            model, labeling, pattern
        ).probability == pytest.approx(1.0, abs=1e-12)
