"""Tests for Mallows mixtures and their use in query evaluation."""

import math

import pytest

from repro.db.database import PPDatabase
from repro.db.schema import ORelation, PRelation
from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, node
from repro.query import evaluate, parse_query
from repro.rankings.permutation import Ranking
from repro.rim.mallows import Mallows
from repro.rim.mixture import MallowsMixture
from repro.solvers.brute import brute_force_probability


@pytest.fixture
def mixture():
    items = ["a", "b", "c"]
    return MallowsMixture(
        [Mallows(items, 0.2), Mallows(["c", "b", "a"], 0.4)],
        weights=[0.7, 0.3],
    )


class TestConstruction:
    def test_weights_normalized(self, mixture):
        assert sum(mixture.weights) == pytest.approx(1.0)
        assert mixture.weights[0] == pytest.approx(0.7)

    def test_weight_count_validated(self):
        with pytest.raises(ValueError):
            MallowsMixture([Mallows([1, 2], 0.5)], weights=[0.5, 0.5])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            MallowsMixture([Mallows([1, 2], 0.5)], weights=[-1.0])

    def test_mismatched_universes_rejected(self):
        with pytest.raises(ValueError):
            MallowsMixture(
                [Mallows([1, 2], 0.5), Mallows([1, 3], 0.5)],
                weights=[0.5, 0.5],
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MallowsMixture([], weights=[])


class TestDistribution:
    def test_density_sums_to_one(self, mixture):
        total = sum(
            mixture.probability(tau)
            for tau in Ranking.all_rankings(["a", "b", "c"])
        )
        assert total == pytest.approx(1.0)

    def test_density_is_weighted_sum(self, mixture):
        tau = Ranking(["b", "a", "c"])
        expected = 0.7 * mixture.components[0].probability(tau) + (
            0.3 * mixture.components[1].probability(tau)
        )
        assert mixture.probability(tau) == pytest.approx(expected)

    def test_log_probability(self, mixture):
        tau = Ranking(["a", "b", "c"])
        assert mixture.log_probability(tau) == pytest.approx(
            math.log(mixture.probability(tau))
        )

    def test_sampling_distribution(self, mixture, rng):
        n = 20_000
        counts: dict = {}
        for _ in range(n):
            tau = mixture.sample(rng)
            counts[tau] = counts.get(tau, 0) + 1
        for tau in Ranking.all_rankings(["a", "b", "c"]):
            p = mixture.probability(tau)
            sigma = math.sqrt(p * (1 - p) / n)
            assert abs(counts.get(tau, 0) / n - p) < 4 * sigma + 2e-3

    def test_marginalize(self, mixture):
        assert mixture.marginalize([1.0, 0.0]) == pytest.approx(0.7)
        with pytest.raises(ValueError):
            mixture.marginalize([1.0])


class TestMixtureQueries:
    def test_engine_marginalizes_components(self, mixture):
        movies = ORelation("M", ["id", "genre"], [("a", "X"), ("b", "Y"), ("c", "X")])
        prelation = PRelation("P", ["user"], {("u1",): mixture})
        db = PPDatabase(orelations=[movies], prelations=[prelation])
        q = parse_query("P(_; m1; m2), M(m1, 'X'), M(m2, 'Y')")
        result = evaluate(q, db)

        labeling = Labeling({"a": {"X"}, "b": {"Y"}, "c": {"X"}})
        pattern = LabelPattern([(node("m1", "X"), node("m2", "Y"))])
        expected = sum(
            w * brute_force_probability(component, labeling, pattern).probability
            for w, component in zip(mixture.weights, mixture.components)
        )
        assert result.probability == pytest.approx(expected, abs=1e-9)
