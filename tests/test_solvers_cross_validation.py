"""The correctness anchor: every exact solver agrees with brute force.

Random (model, labeling, union) instances are drawn and all applicable
solvers must produce the same marginal probability as exhaustive
enumeration of the m! rankings (Equation 2 of the paper).
"""

import pytest

from repro.solvers.bipartite import bipartite_probability
from repro.solvers.brute import brute_force_probability
from repro.solvers.general import general_probability
from repro.solvers.lifted import lifted_probability
from repro.solvers.two_label import two_label_probability
from tests.conftest import (
    random_bipartite_instance,
    random_instance,
    random_two_label_instance,
)

TOLERANCE = 1e-9


class TestGeneralInstances:
    def test_lifted_matches_brute(self, pyrng):
        for _ in range(50):
            model, labeling, union = random_instance(pyrng)
            expected = brute_force_probability(model, labeling, union).probability
            actual = lifted_probability(model, labeling, union).probability
            assert actual == pytest.approx(expected, abs=TOLERANCE)

    def test_general_matches_brute(self, pyrng):
        for _ in range(30):
            model, labeling, union = random_instance(pyrng)
            expected = brute_force_probability(model, labeling, union).probability
            actual = general_probability(model, labeling, union).probability
            assert actual == pytest.approx(expected, abs=TOLERANCE)

    def test_lifted_ablations_match(self, pyrng):
        for _ in range(25):
            model, labeling, union = random_instance(pyrng, m_choices=(4, 5))
            reference = lifted_probability(model, labeling, union).probability
            no_merge = lifted_probability(
                model, labeling, union, merge_gaps=False
            ).probability
            no_prune = lifted_probability(
                model, labeling, union, prune_dead=False
            ).probability
            assert no_merge == pytest.approx(reference, abs=TOLERANCE)
            assert no_prune == pytest.approx(reference, abs=TOLERANCE)


class TestTwoLabelInstances:
    def test_two_label_matches_brute(self, pyrng):
        for _ in range(60):
            model, labeling, union = random_two_label_instance(pyrng)
            expected = brute_force_probability(model, labeling, union).probability
            actual = two_label_probability(model, labeling, union).probability
            assert actual == pytest.approx(expected, abs=TOLERANCE)

    def test_two_label_no_gap_merge_matches(self, pyrng):
        for _ in range(20):
            model, labeling, union = random_two_label_instance(pyrng)
            merged = two_label_probability(model, labeling, union).probability
            plain = two_label_probability(
                model, labeling, union, merge_gaps=False
            ).probability
            assert plain == pytest.approx(merged, abs=TOLERANCE)

    def test_bipartite_handles_two_label(self, pyrng):
        # Two-label unions are a special case of bipartite unions.
        for _ in range(30):
            model, labeling, union = random_two_label_instance(pyrng)
            expected = brute_force_probability(model, labeling, union).probability
            actual = bipartite_probability(model, labeling, union).probability
            assert actual == pytest.approx(expected, abs=TOLERANCE)


class TestBipartiteInstances:
    def test_pruned_matches_brute(self, pyrng):
        for _ in range(50):
            model, labeling, union = random_bipartite_instance(pyrng)
            expected = brute_force_probability(model, labeling, union).probability
            actual = bipartite_probability(model, labeling, union).probability
            assert actual == pytest.approx(expected, abs=TOLERANCE)

    def test_basic_matches_brute(self, pyrng):
        for _ in range(30):
            model, labeling, union = random_bipartite_instance(pyrng)
            expected = brute_force_probability(model, labeling, union).probability
            actual = bipartite_probability(
                model, labeling, union, pruned=False
            ).probability
            assert actual == pytest.approx(expected, abs=TOLERANCE)

    def test_lifted_matches_bipartite(self, pyrng):
        for _ in range(25):
            model, labeling, union = random_bipartite_instance(pyrng)
            a = bipartite_probability(model, labeling, union).probability
            b = lifted_probability(model, labeling, union).probability
            assert a == pytest.approx(b, abs=TOLERANCE)


class TestGeneralRIMs:
    def test_solvers_agree_on_non_mallows_rim(self, pyrng, rng):
        # The solvers work for arbitrary RIMs, not just Mallows: draw random
        # stochastic insertion matrices.
        import numpy as np

        from repro.rim.model import RIM

        for _ in range(20):
            m = pyrng.choice([4, 5])
            pi = np.zeros((m, m))
            for i in range(1, m + 1):
                row = rng.dirichlet(np.ones(i))
                pi[i - 1, :i] = row
            model = RIM(list(range(m)), pi)
            _, labeling, union = random_instance(pyrng, m_choices=(m,))
            expected = brute_force_probability(model, labeling, union).probability
            actual = lifted_probability(model, labeling, union).probability
            assert actual == pytest.approx(expected, abs=TOLERANCE)
