"""Tests for sub-rankings."""

import pytest
from hypothesis import given, strategies as st

from repro.rankings.permutation import Ranking
from repro.rankings.subranking import SubRanking


class TestBasics:
    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SubRanking([1, 1])

    def test_rank_of(self):
        psi = SubRanking(["x", "y"])
        assert psi.rank_of("y") == 2
        with pytest.raises(KeyError):
            psi.rank_of("z")

    def test_item_set(self):
        assert SubRanking([3, 1]).item_set == {1, 3}

    def test_equality_is_order_sensitive(self):
        assert SubRanking([1, 2]) != SubRanking([2, 1])
        assert SubRanking([1, 2]) == SubRanking([1, 2])


class TestInsert:
    def test_insert_all_positions(self):
        psi = SubRanking(["a", "b"])
        assert psi.insert("x", 1).items == ("x", "a", "b")
        assert psi.insert("x", 2).items == ("a", "x", "b")
        assert psi.insert("x", 3).items == ("a", "b", "x")

    def test_insert_bounds(self):
        with pytest.raises(IndexError):
            SubRanking(["a"]).insert("b", 3)

    def test_insert_existing(self):
        with pytest.raises(ValueError):
            SubRanking(["a"]).insert("a", 1)


class TestConsistency:
    def test_consistent(self):
        tau = Ranking([5, 3, 1, 2, 4])
        assert SubRanking([5, 1, 4]).is_consistent_with(tau)
        assert not SubRanking([4, 5]).is_consistent_with(tau)

    def test_empty_is_always_consistent(self):
        assert SubRanking([]).is_consistent_with(Ranking([1, 2]))

    def test_from_ranking_projection(self):
        tau = Ranking([5, 3, 1, 2, 4])
        psi = SubRanking.from_ranking(tau, {1, 4, 5})
        assert psi.items == (5, 1, 4)
        assert psi.is_consistent_with(tau)


class TestConversions:
    def test_as_partial_order(self):
        order = SubRanking(["a", "b", "c"]).as_partial_order()
        assert ("a", "b") in order.edges
        assert ("b", "c") in order.edges

    def test_distance_to(self):
        sigma = Ranking([1, 2, 3, 4])
        assert SubRanking([4, 1]).distance_to(sigma) == 1
        assert SubRanking([1, 4]).distance_to(sigma) == 0


@given(st.permutations(list(range(6))), st.sets(st.integers(0, 5), max_size=4))
def test_projection_always_consistent(perm, subset):
    tau = Ranking(perm)
    psi = SubRanking.from_ranking(tau, subset)
    assert psi.is_consistent_with(tau)
    assert psi.item_set == frozenset(subset)
