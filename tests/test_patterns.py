"""Tests for labelings, patterns, unions, and embedding matching."""

import pytest

from repro.patterns.labels import Labeling
from repro.patterns.matching import (
    enumerate_embeddings,
    find_embedding,
    matches,
    matches_union,
)
from repro.patterns.pattern import (
    LabelPattern,
    PatternNode,
    chain_pattern,
    node,
    pattern_conjunction,
)
from repro.patterns.union import PatternUnion
from repro.rankings.permutation import Ranking


class TestLabeling:
    def test_labels_of_default_empty(self):
        labeling = Labeling({"a": {"X"}})
        assert labeling.labels_of("a") == {"X"}
        assert labeling.labels_of("unknown") == frozenset()

    def test_items_with_label(self):
        labeling = Labeling({"a": {"X"}, "b": {"X", "Y"}, "c": set()})
        assert labeling.items_with_label("X") == {"a", "b"}
        assert labeling.items_with_label("Y") == {"b"}
        assert labeling.items_with_label("Z") == frozenset()

    def test_items_matching_conjunction(self):
        labeling = Labeling({"a": {"X"}, "b": {"X", "Y"}})
        assert labeling.items_matching({"X", "Y"}) == {"b"}
        assert labeling.items_matching(set()) == {"a", "b"}

    def test_restrict(self):
        labeling = Labeling({"a": {"X"}, "b": {"Y"}})
        restricted = labeling.restrict({"a"})
        assert restricted.items == {"a"}

    def test_extended(self):
        labeling = Labeling({"a": {"X"}})
        extended = labeling.extended({"a": {"Y"}, "b": {"Z"}})
        assert extended.labels_of("a") == {"X", "Y"}
        assert extended.labels_of("b") == {"Z"}

    def test_from_attribute_rows(self):
        labeling = Labeling.from_attribute_rows(
            {"t": {"sex": "M", "party": "R"}}
        )
        assert ("sex", "M") in labeling.labels_of("t")


class TestPatternStructure:
    def test_cycle_rejected(self):
        a, b = node("a", "X"), node("b", "Y")
        with pytest.raises(ValueError, match="cycle"):
            LabelPattern([(a, b), (b, a)])

    def test_self_loop_rejected(self):
        a = node("a", "X")
        with pytest.raises(ValueError, match="self-loop"):
            LabelPattern([(a, a)])

    def test_duplicate_names_rejected(self):
        a1 = PatternNode("a", frozenset({"X"}))
        a2 = PatternNode("a", frozenset({"Y"}))
        with pytest.raises(ValueError, match="duplicate node names"):
            LabelPattern([(a1, a2)])

    def test_two_label_classification(self):
        a, b, c = node("a", "X"), node("b", "Y"), node("c", "Z")
        assert LabelPattern([(a, b)]).is_two_label()
        assert not LabelPattern([(a, b), (a, c)]).is_two_label()

    def test_bipartite_classification(self):
        a, b, c, d = (node(n, n.upper()) for n in "abcd")
        assert LabelPattern([(a, c), (b, c), (b, d)]).is_bipartite()
        # a chain has a middle node with in and out edges
        assert not LabelPattern([(a, b), (b, c)]).is_bipartite()
        # isolated nodes disqualify
        assert not LabelPattern([(a, b)], nodes=[a, b, c]).is_bipartite()

    def test_left_right_nodes(self):
        a, b, c = node("a", "A"), node("b", "B"), node("c", "C")
        pattern = LabelPattern([(a, c), (b, c)])
        assert pattern.left_nodes() == {a, b}
        assert pattern.right_nodes() == {c}

    def test_topological_order_parents_first(self):
        a, b, c = node("a", "A"), node("b", "B"), node("c", "C")
        pattern = LabelPattern([(a, b), (b, c)])
        order = pattern.topological_order
        assert order.index(a) < order.index(b) < order.index(c)

    def test_transitive_closure(self):
        a, b, c = node("a", "A"), node("b", "B"), node("c", "C")
        closure = LabelPattern([(a, b), (b, c)]).transitive_closure()
        assert (a, c) in closure.edges


class TestConjunction:
    def test_conjunction_keeps_witnesses_separate(self):
        # g1 = {A > B}, g2 = {B > A}: both can hold simultaneously with
        # different witnesses, so the conjunction must stay acyclic.
        a1, b1 = node("a", "A"), node("b", "B")
        g1 = LabelPattern([(a1, b1)])
        g2 = LabelPattern([(node("b", "B"), node("a", "A"))])
        conj = pattern_conjunction([g1, g2])
        assert conj.size == 4
        labeling = Labeling({1: {"A"}, 2: {"B"}, 3: {"A"}})
        tau = Ranking([1, 2, 3])  # A at 1 > B at 2 > A at 3
        assert matches(tau, conj, labeling)

    def test_conjunction_with_self_is_equivalent(self):
        a, b = node("a", "A"), node("b", "B")
        g = LabelPattern([(a, b)])
        conj = pattern_conjunction([g, g])
        labeling = Labeling({1: {"A"}, 2: {"B"}})
        assert matches(Ranking([1, 2]), conj, labeling)
        assert not matches(Ranking([2, 1]), conj, labeling)

    def test_single_conjunct_unchanged(self):
        g = LabelPattern([(node("a", "A"), node("b", "B"))])
        assert pattern_conjunction([g]) is g

    def test_empty_conjunction_rejected(self):
        with pytest.raises(ValueError):
            pattern_conjunction([])


class TestUnion:
    def test_dedupe(self):
        g = LabelPattern([(node("a", "A"), node("b", "B"))])
        union = PatternUnion([g, g])
        assert union.z == 1

    def test_dedupe_renamed_duplicates(self):
        # Node names carry no semantics: a disjunct that differs only in
        # names is the same query and must not inflate z (it would double
        # the general solver's inclusion-exclusion subsets for nothing).
        g1 = LabelPattern([(node("a", "A"), node("b", "B"))])
        g2 = LabelPattern([(node("x", "A"), node("y", "B"))])
        union = PatternUnion([g1, g2])
        assert union.z == 1
        assert union.patterns == (g1,)  # first appearance wins
        # freeze() stability: the canonical form never saw the duplicate.
        assert union.freeze() == PatternUnion([g1]).freeze()
        assert union.freeze() == PatternUnion([g2]).freeze()

    def test_dedupe_keeps_distinct_structures(self):
        g1 = LabelPattern([(node("a", "A"), node("b", "B"))])
        g2 = LabelPattern([(node("a", "B"), node("b", "A"))])
        assert PatternUnion([g1, g2]).z == 2

    def test_classification(self):
        a, b, c = node("a", "A"), node("b", "B"), node("c", "C")
        two_label = PatternUnion([LabelPattern([(a, b)])])
        assert two_label.is_two_label() and two_label.is_bipartite()
        chain = PatternUnion([LabelPattern([(a, b), (b, c)])])
        assert not chain.is_two_label() and not chain.is_bipartite()

    def test_relevant_items(self):
        g = LabelPattern([(node("a", "A"), node("b", "B"))])
        labeling = Labeling({1: {"A"}, 2: {"B"}, 3: {"C"}})
        union = PatternUnion([g])
        assert union.relevant_items(labeling) == {1, 2}

    def test_served_nodes_of(self):
        na, nb = node("a", "A"), node("b", "B")
        union = PatternUnion([LabelPattern([(na, nb)])])
        labeling = Labeling({1: {"A", "B"}})
        assert union.served_nodes_of(1, labeling) == {na, nb}


class TestMatching:
    def test_example_2_3(self):
        # Paper Example 2.3: tau0 = <Trump, Clinton, Sanders, Rubio> with
        # pattern F > M matches with embedding {F -> 2, M -> 3}.
        labeling = Labeling(
            {
                "Trump": {"M"},
                "Clinton": {"F"},
                "Sanders": {"M"},
                "Rubio": {"M"},
            }
        )
        f, m = node("F", "F"), node("M", "M")
        pattern = LabelPattern([(f, m)])
        tau = Ranking(["Trump", "Clinton", "Sanders", "Rubio"])
        embedding = find_embedding(tau, pattern, labeling)
        assert embedding == {f: 2, m: 3}

    def test_node_conjunction_requires_all_labels(self):
        labeling = Labeling({1: {"M"}, 2: {"M", "JD"}, 3: {"BS"}})
        pattern = LabelPattern(
            [(node("u", "M", "JD"), node("v", "BS"))]
        )
        assert matches(Ranking([2, 3, 1]), pattern, labeling)
        assert not matches(Ranking([3, 2, 1]), pattern, labeling)

    def test_shared_position_for_incomparable_nodes(self):
        # Two incomparable nodes may embed at the same position.
        labeling = Labeling({1: {"A", "B"}, 2: {"C"}})
        a, b, c = node("a", "A"), node("b", "B"), node("c", "C")
        pattern = LabelPattern([(a, c), (b, c)])
        assert matches(Ranking([1, 2]), pattern, labeling)

    def test_isolated_node_requires_existence(self):
        labeling = Labeling({1: {"A"}, 2: {"B"}})
        a, b, c = node("a", "A"), node("b", "B"), node("c", "C")
        pattern = LabelPattern([(a, b)], nodes=[c])
        assert not matches(Ranking([1, 2]), pattern, labeling)

    def test_greedy_equals_exhaustive(self, pyrng):
        # The canonical greedy matcher agrees with exhaustive embedding
        # search over random instances.
        from tests.conftest import random_instance

        for _ in range(80):
            model, labeling, union = random_instance(pyrng)
            for pattern in union:
                for tau in Ranking.all_rankings(model.items):
                    greedy = matches(tau, pattern, labeling)
                    exhaustive = (
                        next(
                            iter(enumerate_embeddings(tau, pattern, labeling)),
                            None,
                        )
                        is not None
                    )
                    assert greedy == exhaustive

    def test_matching_monotone_under_insertion(self, pyrng):
        # If tau matches, any ranking obtained by inserting an item still
        # matches (the absorption property the solvers rely on).
        from tests.conftest import random_instance

        for _ in range(40):
            model, labeling, union = random_instance(pyrng, m_choices=(4, 5))
            items = list(model.items)
            for tau in Ranking.all_rankings(items[:-1]):
                if matches_union(tau, union, labeling):
                    for position in range(1, len(tau) + 2):
                        grown = tau.insert(items[-1], position)
                        assert matches_union(grown, union, labeling)

    def test_chain_pattern_helper(self):
        nodes = [node("a", "A"), node("b", "B"), node("c", "C")]
        pattern = chain_pattern(nodes)
        assert len(pattern.edges) == 2
        labeling = Labeling({1: {"A"}, 2: {"B"}, 3: {"C"}})
        assert matches(Ranking([1, 2, 3]), pattern, labeling)
        assert not matches(Ranking([3, 2, 1]), pattern, labeling)
