"""Tests for itemwise-CQ compilation into patterns and labelings."""

import pytest

from repro.db.examples import polling_example
from repro.patterns.matching import matches
from repro.query.classify import UnsupportedQueryError
from repro.query.compile import (
    ConditionLabel,
    IdentityLabel,
    compile_itemwise,
    labeling_for_patterns,
)
from repro.query.parser import parse_query
from repro.rankings.permutation import Ranking


@pytest.fixture
def db():
    return polling_example()


class TestConditionLabels:
    def test_label_is_hashable_and_stable(self):
        a = ConditionLabel("C", equalities=((1, "D"),))
        b = ConditionLabel("C", equalities=((1, "D"),))
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_readable(self):
        label = ConditionLabel(
            "C", equalities=((1, "D"),), predicates=((3, ">=", 50),)
        )
        text = repr(label)
        assert "C[1]='D'" in text and "C[3]>=50" in text

    def test_identity_label(self):
        assert IdentityLabel("Trump") == IdentityLabel("Trump")
        assert IdentityLabel("Trump") != IdentityLabel("Rubio")


class TestCompileItemwise:
    def test_variable_nodes_carry_condition_labels(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, _, _), C(c2, 'R', _, _, _, _)"
        )
        pattern = compile_itemwise(q, db)
        assert pattern is not None
        assert pattern.size == 2
        by_name = {n.name: n for n in pattern.nodes}
        assert len(by_name["c1"].labels) == 1
        (label,) = by_name["c1"].labels
        assert isinstance(label, ConditionLabel)
        assert label.equalities == ((1, "D"),)

    def test_constants_become_identity_nodes(self, db):
        q = parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')")
        pattern = compile_itemwise(q, db)
        labels = {next(iter(n.labels)) for n in pattern.nodes}
        assert labels == {IdentityLabel("Trump"), IdentityLabel("Clinton")}

    def test_multiple_atoms_conjunction(self, db):
        # Two o-atoms on the same variable become two labels on one node.
        q = parse_query(
            "P(_, _; c1; 'Trump'), C(c1, 'D', _, _, _, _), "
            "C(c1, _, 'F', _, _, _)"
        )
        pattern = compile_itemwise(q, db)
        node = next(n for n in pattern.nodes if n.name == "c1")
        assert len(node.labels) == 2

    def test_self_comparison_unsatisfiable(self, db):
        q = parse_query("P(_, _; 'Trump'; 'Trump')")
        assert compile_itemwise(q, db) is None

    def test_false_global_atom(self, db):
        q = parse_query(
            "P(_, _; 'Trump'; 'Clinton'), C('Nixon', _, _, _, _, _)"
        )
        assert compile_itemwise(q, db) is None

    def test_true_global_atom(self, db):
        q = parse_query(
            "P(_, _; 'Trump'; 'Clinton'), C('Rubio', 'R', _, _, _, _)"
        )
        assert compile_itemwise(q, db) is not None

    def test_non_itemwise_rejected(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        with pytest.raises(UnsupportedQueryError, match="not itemwise"):
            compile_itemwise(q, db)

    def test_inequality_predicates_in_labels(self, db):
        q = parse_query(
            "P(_, _; c1; 'Trump'), C(c1, _, _, age, _, _), age >= 70"
        )
        pattern = compile_itemwise(q, db)
        labeling = labeling_for_patterns(
            [pattern], db.prelation("P").items, db
        )
        node = next(n for n in pattern.nodes if n.name == "c1")
        (label,) = node.labels
        # Trump (70) and Sanders (75) qualify; Clinton (69) does not.
        assert labeling.items_with_label(label) == {"Trump", "Sanders"}


class TestLabelingEvaluation:
    def test_identity_labeling(self, db):
        q = parse_query("P(_, _; 'Trump'; 'Clinton')")
        pattern = compile_itemwise(q, db)
        labeling = labeling_for_patterns(
            [pattern], db.prelation("P").items, db
        )
        assert labeling.items_with_label(IdentityLabel("Trump")) == {"Trump"}

    def test_end_to_end_matching(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, _, 'F', _, _, _), C(c2, _, 'M', _, _, _)"
        )
        pattern = compile_itemwise(q, db)
        labeling = labeling_for_patterns(
            [pattern], db.prelation("P").items, db
        )
        # Clinton (F) above any male matches; Clinton ranked last does not.
        assert matches(
            Ranking(["Clinton", "Trump", "Sanders", "Rubio"]),
            pattern,
            labeling,
        )
        assert not matches(
            Ranking(["Trump", "Sanders", "Rubio", "Clinton"]),
            pattern,
            labeling,
        )

    def test_wildcard_node_matches_everything(self, db):
        q = parse_query("P(_, _; _; 'Clinton')")
        pattern = compile_itemwise(q, db)
        labeling = labeling_for_patterns(
            [pattern], db.prelation("P").items, db
        )
        wildcard_node = next(n for n in pattern.nodes if not n.labels)
        served = [
            item
            for item in db.prelation("P").items
            if wildcard_node.labels <= labeling.labels_of(item)
        ]
        assert set(served) == set(db.prelation("P").items)
