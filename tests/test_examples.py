"""Smoke test: every example script runs end to end.

The examples are documentation-grade entry points (``python -m repro demo``
even ships one); running them in-process catches API drift the moment an
entry point they use changes shape.  Each script is executed via ``runpy``
with stdout captured; the assertion is deliberately light — no exception,
non-trivial output — so the examples stay free to evolve their narrative.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(SCRIPTS) == 4, [script.name for script in SCRIPTS]


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=[script.stem for script in SCRIPTS]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 3, f"{script.name} printed almost nothing"
