"""Tests for the query planner: IR, passes, execution, explain, CLI.

The load-bearing guarantees:

* every optimizer pass (and the full pipeline) leaves probabilities and
  per-session solver attributions bit-identical to the unoptimized plan on
  a seeded query corpus;
* method resolution has exactly one path — the dispatch, the cache keys,
  and the plan pass cannot disagree;
* ``"auto-approx"`` falls back to MIS-AMP only above its state-count
  budget, and is bit-identical to ``"auto"`` below it;
* ``explain()`` output is stable (golden test) and the CLI renders a plan
  for every query class the engine supports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.crowdrank import crowdrank_database
from repro.db.examples import polling_example
from repro.patterns.pattern import LabelPattern, node
from repro.patterns.union import PatternUnion
from repro.plan import (
    annotate_costs,
    build_plan,
    classic_choice,
    cost_based_choice,
    eliminate_common_solves,
    execute_plan,
    optimize_plan,
    order_solves,
    resolve_methods,
    resolve_solve_method,
    simplify_union,
    simplify_unions,
)
from repro.plan.execute import assemble_results
from repro.query.engine import evaluate
from repro.query.parser import parse_query
from repro.service.cache import SolverCache
from repro.service.service import PreferenceService
from repro.solvers.dispatch import resolve_method


@pytest.fixture(scope="module")
def polls_db():
    return polling_example()


@pytest.fixture(scope="module")
def crowd_db():
    return crowdrank_database(n_workers=20, n_movies=6, seed=7)


#: One query per structural class the engine supports, over the polling
#: database: itemwise two-label, constant-vs-variable, chain (general),
#: non-itemwise (groundable coupling variable), session-joined.
POLLS_CORPUS = (
    "P('Ann', '5/5'; 'Trump'; 'Clinton')",
    "P(v, d; x; y), C(x, _, 'F', _, _, _), C(y, _, 'M', _, _, _)",
    "P(v, d; x; y), P(v, d; y; z), C(x, 'D', _, _, _, _)",
    "P(v, d; x; y), C(x, _, _, _, e, _), C(y, _, _, _, e, _)",
    "P(v, d; x; 'Trump'), V(v, s, _, _), C(x, _, s, _, _, _)",
)

#: Overlapping CrowdRank-style workload: shared (model, union) pairs both
#: within and across queries.
CROWD_CORPUS = (
    "P(v; m1; m2), M(m1, 'Comedy', _, _, _), M(m2, _, _, _, 'Long')",
    "P(v; m1; m2), M(m1, _, 'F', _, _), M(m2, 'Thriller', _, _, _)",
    "P(v; m1; m2), M(m1, 'Comedy', _, _, _), M(m2, _, _, _, 'Short')",
    "P(v; m1; m2), P(v; m2; m3), M(m1, 'Comedy', _, _, _), "
    "M(m3, _, _, _, 'Long')",
)


def _signature(result):
    """Everything that must stay bit-identical across plan rewrites."""
    return [
        (evaluation.key, evaluation.probability, evaluation.solver)
        for evaluation in result.per_session
    ]


def _run(db, query, passes=None, cache=None, **kwargs):
    plan = build_plan(parse_query(query), db, **kwargs)
    if passes is not None:
        optimize_plan(plan, passes=passes)
    execution = execute_plan(plan, cache=cache)
    return plan, assemble_results(
        plan, execution, with_cache=cache is not None
    )[0]


class TestPassEquivalence:
    """Each pass — alone and stacked — is probability/attribution neutral."""

    @pytest.mark.parametrize("query", POLLS_CORPUS + CROWD_CORPUS)
    def test_full_pipeline_matches_unoptimized(self, polls_db, crowd_db, query):
        db = polls_db if query in POLLS_CORPUS else crowd_db
        _, baseline = _run(db, query, passes=())
        optimized = evaluate(parse_query(query), db)  # optimizer on by default
        assert optimized.probability == baseline.probability
        assert _signature(optimized) == _signature(baseline)

    @pytest.mark.parametrize(
        "passes",
        [
            (simplify_unions,),
            (resolve_methods,),
            (annotate_costs,),
            (resolve_methods, annotate_costs),
            (eliminate_common_solves,),
            (lambda p: eliminate_common_solves(p, canonical=True),),
            (resolve_methods, annotate_costs, order_solves),
            (
                simplify_unions,
                resolve_methods,
                annotate_costs,
                lambda p: eliminate_common_solves(p, canonical=True),
                order_solves,
            ),
        ],
        ids=[
            "simplify",
            "resolve",
            "annotate",
            "resolve+annotate",
            "cse-identity",
            "cse-canonical",
            "lpt",
            "full-canonical",
        ],
    )
    @pytest.mark.parametrize("query", CROWD_CORPUS)
    def test_each_pass_is_neutral(self, crowd_db, query, passes):
        _, baseline = _run(crowd_db, query, passes=())
        _, rewritten = _run(crowd_db, query, passes=passes)
        assert rewritten.probability == baseline.probability
        assert _signature(rewritten) == _signature(baseline)

    def test_unoptimized_flag_on_evaluate(self, crowd_db):
        query = parse_query(CROWD_CORPUS[0])
        optimized = evaluate(query, crowd_db)
        raw = evaluate(query, crowd_db, optimize=False)
        assert raw.probability == optimized.probability
        assert _signature(raw) == _signature(optimized)
        # Without elimination every satisfiable session solves separately.
        assert raw.n_solver_calls >= optimized.n_solver_calls

    def test_unoptimized_plan_is_cacheless(self, polls_db):
        # Canonical keys are an optimizer product: the unoptimized
        # reference must neither populate nor consult a supplied cache
        # (and must not pretend it did in its stats).
        query = parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')")
        cache = SolverCache()
        raw = evaluate(query, polls_db, cache=cache, optimize=False)
        assert raw.stats == {}
        assert len(cache) == 0
        again = evaluate(query, polls_db, cache=cache, optimize=False)
        assert again.n_solver_calls == raw.n_solver_calls > 0

    def test_batch_matches_sequential(self, crowd_db):
        service = PreferenceService()
        batch = service.evaluate_many(CROWD_CORPUS, crowd_db)
        for text, result in zip(CROWD_CORPUS, batch):
            sequential = evaluate(parse_query(text), crowd_db)
            assert result.probability == sequential.probability
            assert _signature(result) == _signature(sequential)


class TestPlanStructure:
    def test_elimination_counters(self, crowd_db):
        # The repeated first query makes the cross-query sharing explicit.
        plan = build_plan(
            [parse_query(text) for text in CROWD_CORPUS + (CROWD_CORPUS[0],)],
            crowd_db,
        )
        planned = plan.n_solves_planned
        assert planned == len(plan.solve_order)  # one node per session
        optimize_plan(plan, canonical=True)
        assert plan.n_solves_eliminated > 0
        assert len(plan.solve_order) == planned - plan.n_solves_eliminated
        assert plan.stats()["n_solves_planned"] == planned
        # The canonical grouping merges across queries of the batch, so the
        # frontier undercuts even per-query dedup: some solve nodes carry
        # sessions of several queries.
        assert any(
            len({index for index, _ in node.sessions}) > 1
            for node in plan.solves()
        )

    def test_lpt_orders_frontier_descending(self, crowd_db):
        plan = build_plan(
            [parse_query(text) for text in CROWD_CORPUS], crowd_db
        )
        optimize_plan(plan, canonical=True)
        costs = [node.cost for node in plan.solves()]
        assert costs == sorted(costs, reverse=True)

    def test_group_sessions_false_skips_elimination(self, crowd_db):
        plan = build_plan(
            parse_query(CROWD_CORPUS[0]), crowd_db, group_sessions=False
        )
        optimize_plan(plan)
        assert plan.n_solves_eliminated == 0
        assert "eliminate_common_solves" not in "".join(plan.passes_applied)

    def test_identity_vs_canonical_grouping(self, polls_db):
        # Ann and Dave share the same Mallows reference ranking but are
        # distinct model objects: identity grouping keeps them apart,
        # canonical grouping merges them.
        query = parse_query("P(v, d; 'Clinton'; 'Trump')")
        identity = build_plan(query, polls_db)
        optimize_plan(identity, canonical=False)
        canonical = build_plan(query, polls_db)
        optimize_plan(canonical, canonical=True)
        assert len(canonical.solve_order) <= len(identity.solve_order)


class TestUnifiedMethodResolution:
    def test_single_resolution_path_agrees(self, rng, pyrng):
        from tests.conftest import random_instance

        for _ in range(25):
            _, _, union = random_instance(pyrng)
            assert resolve_method(union, "auto") == classic_choice(union)
            assert (
                resolve_solve_method(union, "auto")
                == classic_choice(union)
            )

    def test_cost_based_choice_coincides_with_dichotomy(self, pyrng):
        from tests.conftest import (
            random_bipartite_instance,
            random_instance,
            random_two_label_instance,
        )

        makers = (
            random_instance,
            random_two_label_instance,
            random_bipartite_instance,
        )
        for index in range(30):
            model, labeling, union = makers[index % 3](pyrng)
            chosen, costs = cost_based_choice(union, labeling, model)
            assert chosen == classic_choice(union)
            assert set(costs) >= {"general", "lifted"}

    def test_auto_and_explicit_twin_share_cache_entry(self, polls_db):
        cache = SolverCache()
        query = parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')")
        first = evaluate(query, polls_db, method="auto", cache=cache)
        second = evaluate(query, polls_db, method="two_label", cache=cache)
        assert first.n_solver_calls == 1
        assert second.n_solver_calls == 0
        assert second.stats["cache_hits"] == 1

    def test_explicit_methods_pass_through(self):
        union = PatternUnion(
            [LabelPattern([(node("a", "A"), node("b", "B"))])]
        )
        for name in ("two_label", "lifted", "brute", "mis_amp_lite"):
            assert resolve_solve_method(union, name) == name


class TestAutoApprox:
    def test_below_budget_is_bitwise_auto(self, polls_db):
        query = parse_query("P(v, d; x; y), P(v, d; y; z), C(x, 'D', _, _, _, _)")
        exact = evaluate(query, polls_db, method="auto")
        budgeted = evaluate(
            query,
            polls_db,
            method="auto-approx",
            rng=np.random.default_rng(1),
        )
        assert budgeted.probability == exact.probability
        assert _signature(budgeted) == _signature(exact)

    def test_above_budget_falls_back_to_mis_amp(self, polls_db):
        query = parse_query("P(v, d; x; y), P(v, d; y; z), C(x, 'D', _, _, _, _)")
        result = evaluate(
            query,
            polls_db,
            method="auto-approx",
            rng=np.random.default_rng(1),
            approx_budget=1,
        )
        exact = evaluate(query, polls_db, method="auto")
        solvers = {e.solver for e in result.per_session}
        assert any("mis_amp" in name for name in solvers)
        assert result.probability == pytest.approx(exact.probability, abs=0.15)

    def test_fallback_without_rng_raises(self, polls_db):
        query = parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')")
        with pytest.raises(ValueError, match="rng"):
            evaluate(query, polls_db, method="auto-approx", approx_budget=1)

    def test_budget_option_never_reaches_solvers(self, polls_db):
        query = parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')")
        # A generous budget resolves exact; approx_budget must have been
        # popped before the solver signature sees it.
        result = evaluate(
            query, polls_db, method="auto-approx", approx_budget=1e12
        )
        assert result.per_session[0].solver == "two_label"

    def test_budget_option_harmless_with_other_methods(self, polls_db):
        # The pop is unconditional: a service configured with a budget must
        # keep working when a call overrides the method to plain auto.
        query = parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')")
        cache = SolverCache()
        budgeted = evaluate(
            query, polls_db, method="auto", approx_budget=1e6, cache=cache
        )
        plain = evaluate(query, polls_db, method="auto", cache=cache)
        assert budgeted.probability == plain.probability
        # ...and never perturbs cache keys: the second call is a pure hit.
        assert plain.n_solver_calls == 0

    def test_unoptimized_plan_respects_budget(self, polls_db):
        # Lazy resolution on an unoptimized plan must budget against the
        # caller's approx_budget (popped into plan config by the builder),
        # not the default — optimized and unoptimized twins agree on which
        # solves fall back.
        query = parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')")
        raw = evaluate(
            query,
            polls_db,
            method="auto-approx",
            rng=np.random.default_rng(2),
            approx_budget=1,
            optimize=False,
        )
        assert all("mis_amp" in e.solver for e in raw.per_session)

    def test_batch_cli_auto_approx_has_rng(self, capsys):
        # The batch CLI must seed an rng for auto-approx: with a tiny
        # budget every solve falls back to MIS-AMP, which raises without
        # one.
        from repro.__main__ import main

        assert (
            main(
                [
                    "batch", "--queries", "2", "--sessions", "10",
                    "--movies", "5", "--repeat", "1",
                    "--method", "auto-approx", "--approx-budget", "1",
                ]
            )
            == 0
        )
        assert "batch serving" in capsys.readouterr().out

    def test_batch_auto_approx_mixes_backends(self, crowd_db):
        service = PreferenceService(method="auto-approx", backend="serial")
        batch = service.evaluate_many(
            [CROWD_CORPUS[0]],
            crowd_db,
            rng=np.random.default_rng(5),
            approx_budget=1,
        )
        solvers = {
            evaluation.solver
            for result in batch
            for evaluation in result.per_session
        }
        assert any("mis_amp" in name for name in solvers)


class TestSimplifyUnions:
    def test_pass_drops_renamed_duplicate_disjuncts(self):
        g1 = LabelPattern([(node("a", "A"), node("b", "B"))])
        g2 = LabelPattern([(node("x", "A"), node("y", "B"))])
        # Bypass the constructor's own dedup to exercise the pass.
        union = PatternUnion([g1])
        forced = PatternUnion.__new__(PatternUnion)
        forced._patterns = (g1, g2)
        assert forced.z == 2
        simplified = simplify_union(forced)
        assert simplified.z == 1
        # Freeze stability: dedup never changes the canonical form.
        assert simplified.freeze() == union.freeze()

    def test_no_op_returns_same_object(self):
        g1 = LabelPattern([(node("a", "A"), node("b", "B"))])
        g2 = LabelPattern([(node("c", "B"), node("d", "C"))])
        union = PatternUnion([g1, g2])
        assert simplify_union(union) is union


class TestPlanCounters:
    def test_cache_accumulates_plan_counters(self, crowd_db):
        service = PreferenceService()
        service.evaluate_many(CROWD_CORPUS, crowd_db)
        stats = service.stats()
        assert stats["n_solves_planned"] > 0
        assert stats["n_solves_eliminated"] > 0
        assert stats["n_passes_applied"] >= 5
        assert stats["n_solves_planned"] >= stats["n_solves_eliminated"]

    def test_engine_records_when_cached(self, polls_db):
        cache = SolverCache()
        evaluate(
            parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')"),
            polls_db,
            cache=cache,
        )
        assert cache.stats().n_solves_planned == 1
        assert cache.stats().as_dict()["n_passes_applied"] >= 5


EXPECTED_EXPLAIN = """\
== query plan: 1 query, method=auto, group_sessions=on ==
q0: Q() <- P(v, d; x; y), C(x, _, 'F', _, _, _), C(y, _, 'M', _, _, _)
  SelectSessions[P]  sessions 3 -> 3
  GroundSessions  satisfiable=3 unsatisfiable=0
  CompileUnion #2  z=1 sessions=3
  Solve #3  method=two_label cost~3.2e+01 sessions=1
  Solve #4  method=two_label cost~3.2e+01 sessions=1
  Solve #5  method=two_label cost~3.2e+01 sessions=1
  AggregateSessions  Pr(Q|D) = 1 - prod(1 - p_s) over 3 sessions
passes: simplify_unions, resolve_methods, annotate_costs, eliminate_common_solves, order_solves
solves: planned=3 eliminated=0 frontier=3"""


class TestExplain:
    def test_golden_output(self, polls_db):
        plan = build_plan(
            parse_query(
                "P(v, d; x; y), C(x, _, 'F', _, _, _), C(y, _, 'M', _, _, _)"
            ),
            polls_db,
        )
        optimize_plan(plan, canonical=True)
        assert plan.explain() == EXPECTED_EXPLAIN

    def test_execution_outcomes_rendered(self, polls_db):
        query = parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')")
        plan = build_plan(query, polls_db)
        optimize_plan(plan, canonical=True)
        execution = execute_plan(plan)
        text = plan.explain(execution)
        assert "[solved: two_label]" in text
        assert "executed: 1 fresh, 0 cache-served" in text

    @pytest.mark.parametrize("query", POLLS_CORPUS)
    def test_every_query_class_renders(self, polls_db, query):
        plan = build_plan(parse_query(query), polls_db)
        optimize_plan(plan, canonical=True)
        text = plan.explain()
        assert "SelectSessions[P]" in text
        assert "AggregateSessions" in text
        assert "passes:" in text

    def test_batch_plan_renders_combine_node(self, polls_db):
        plan = build_plan(
            [parse_query(POLLS_CORPUS[0]), parse_query(POLLS_CORPUS[1])],
            polls_db,
        )
        optimize_plan(plan, canonical=True)
        text = plan.explain()
        assert "CombineQueries  2 queries" in text


class TestExplainCLI:
    def test_explain_smoke(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                [
                    "explain",
                    "P(v; m1; m2), M(m1, 'Comedy', _, _, _), "
                    "M(m2, _, _, _, 'Long')",
                    "--sessions", "20", "--movies", "6",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Solve #" in out
        assert "eliminated=" in out

    def test_explain_polls_dataset(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                [
                    "explain", "P('Ann', '5/5'; 'Trump'; 'Clinton')",
                    "--dataset", "polls",
                ]
            )
            == 0
        )
        assert "method=two_label" in capsys.readouterr().out

    def test_explain_rejects_bad_query(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                [
                    "explain", "P(v, d; x; y), P(u, d; x; y)",
                    "--dataset", "polls",
                ]
            )
            == 2
        )
        assert "cannot plan query" in capsys.readouterr().err

    def test_batch_prints_planner_counters(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                [
                    "batch", "--queries", "3", "--sessions", "20",
                    "--movies", "6", "--repeat", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "planner: n_solves_planned=" in out
        assert "n_solves_eliminated=" in out
