"""Packaging metadata stays consistent with the package itself."""

import sys
from pathlib import Path

import pytest

import repro

tomllib = pytest.importorskip("tomllib")  # stdlib since 3.11

PYPROJECT = Path(__file__).resolve().parents[1] / "pyproject.toml"


def test_pyproject_parses_and_declares_dynamic_version():
    config = tomllib.loads(PYPROJECT.read_text())
    project = config["project"]
    assert "version" in project.get("dynamic", ())
    # The dynamic version resolves to the package's single source of truth.
    attr = config["tool"]["setuptools"]["dynamic"]["version"]["attr"]
    module_name, _, attribute = attr.rpartition(".")
    assert getattr(sys.modules[module_name], attribute) == repro.__version__


def test_runtime_dependencies_are_just_numpy():
    config = tomllib.loads(PYPROJECT.read_text())
    names = [dep.split(">")[0].split("=")[0].strip()
             for dep in config["project"]["dependencies"]]
    assert names == ["numpy"]


def test_packages_found_under_src():
    config = tomllib.loads(PYPROJECT.read_text())
    assert config["tool"]["setuptools"]["packages"]["find"]["where"] == ["src"]
