"""Hypothesis property tests on the solver layer's core invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, PatternNode
from repro.patterns.union import PatternUnion
from repro.rim.mallows import Mallows
from repro.solvers.brute import brute_force_probability
from repro.solvers.dispatch import solve
from repro.solvers.general import general_probability
from repro.solvers.lifted import lifted_probability
from repro.solvers.upper_bound import upper_bound_probability

LABELS = ("A", "B", "C")


@st.composite
def instances(draw, max_m: int = 5, max_patterns: int = 2):
    """A random (model, labeling, union) triple."""
    m = draw(st.integers(3, max_m))
    phi = draw(st.sampled_from([0.1, 0.5, 1.0]))
    model = Mallows(list(range(m)), phi)
    labeling = Labeling(
        {
            item: draw(
                st.sets(st.sampled_from(LABELS), max_size=2)
            )
            for item in range(m)
        }
    )
    patterns = []
    n_patterns = draw(st.integers(1, max_patterns))
    for p in range(n_patterns):
        q = draw(st.integers(2, 3))
        nodes = [
            PatternNode(
                f"n{p}_{k}",
                frozenset(
                    draw(
                        st.sets(
                            st.sampled_from(LABELS), min_size=1, max_size=2
                        )
                    )
                ),
            )
            for k in range(q)
        ]
        edges = [
            (nodes[a], nodes[b])
            for a in range(q)
            for b in range(a + 1, q)
            if draw(st.booleans())
        ]
        if not edges:
            edges = [(nodes[0], nodes[1])]
        patterns.append(LabelPattern(edges, nodes=nodes))
    return model, labeling, PatternUnion(patterns)


COMMON_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON_SETTINGS
@given(instances())
def test_probability_in_unit_interval(instance):
    model, labeling, union = instance
    result = lifted_probability(model, labeling, union)
    assert 0.0 <= result.probability <= 1.0


@COMMON_SETTINGS
@given(instances())
def test_lifted_equals_brute(instance):
    model, labeling, union = instance
    expected = brute_force_probability(model, labeling, union).probability
    assert lifted_probability(model, labeling, union).probability == (
        pytest.approx(expected, abs=1e-9)
    )


@COMMON_SETTINGS
@given(instances())
def test_inclusion_exclusion_equals_direct(instance):
    model, labeling, union = instance
    direct = lifted_probability(model, labeling, union).probability
    via_ie = general_probability(model, labeling, union).probability
    assert via_ie == pytest.approx(direct, abs=1e-9)


@COMMON_SETTINGS
@given(instances())
def test_union_is_monotone(instance):
    # Adding a pattern to the union can only increase the probability.
    model, labeling, union = instance
    if union.z < 2:
        return
    sub_union = union.restrict(range(union.z - 1))
    smaller = lifted_probability(model, labeling, sub_union).probability
    larger = lifted_probability(model, labeling, union).probability
    assert larger >= smaller - 1e-9


@COMMON_SETTINGS
@given(instances())
def test_upper_bound_dominates(instance):
    model, labeling, union = instance
    exact = lifted_probability(model, labeling, union).probability
    for n_edges in (1, 2):
        bound = upper_bound_probability(
            model, labeling, union, n_edges=n_edges
        ).probability
        assert bound >= exact - 1e-9


@COMMON_SETTINGS
@given(instances(), st.sampled_from(["auto", "lifted", "general"]))
def test_dispatch_methods_agree(instance, method):
    model, labeling, union = instance
    expected = brute_force_probability(model, labeling, union).probability
    actual = solve(model, labeling, union, method=method).probability
    assert actual == pytest.approx(expected, abs=1e-9)


@COMMON_SETTINGS
@given(instances())
def test_uniform_model_counts_rankings(instance):
    # Under phi = 1 the probability equals the fraction of satisfying
    # rankings: a counting cross-check independent of the RIM machinery.
    from repro.patterns.matching import matches_union
    from repro.rankings.permutation import Ranking

    model, labeling, union = instance
    uniform = Mallows(list(model.items), 1.0)
    count = sum(
        1
        for tau in Ranking.all_rankings(model.items)
        if matches_union(tau, union, labeling)
    )
    total = 1
    for k in range(2, model.m + 1):
        total *= k
    expected = count / total
    actual = lifted_probability(uniform, labeling, union).probability
    assert actual == pytest.approx(expected, abs=1e-9)
