"""Tests for the Plackett-Luce extension (models beyond RIM)."""

import math

import pytest

from repro.rankings.permutation import Ranking
from repro.rim.plackett_luce import PlackettLuce


@pytest.fixture
def model():
    return PlackettLuce({"a": 4.0, "b": 2.0, "c": 1.0})


class TestConstruction:
    def test_positive_skills_required(self):
        with pytest.raises(ValueError):
            PlackettLuce({"a": 0.0})
        with pytest.raises(ValueError):
            PlackettLuce({"a": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PlackettLuce({})

    def test_from_scores(self):
        model = PlackettLuce.from_scores(["x", "y"], [1.0, 3.0])
        assert model.skill("y") == 3.0
        with pytest.raises(ValueError):
            PlackettLuce.from_scores(["x"], [1.0, 2.0])

    def test_unknown_item(self, model):
        with pytest.raises(KeyError):
            model.skill("z")


class TestDensity:
    def test_closed_form(self, model):
        # Pr(<a,b,c>) = 4/7 * 2/3 * 1.
        assert model.probability(Ranking(["a", "b", "c"])) == pytest.approx(
            (4 / 7) * (2 / 3)
        )

    def test_sums_to_one(self, model):
        total = sum(p for _, p in model.enumerate_support())
        assert total == pytest.approx(1.0)

    def test_log_probability_consistent(self, model):
        for tau, p in model.enumerate_support():
            assert math.exp(model.log_probability(tau)) == pytest.approx(p)

    def test_wrong_item_set_rejected(self, model):
        with pytest.raises(ValueError):
            model.probability(Ranking(["a", "b"]))

    def test_not_a_rim(self, model):
        # Sanity: the top choice follows skill proportions, which no
        # insertion-from-reference process with a single Pi row can mimic
        # for all three items simultaneously with these skills.
        top_a = sum(
            p for tau, p in model.enumerate_support() if tau.item_at(1) == "a"
        )
        assert top_a == pytest.approx(4 / 7)


class TestPairwiseMarginal:
    def test_luce_choice_ratio(self, model):
        assert model.pairwise_marginal("a", "b") == pytest.approx(4 / 6)

    def test_matches_enumeration(self, model):
        brute = sum(
            p
            for tau, p in model.enumerate_support()
            if tau.prefers("a", "c")
        )
        assert model.pairwise_marginal("a", "c") == pytest.approx(brute)


class TestSampling:
    def test_samples_match_density(self, model, rng):
        n = 30_000
        counts: dict = {}
        for _ in range(n):
            tau = model.sample(rng)
            counts[tau] = counts.get(tau, 0) + 1
        for tau, p in model.enumerate_support():
            sigma = math.sqrt(p * (1 - p) / n)
            assert abs(counts.get(tau, 0) / n - p) < 4 * sigma + 2e-3


class TestMonteCarloIntegration:
    def test_rejection_estimation_over_pl(self, rng):
        # PL plugs into the library's Monte-Carlo layer: estimate a pattern
        # probability by rejection sampling and compare with enumeration.
        from repro.patterns.labels import Labeling
        from repro.patterns.matching import union_predicate
        from repro.patterns.pattern import LabelPattern, node
        from repro.patterns.union import PatternUnion
        from repro.rim.sampling import empirical_probability

        model = PlackettLuce({"a": 3.0, "b": 1.0, "c": 1.0, "d": 0.5})
        labeling = Labeling({"a": {"X"}, "b": {"Y"}, "c": {"Y"}, "d": {"X"}})
        union = PatternUnion(
            [LabelPattern([(node("y", "Y"), node("x", "X"))])]
        )
        exact = sum(
            p
            for tau, p in model.enumerate_support()
            if any(
                tau.prefers(i, j)
                for i in ("b", "c")
                for j in ("a", "d")
            )
        )
        estimate = empirical_probability(
            model, union_predicate(union, labeling), 20_000, rng
        )
        assert estimate.estimate == pytest.approx(exact, abs=0.02)
