"""The kernel layer: seeded scalar/vectorized equivalence and properties.

DESIGN.md Section 7's contract is that every batched kernel reproduces its
scalar reference exactly: identical draws under a fixed seed (both paths
consume one uniform per (sample, step) through the same inverse-CDF
arithmetic), densities equal to within float round-off, and predicate
decisions identical ranking-by-ranking.  These tests pin that contract,
plus distributional properties (batched marginals match scalar sampling
frequencies and exact enumeration) and the memoized-precompute semantics.
"""

import math

import numpy as np
import pytest

from repro.approx.is_amp import is_amp_estimate
from repro.approx.lite import mis_amp_lite
from repro.approx.mis import balance_heuristic_estimate, mis_amp_estimate
from repro.kernels import (
    CompiledUnionMatcher,
    kendall_tau_many,
    memoization_disabled,
    model_tables,
    positions_from_rankings,
    rankings_from_positions,
    reindex_positions,
    subranking_predicate,
    union_satisfied_many,
)
from repro.kernels.precompute import mallows_log_z, mallows_matrix
from repro.kernels.sampling import (
    positions_to_trajectories,
    trajectories_to_positions,
)
from repro.patterns.labels import Labeling
from repro.patterns.matching import matches_union, union_predicate
from repro.patterns.pattern import LabelPattern, node
from repro.patterns.union import PatternUnion
from repro.rankings.kendall import kendall_tau
from repro.rankings.partial_order import PartialOrder
from repro.rankings.permutation import Ranking
from repro.rankings.subranking import SubRanking
from repro.rim.amp import AMPSampler
from repro.rim.mallows import Mallows, mallows_insertion_matrix
from repro.rim.model import RIM
from repro.rim.sampling import (
    empirical_probability,
    rejection_until_within,
)


def geometric_rim(m: int, decay: float) -> RIM:
    pi = np.zeros((m, m))
    for i in range(1, m + 1):
        weights = decay ** np.arange(i, dtype=float)
        pi[i - 1, :i] = weights / weights.sum()
    return RIM(list(range(m)), pi)


class TestSeededSamplerEquivalence:
    @pytest.mark.parametrize("phi", [0.0, 0.2, 0.7, 1.0])
    def test_mallows_sample_many_matches_scalar(self, phi):
        model = Mallows(list(range(7)), phi)
        scalar = model.sample_many(
            60, np.random.default_rng(11), vectorized=False
        )
        batched = model.sample_many(60, np.random.default_rng(11))
        assert scalar == batched

    def test_generic_rim_sample_many_matches_scalar(self):
        model = geometric_rim(6, 0.5)
        scalar = model.sample_many(
            50, np.random.default_rng(5), vectorized=False
        )
        batched = model.sample_many(50, np.random.default_rng(5))
        assert scalar == batched

    @pytest.mark.parametrize("phi", [0.0, 0.4, 1.0])
    def test_amp_sample_many_matches_scalar(self, phi):
        model = Mallows(list(range(7)), phi)
        sampler = AMPSampler(model, PartialOrder([(6, 0), (4, 1), (3, 2)]))
        scalar = sampler.sample_many(
            60, np.random.default_rng(3), vectorized=False
        )
        batched = sampler.sample_many(60, np.random.default_rng(3))
        assert scalar == batched

    def test_amp_zero_mass_fallback_matches_scalar(self):
        # phi = 0 with a sigma-contradicting constraint exercises the
        # uniform fallback on both paths.
        model = Mallows(list(range(5)), 0.0)
        sampler = AMPSampler(model, PartialOrder([(4, 0), (3, 1)]))
        scalar = sampler.sample_many(
            40, np.random.default_rng(8), vectorized=False
        )
        batched = sampler.sample_many(40, np.random.default_rng(8))
        assert scalar == batched

    def test_position_matrix_shape_and_validity(self):
        model = Mallows(list(range(9)), 0.5)
        positions = model.sample_positions(25, np.random.default_rng(0))
        assert positions.shape == (25, 9)
        # every row is a permutation of 1..m
        assert (np.sort(positions, axis=1) == np.arange(1, 10)).all()


class TestTrajectoryRoundTrip:
    def test_positions_to_trajectories_inverts(self, rng):
        model = Mallows(list(range(8)), 0.6)
        positions = model.sample_positions(40, rng)
        recovered = trajectories_to_positions(
            positions_to_trajectories(positions)
        )
        assert (recovered == positions).all()

    def test_trajectories_match_scalar_insertion_positions(self, rng):
        model = geometric_rim(6, 0.4)
        positions = model.sample_positions(30, rng)
        trajectories = positions_to_trajectories(positions)
        for row, tau in zip(
            trajectories, rankings_from_positions(model, positions)
        ):
            assert list(row) == model.insertion_positions(tau)


class TestDensityKernels:
    def test_rim_log_probability_many_matches_scalar(self, rng):
        model = geometric_rim(7, 0.5)
        positions = model.sample_positions(80, rng)
        batched = model.log_probability_many(positions)
        for value, tau in zip(
            batched, rankings_from_positions(model, positions)
        ):
            # RIM.log_probability on a non-Mallows model is the trajectory
            # product the kernel vectorizes.
            assert value == pytest.approx(model.log_probability(tau), abs=1e-12)

    @pytest.mark.parametrize("phi", [0.0, 0.3, 1.0])
    def test_mallows_log_probability_many_matches_scalar(self, phi, rng):
        model = Mallows(list(range(7)), phi)
        positions = model.sample_positions(80, rng)
        batched = model.log_probability_many(positions)
        for value, tau in zip(
            batched, rankings_from_positions(model, positions)
        ):
            scalar = model.log_probability(tau)
            if math.isinf(scalar):
                assert np.isneginf(value)
            else:
                assert value == pytest.approx(scalar, abs=1e-12)

    def test_amp_log_probability_many_matches_scalar(self, rng):
        model = Mallows(list(range(6)), 0.45)
        sampler = AMPSampler(model, SubRanking([5, 2, 0]))
        positions = sampler.sample_positions(80, rng)
        batched = sampler.log_probability_many(positions)
        for value, tau in zip(
            batched, rankings_from_positions(model, positions)
        ):
            assert value == pytest.approx(
                sampler.log_probability(tau), abs=1e-12
            )

    def test_amp_log_probability_many_violations_are_neginf(self):
        model = Mallows(list(range(5)), 0.5)
        sampler = AMPSampler(model, PartialOrder([(4, 0)]))
        violating = Ranking([0, 1, 2, 3, 4])
        positions = positions_from_rankings(model, [violating])
        assert np.isneginf(sampler.log_probability_many(positions))[0]

    def test_kendall_tau_many_matches_pairwise(self, rng):
        model = Mallows(list(range(10)), 0.8)
        positions = model.sample_positions(60, rng)
        batched = kendall_tau_many(positions, chunk=7)  # force chunking
        for d, tau in zip(batched, rankings_from_positions(model, positions)):
            assert d == kendall_tau(model.sigma, tau)

    def test_reindex_positions_between_centers(self, rng):
        model = Mallows(list(range(6)), 0.4)
        other = model.recenter(Ranking([3, 1, 5, 0, 2, 4]))
        positions = model.sample_positions(40, rng)
        rankings = rankings_from_positions(model, positions)
        reindexed = reindex_positions(positions, model, other)
        assert (
            reindexed == positions_from_rankings(other, rankings)
        ).all()
        batched = other.log_probability_many(reindexed)
        for value, tau in zip(batched, rankings):
            assert value == pytest.approx(
                other.log_probability(tau), abs=1e-12
            )


class TestPredicateKernels:
    def test_union_matcher_matches_scalar(self, rng):
        model = Mallows(list(range(6)), 1.0)
        labeling = Labeling(
            {0: {"A"}, 1: {"B"}, 2: {"A", "C"}, 3: {"C"}, 4: {"B"}, 5: set()}
        )
        union = PatternUnion(
            [
                LabelPattern([(node("c", "C"), node("a", "A"))]),
                LabelPattern(
                    [
                        (node("b", "B"), node("a2", "A")),
                        (node("a2", "A"), node("c2", "C")),
                    ]
                ),
            ]
        )
        positions = model.sample_positions(120, rng)
        batched = union_satisfied_many(model, union, labeling, positions)
        for decision, tau in zip(
            batched, rankings_from_positions(model, positions)
        ):
            assert bool(decision) == matches_union(tau, union, labeling)

    def test_unservable_node_never_matches(self, rng):
        model = Mallows(list(range(4)), 1.0)
        labeling = Labeling({0: {"A"}, 1: set(), 2: set(), 3: set()})
        pattern = LabelPattern([(node("a", "A"), node("z", "Z"))])
        positions = model.sample_positions(10, rng)
        assert not union_satisfied_many(
            model, pattern, labeling, positions
        ).any()

    def test_subranking_predicate_matches_scalar(self, rng):
        model = Mallows(list(range(7)), 0.9)
        psi = SubRanking([6, 3, 0])
        predicate = subranking_predicate(psi)
        positions = model.sample_positions(100, rng)
        batched = predicate.many(model, positions)
        for decision, tau in zip(
            batched, rankings_from_positions(model, positions)
        ):
            assert bool(decision) == psi.is_consistent_with(tau)
            assert bool(decision) == predicate(tau)

    def test_union_predicate_recompiles_per_model(self, rng):
        # One predicate reused across many short-lived models must always
        # match the scalar semantics (regression: an id()-keyed memo could
        # serve a stale compiled matcher after address reuse).
        labeling = Labeling({k: {"A"} if k % 2 else {"B"} for k in range(5)})
        union = PatternUnion([LabelPattern([(node("a", "A"), node("b", "B"))])])
        predicate = union_predicate(union, labeling)
        base = list(range(5))
        for trial in range(30):
            center = list(np.random.default_rng(trial).permutation(base))
            model = Mallows(center, 0.8)
            positions = model.sample_positions(50, rng)
            batched = predicate.many(model, positions)
            for decision, tau in zip(
                batched, rankings_from_positions(model, positions)
            ):
                assert bool(decision) == matches_union(tau, union, labeling)

    def test_compiled_matcher_reused_across_batches(self, rng):
        model = Mallows(list(range(5)), 1.0)
        labeling = Labeling({k: {"A"} if k % 2 else {"B"} for k in range(5)})
        union = PatternUnion([LabelPattern([(node("a", "A"), node("b", "B"))])])
        matcher = CompiledUnionMatcher(model, union, labeling)
        first = matcher(model.sample_positions(20, rng))
        second = matcher(model.sample_positions(20, rng))
        assert first.shape == second.shape == (20,)


class TestSeededEstimatorEquivalence:
    def test_empirical_probability_identical(self):
        model = Mallows(list(range(8)), 0.6)
        labeling = Labeling({k: {"L"} if k < 2 else {"R"} for k in range(8)})
        pattern = LabelPattern([(node("r", "R"), node("l", "L"))])
        predicate = union_predicate(PatternUnion([pattern]), labeling)
        scalar = empirical_probability(
            model, predicate, 700, np.random.default_rng(2), vectorized=False
        )
        batched = empirical_probability(
            model, predicate, 700, np.random.default_rng(2), batch_size=128
        )
        assert scalar == batched  # same hits, same n, same estimate

    def test_is_amp_estimates_identical(self):
        model = Mallows(list(range(7)), 0.35)
        psi = SubRanking([6, 0])
        scalar = is_amp_estimate(
            model, psi, 400, np.random.default_rng(4), vectorized=False
        )
        batched = is_amp_estimate(model, psi, 400, np.random.default_rng(4))
        assert batched.estimate == pytest.approx(
            scalar.estimate, abs=1e-12, rel=1e-12
        )

    def test_balance_heuristic_identical(self):
        model = Mallows(list(range(6)), 0.3)
        psi = SubRanking([5, 1])
        proposals = [
            AMPSampler(model.recenter(center), psi)
            for center in (
                Ranking([5, 1, 0, 2, 3, 4]),
                Ranking([0, 5, 1, 2, 3, 4]),
                Ranking([2, 5, 3, 1, 0, 4]),
            )
        ]
        scalar = balance_heuristic_estimate(
            model, proposals, 150, np.random.default_rng(6), vectorized=False
        )
        batched = balance_heuristic_estimate(
            model, proposals, 150, np.random.default_rng(6)
        )
        assert batched == pytest.approx(scalar, abs=1e-12, rel=1e-12)

    def test_mis_amp_estimates_identical(self):
        model = Mallows(["s1", "s2", "s3", "s4"], 0.2)
        psi = SubRanking(["s4", "s1"])
        scalar = mis_amp_estimate(
            model, psi, 300, np.random.default_rng(7), vectorized=False
        )
        batched = mis_amp_estimate(model, psi, 300, np.random.default_rng(7))
        assert batched.estimate == pytest.approx(
            scalar.estimate, abs=1e-12, rel=1e-12
        )

    def test_mis_amp_lite_estimates_identical(self):
        model = Mallows(list(range(6)), 0.3)
        labeling = Labeling(
            {0: {"A"}, 1: {"B"}, 2: {"A"}, 3: {"C"}, 4: {"B"}, 5: {"C"}}
        )
        union = PatternUnion(
            [
                LabelPattern([(node("c", "C"), node("a", "A"))]),
                LabelPattern([(node("b", "B"), node("a2", "A"))]),
            ]
        )
        scalar = mis_amp_lite(
            model,
            labeling,
            union,
            n_proposals=4,
            n_per_proposal=120,
            rng=np.random.default_rng(9),
            vectorized=False,
        )
        batched = mis_amp_lite(
            model,
            labeling,
            union,
            n_proposals=4,
            n_per_proposal=120,
            rng=np.random.default_rng(9),
        )
        assert batched.probability == pytest.approx(
            scalar.probability, abs=1e-12, rel=1e-12
        )


class TestMarginalProperties:
    def test_sample_many_marginals_match_enumeration(self):
        # Batched first-position marginals agree with the exact support.
        model = Mallows(list(range(5)), 0.4)
        n = 40_000
        positions = model.sample_positions(n, np.random.default_rng(123))
        exact_top = np.zeros(5)
        for tau, p in model.enumerate_support():
            exact_top[tau.item_at(1)] += p
        observed_top = (positions == 1).mean(axis=0)
        sigmas = np.sqrt(exact_top * (1 - exact_top) / n)
        assert (np.abs(observed_top - exact_top) < 4 * sigmas + 1e-3).all()

    def test_sample_many_marginals_match_scalar_frequencies(self):
        # Scalar and batched samplers estimate the same pairwise marginal.
        model = Mallows(list(range(6)), 0.7)
        n = 6000
        scalar_hits = sum(
            tau.prefers(5, 0)
            for tau in model.sample_many(
                n, np.random.default_rng(42), vectorized=False
            )
        )
        positions = model.sample_positions(n, np.random.default_rng(977))
        batched_hits = int((positions[:, 5] < positions[:, 0]).sum())
        scalar_rate, batched_rate = scalar_hits / n, batched_hits / n
        spread = 4 * math.sqrt(0.25 / n)
        assert abs(scalar_rate - batched_rate) < 2 * spread

    def test_amp_marginals_match_proposal_density(self):
        model = Mallows(list(range(4)), 0.5)
        sampler = AMPSampler(model, SubRanking([3, 0]))
        n = 20_000
        positions = sampler.sample_positions(n, np.random.default_rng(31))
        rankings = rankings_from_positions(model, positions)
        counts: dict = {}
        for tau in rankings:
            counts[tau] = counts.get(tau, 0) + 1
        for tau, count in counts.items():
            p = sampler.probability(tau)
            sigma = math.sqrt(p * (1 - p) / n)
            assert abs(count / n - p) < 4 * sigma + 2e-3


class TestSampleOnlyModels:
    def test_rank_distribution_sampling_works_without_positions_api(self, rng):
        # Models exposing only sample() (Plackett-Luce, mixtures) keep the
        # scalar sampling path of rank_distribution.
        from repro.rim.marginals import rank_distribution
        from repro.rim.mixture import MallowsMixture
        from repro.rim.plackett_luce import PlackettLuce

        pl = PlackettLuce({"a": 3.0, "b": 2.0, "c": 1.0})
        distribution = rank_distribution(pl, "a", n_samples=400, rng=rng)
        assert sum(distribution) == pytest.approx(1.0)
        mixture = MallowsMixture(
            [Mallows(list(range(4)), 0.3), Mallows(list(range(4)), 0.9)],
            [0.5, 0.5],
        )
        distribution = rank_distribution(mixture, 2, n_samples=400, rng=rng)
        assert sum(distribution) == pytest.approx(1.0)

    def test_rank_distribution_batched_matches_exact(self):
        from repro.rim.marginals import rank_distribution

        model = Mallows(list(range(5)), 0.5)
        exact = rank_distribution(model, 2)
        sampled = rank_distribution(
            model, 2, n_samples=30_000, rng=np.random.default_rng(55)
        )
        assert np.allclose(sampled, exact, atol=0.02)


class TestRejectionUntilWithin:
    def test_exact_zero_short_circuits(self, rng):
        # An unsatisfiable event with exact_value 0 must stop at the first
        # check instead of burning all max_samples (old behavior).
        model = Mallows(list(range(4)), 0.5)
        result = rejection_until_within(
            model,
            lambda tau: False,
            exact_value=0.0,
            relative_tolerance=0.01,
            rng=rng,
            max_samples=500_000,
            check_every=100,
        )
        assert result.n_samples == 100
        assert result.estimate == 0.0

    def test_exact_zero_short_circuits_vectorized(self, rng):
        model = Mallows(list(range(5)), 0.5)
        # A satisfiable predicate evaluated against exact 0: convergence is
        # impossible once a hit lands, so the run stops at a check instead
        # of burning the budget.
        predicate = subranking_predicate(SubRanking([0, 1]))
        result = rejection_until_within(
            model,
            predicate,
            exact_value=0.0,
            relative_tolerance=0.01,
            rng=rng,
            max_samples=500_000,
            check_every=100,
        )
        assert result.n_samples == 100

    def test_scalar_and_vectorized_stop_identically(self):
        model = Mallows(list(range(5)), 0.6)
        psi = SubRanking([4, 0])
        exact = sum(
            p
            for tau, p in model.enumerate_support()
            if psi.is_consistent_with(tau)
        )
        predicate = subranking_predicate(psi)
        scalar = rejection_until_within(
            model,
            predicate,
            exact,
            0.05,
            np.random.default_rng(77),
            max_samples=300_000,
            vectorized=False,
        )
        batched = rejection_until_within(
            model,
            predicate,
            exact,
            0.05,
            np.random.default_rng(77),
            max_samples=300_000,
        )
        assert scalar == batched

    def test_vectorized_requires_capable_predicate(self, rng):
        model = Mallows(list(range(4)), 0.5)
        with pytest.raises(TypeError, match="many"):
            rejection_until_within(
                model, lambda tau: True, 0.5, 0.01, rng, vectorized=True
            )


class TestPrecompute:
    def test_tables_cached_on_instance(self):
        model = Mallows(list(range(6)), 0.5)
        assert model_tables(model) is model_tables(model)

    def test_cumulative_matches_row_prefix_sums(self):
        model = geometric_rim(5, 0.3)
        tables = model_tables(model)
        for i in range(1, 6):
            expected = np.concatenate(
                ([0.0], np.cumsum(model.pi[i - 1, :i]))
            )
            assert np.array_equal(tables.cumulative[i - 1, : i + 1], expected)

    def test_mallows_matrix_shared_across_instances(self):
        a = Mallows(list(range(8)), 0.45)
        b = a.recenter(Ranking([3, 1, 5, 0, 2, 4, 7, 6]))
        assert a.pi is b.pi  # one memoized (m, phi) parameter matrix

    def test_memoization_disabled_recomputes(self):
        with memoization_disabled():
            a = mallows_matrix(5, 0.5)
            b = mallows_matrix(5, 0.5)
            assert a is not b
            model = Mallows(list(range(5)), 0.5)
            assert model_tables(model) is not model_tables(model)
        warm_a = mallows_matrix(5, 0.5)
        warm_b = mallows_matrix(5, 0.5)
        assert warm_a is warm_b

    def test_mallows_log_z_matches_normalization(self):
        for phi in (0.0, 0.3, 1.0):
            model = Mallows(list(range(7)), phi)
            assert model.log_normalization == pytest.approx(
                mallows_log_z(7, phi)
            )
            assert model.normalization == pytest.approx(
                math.exp(mallows_log_z(7, phi))
            )

    def test_insertion_matrix_copy_is_writable(self):
        matrix = mallows_insertion_matrix(6, 0.4)
        matrix[0, 0] = 0.123  # public API returns a private copy
        assert mallows_insertion_matrix(6, 0.4)[0, 0] == 1.0


class TestVectorizedInitValidation:
    def test_negative_entry_rejected(self):
        pi = np.array([[1.0, 0.0], [-0.2, 1.2]])
        with pytest.raises(ValueError, match="negative"):
            RIM(["a", "b"], pi)

    def test_bad_row_sum_rejected(self):
        pi = np.array([[1.0, 0.0], [0.4, 0.4]])
        with pytest.raises(ValueError, match="sums to"):
            RIM(["a", "b"], pi)

    def test_mass_beyond_diagonal_rejected(self):
        pi = np.array([[1.0, 0.1], [0.5, 0.5]])
        with pytest.raises(ValueError, match="beyond"):
            RIM(["a", "b"], pi)

    def test_valid_matrix_accepted(self):
        model = RIM(["a", "b", "c"], Mallows(["a", "b", "c"], 0.5).pi)
        assert model.m == 3
