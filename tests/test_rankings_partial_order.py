"""Tests for partial orders: closure, extensions, consistency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rankings.partial_order import CyclicOrderError, PartialOrder
from repro.rankings.permutation import Ranking
from repro.rankings.subranking import SubRanking, consistent_subrankings


class TestConstruction:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            PartialOrder([("a", "a")])

    def test_items_include_isolated(self):
        order = PartialOrder([("a", "b")], items=["c"])
        assert order.items == {"a", "b", "c"}

    def test_equality(self):
        assert PartialOrder([("a", "b")]) == PartialOrder([("a", "b")])
        assert PartialOrder([("a", "b")]) != PartialOrder([("b", "a")])


class TestCycles:
    def test_acyclic(self):
        assert PartialOrder([("a", "b"), ("b", "c")]).is_acyclic()

    def test_two_cycle(self):
        assert not PartialOrder([("a", "b"), ("b", "a")]).is_acyclic()

    def test_long_cycle(self):
        order = PartialOrder([("a", "b"), ("b", "c"), ("c", "a")])
        assert not order.is_acyclic()
        with pytest.raises(CyclicOrderError):
            order.topological_order()


class TestClosureAndReduction:
    def test_chain_closure(self):
        order = PartialOrder([("a", "b"), ("b", "c")])
        closure = order.transitive_closure()
        assert ("a", "c") in closure.edges
        assert len(closure.edges) == 3

    def test_example_4_4(self):
        # tc(la > lb > lc) = three edges (paper Example 4.4).
        order = PartialOrder([("la", "lb"), ("lb", "lc")])
        assert order.transitive_closure().edges == {
            ("la", "lb"),
            ("lb", "lc"),
            ("la", "lc"),
        }

    def test_reduction_inverts_closure(self):
        order = PartialOrder([("a", "b"), ("b", "c"), ("a", "c"), ("a", "d")])
        reduced = order.transitive_reduction()
        assert ("a", "c") not in reduced.edges
        assert reduced.transitive_closure() == order.transitive_closure()


class TestMerge:
    def test_merge_unions_edges(self):
        merged = PartialOrder([("a", "b")]).merge(PartialOrder([("b", "c")]))
        assert merged.edges == {("a", "b"), ("b", "c")}

    def test_merge_can_create_cycle(self):
        merged = PartialOrder([("a", "b")]).merge(PartialOrder([("b", "a")]))
        assert not merged.is_acyclic()


class TestConsistency:
    def test_consistent_ranking(self):
        order = PartialOrder([("c", "a")])
        assert order.is_consistent(Ranking(["b", "c", "a"]))
        assert not order.is_consistent(Ranking(["a", "b", "c"]))


class TestLinearExtensions:
    def test_chain_has_one_extension(self):
        order = PartialOrder.from_chain(["x", "y", "z"])
        assert list(order.linear_extensions()) == [("x", "y", "z")]

    def test_antichain_has_factorial_extensions(self):
        order = PartialOrder(items=["a", "b", "c"])
        assert len(list(order.linear_extensions())) == 6

    def test_v_shape(self):
        # {a > c, b > c}: extensions <a,b,c> and <b,a,c> (paper Section 5.2).
        order = PartialOrder([("a", "c"), ("b", "c")])
        assert sorted(order.linear_extensions()) == [
            ("a", "b", "c"),
            ("b", "a", "c"),
        ]

    def test_extensions_are_consistent(self):
        order = PartialOrder([("a", "b"), ("c", "d"), ("a", "d")])
        for extension in order.linear_extensions():
            assert order.is_consistent(Ranking(extension))

    def test_cyclic_has_no_extensions(self):
        order = PartialOrder([("a", "b"), ("b", "a")])
        with pytest.raises(CyclicOrderError):
            list(order.linear_extensions())

    def test_count_with_limit(self):
        order = PartialOrder(items=list(range(4)))
        assert order.count_linear_extensions(limit=5) == 5
        assert order.count_linear_extensions() == 24

    def test_consistent_subrankings_wrapper(self):
        order = PartialOrder([("a", "c"), ("b", "c")])
        subs = list(consistent_subrankings(order))
        assert SubRanking(("a", "b", "c")) in subs
        assert len(subs) == 2


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=6,
    )
)
def test_extension_count_matches_enumeration(edges):
    order = PartialOrder(edges)
    if not order.is_acyclic():
        return
    items = sorted(order.items, key=repr)
    if len(items) > 5:
        return
    brute = sum(
        1
        for tau in Ranking.all_rankings(items)
        if order.is_consistent(tau)
    )
    assert len(list(order.linear_extensions())) == brute
