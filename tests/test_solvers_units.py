"""Targeted unit tests for the individual exact solvers."""

import pytest

from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, node
from repro.patterns.union import PatternUnion
from repro.rim.mallows import Mallows
from repro.solvers.base import SolverResult, SolverTimeout, UnsupportedPatternError
from repro.solvers.bipartite import bipartite_probability
from repro.solvers.brute import brute_force_probability
from repro.solvers.dispatch import choose_method, exact_probability, solve
from repro.solvers.general import general_probability
from repro.solvers.lifted import lifted_probability
from repro.solvers.two_label import two_label_probability


def simple_instance():
    model = Mallows(list(range(5)), 0.5)
    labeling = Labeling({0: {"A"}, 1: {"B"}, 2: {"A"}, 3: {"C"}, 4: set()})
    g1 = LabelPattern([(node("a", "A"), node("b", "B"))])
    g2 = LabelPattern([(node("c", "C"), node("a2", "A"))])
    return model, labeling, PatternUnion([g1, g2])


class TestSolverResult:
    def test_probability_range_validated(self):
        with pytest.raises(ValueError):
            SolverResult(1.5, solver="x")
        with pytest.raises(ValueError):
            SolverResult(-0.5, solver="x")

    def test_clamped(self):
        result = SolverResult(1.0 + 5e-7, solver="x")
        assert result.clamped == 1.0


class TestKnownValues:
    def test_certain_pattern(self):
        # Label on every item, edge between two always-present labels over
        # uniform ranking: A > B holds unless all A items are below all B.
        model = Mallows(["x", "y"], 1.0)
        labeling = Labeling({"x": {"A"}, "y": {"B"}})
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        # Uniform over 2 rankings; only <x, y> satisfies A > B.
        assert exact_probability(model, labeling, pattern) == pytest.approx(0.5)

    def test_point_mass_model(self):
        model = Mallows(["x", "y", "z"], 0.0)
        labeling = Labeling({"x": {"A"}, "z": {"B"}})
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        assert exact_probability(model, labeling, pattern) == 1.0
        reverse = LabelPattern([(node("b", "B"), node("a", "A"))])
        assert exact_probability(model, labeling, reverse) == 0.0

    def test_unsatisfiable_label(self):
        model = Mallows(["x", "y"], 0.5)
        labeling = Labeling({"x": {"A"}, "y": {"B"}})
        pattern = LabelPattern([(node("a", "A"), node("z", "Z"))])
        for method in ("two_label", "bipartite", "general", "lifted", "brute"):
            assert (
                solve(model, labeling, pattern, method=method).probability
                == pytest.approx(0.0)
            )

    def test_empty_pattern_is_certain(self):
        model = Mallows(["x", "y"], 0.5)
        labeling = Labeling({"x": set(), "y": set()})
        pattern = LabelPattern(nodes=[])
        assert lifted_probability(model, labeling, pattern).probability == 1.0


class TestTwoLabelSolver:
    def test_rejects_non_two_label(self):
        model, labeling, _ = simple_instance()
        chain = LabelPattern(
            [(node("a", "A"), node("b", "B")), (node("b", "B"), node("c", "C"))]
        )
        with pytest.raises(UnsupportedPatternError):
            two_label_probability(model, labeling, chain)

    def test_example_4_2_state_semantics(self):
        # Paper Example 4.2 scenario: items a, c with label l1 and b with r1;
        # the violation probability of {l1 > r1} is the chance all l1 items
        # rank below all r1 items.
        model = Mallows(["a", "b", "c"], 1.0)
        labeling = Labeling({"a": {"l1"}, "b": {"r1"}, "c": {"l1"}})
        pattern = LabelPattern([(node("l", "l1"), node("r", "r1"))])
        # Uniform over 6 rankings; violations: b above both a and c -> 2.
        assert two_label_probability(
            model, labeling, pattern
        ).probability == pytest.approx(4 / 6)

    def test_timeout_raised(self):
        import random

        from tests.conftest import random_two_label_instance

        pyrng = random.Random(0)
        model, labeling, union = random_two_label_instance(
            pyrng, m_choices=(30,), max_patterns=3
        )
        with pytest.raises(SolverTimeout):
            two_label_probability(model, labeling, union, time_budget=1e-4)


class TestBipartiteSolver:
    def test_rejects_non_bipartite(self):
        model, labeling, _ = simple_instance()
        chain = LabelPattern(
            [(node("a", "A"), node("b", "B")), (node("b", "B"), node("c", "C"))]
        )
        with pytest.raises(UnsupportedPatternError):
            bipartite_probability(model, labeling, chain)

    def test_unsatisfiable_short_circuits(self):
        model = Mallows(["x", "y"], 0.5)
        labeling = Labeling({"x": {"A"}, "y": set()})
        pattern = LabelPattern([(node("a", "A"), node("z", "Z"))])
        result = bipartite_probability(model, labeling, pattern)
        assert result.probability == 0.0
        assert result.stats.get("unsatisfiable")

    def test_stats_reported(self):
        model, labeling, _ = simple_instance()
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        result = bipartite_probability(model, labeling, pattern)
        assert result.stats["peak_states"] >= 1
        assert result.solver == "bipartite"


class TestGeneralSolver:
    def test_term_count(self):
        model, labeling, union = simple_instance()
        result = general_probability(model, labeling, union)
        # 2 patterns -> 2^2 - 1 inclusion-exclusion terms.
        assert result.stats["n_terms"] == 3

    def test_inclusion_exclusion_matches_direct_union(self):
        model, labeling, union = simple_instance()
        direct = lifted_probability(model, labeling, union).probability
        via_ie = general_probability(model, labeling, union).probability
        assert via_ie == pytest.approx(direct, abs=1e-9)

    def test_seconds_by_size_recorded(self):
        model, labeling, union = simple_instance()
        result = general_probability(model, labeling, union)
        assert set(result.stats["seconds_by_conjunction_size"]) == {1, 2}


class TestLiftedSolver:
    def test_stops_after_last_relevant_item(self):
        # Relevant items early in sigma: the DP should stop well before m.
        model = Mallows(list(range(10)), 0.5)
        labeling = Labeling({0: {"A"}, 1: {"B"}})
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        result = lifted_probability(model, labeling, pattern)
        assert result.stats["last_relevant_step"] == 2

    def test_no_relevant_items(self):
        model = Mallows(list(range(3)), 0.5)
        labeling = Labeling({0: set(), 1: set(), 2: set()})
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        result = lifted_probability(model, labeling, pattern)
        assert result.probability == 0.0
        assert result.stats["no_relevant_items"]


class TestDispatch:
    def test_choose_method(self):
        _, _, union = simple_instance()
        assert choose_method(union) == "two_label"
        chain = LabelPattern(
            [(node("a", "A"), node("b", "B")), (node("b", "B"), node("c", "C"))]
        )
        assert choose_method(PatternUnion([chain])) == "general"
        v = LabelPattern(
            [(node("a", "A"), node("c", "C")), (node("b", "B"), node("c", "C"))]
        )
        assert choose_method(PatternUnion([v])) == "bipartite"

    def test_unknown_method_rejected(self):
        model, labeling, union = simple_instance()
        with pytest.raises(ValueError, match="unknown method"):
            solve(model, labeling, union, method="magic")

    def test_auto_agrees_with_brute(self):
        model, labeling, union = simple_instance()
        auto = solve(model, labeling, union).probability
        brute = brute_force_probability(model, labeling, union).probability
        assert auto == pytest.approx(brute, abs=1e-9)
