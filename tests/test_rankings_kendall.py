"""Unit and property tests for Kendall-tau distances."""

import pytest
from hypothesis import given, strategies as st

from repro.rankings.kendall import (
    concordant_pairs,
    discordant_pairs,
    kendall_tau,
    kendall_tau_naive,
    max_kendall_tau,
    subranking_distance,
)
from repro.rankings.permutation import Ranking
from repro.rankings.subranking import SubRanking


class TestBasics:
    def test_identical(self):
        tau = Ranking([1, 2, 3])
        assert kendall_tau(tau, tau) == 0

    def test_adjacent_swap(self):
        assert kendall_tau(Ranking([1, 2, 3]), Ranking([2, 1, 3])) == 1

    def test_reverse_is_maximum(self):
        tau = Ranking(range(6))
        assert kendall_tau(tau, tau.reversed()) == max_kendall_tau(6)

    def test_known_value(self):
        # <a,b,c> vs <c,a,b>: pairs (a,c) and (b,c) disagree.
        assert kendall_tau(Ranking("abc"), Ranking("cab")) == 2

    def test_different_item_sets_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau(Ranking([1, 2]), Ranking([1, 3]))

    def test_different_lengths_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau(Ranking([1, 2]), Ranking([1, 2, 3]))


class TestPairDecomposition:
    def test_discordant_plus_concordant_cover_all(self):
        a = Ranking([1, 2, 3, 4])
        b = Ranking([4, 2, 1, 3])
        disc = discordant_pairs(a, b)
        conc = concordant_pairs(a, b)
        assert len(disc) + len(conc) == 6
        assert len(disc) == kendall_tau(a, b)

    def test_overlapping_item_sets(self):
        a = Ranking([1, 2, 3])
        b = Ranking([3, 2, 4])
        # shared items {2, 3}: a has 2 above 3; b has 3 above 2.
        assert discordant_pairs(a, b) == [(2, 3)]


class TestSubrankingDistance:
    def test_consistent_subranking(self):
        sigma = Ranking([1, 2, 3, 4])
        assert subranking_distance(SubRanking([1, 3]), sigma) == 0

    def test_inverted_subranking(self):
        sigma = Ranking([1, 2, 3, 4])
        assert subranking_distance(SubRanking([4, 1]), sigma) == 1

    def test_unknown_items_rejected(self):
        with pytest.raises(KeyError):
            subranking_distance(SubRanking([9]), Ranking([1, 2]))

    def test_full_subranking_equals_kendall(self):
        sigma = Ranking([1, 2, 3, 4])
        tau = Ranking([3, 1, 4, 2])
        assert subranking_distance(SubRanking(tau.items), sigma) == kendall_tau(
            sigma, tau
        )


perms = st.permutations(list(range(7)))


@given(perms, perms)
def test_fast_matches_naive(p1, p2):
    a, b = Ranking(p1), Ranking(p2)
    assert kendall_tau(a, b) == kendall_tau_naive(a, b)


@given(perms, perms)
def test_symmetry(p1, p2):
    a, b = Ranking(p1), Ranking(p2)
    assert kendall_tau(a, b) == kendall_tau(b, a)


@given(perms, perms, perms)
def test_triangle_inequality(p1, p2, p3):
    a, b, c = Ranking(p1), Ranking(p2), Ranking(p3)
    assert kendall_tau(a, c) <= kendall_tau(a, b) + kendall_tau(b, c)


@given(perms, perms)
def test_identity_of_indiscernibles(p1, p2):
    a, b = Ranking(p1), Ranking(p2)
    assert (kendall_tau(a, b) == 0) == (a == b)


@given(perms)
def test_distance_bounds(p):
    tau = Ranking(p)
    sigma = Ranking(range(7))
    assert 0 <= kendall_tau(sigma, tau) <= max_kendall_tau(7)
