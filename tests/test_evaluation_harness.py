"""Tests for the evaluation harness utilities."""

import math

import pytest

from repro.evaluation.harness import (
    Timer,
    format_table,
    geometric_mean,
    percentile,
    relative_error,
    save_text,
)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.seconds > 0.0


class TestRelativeError:
    def test_basic(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)

    def test_zero_exact_zero_estimate(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_exact_nonzero_estimate(self):
        assert relative_error(0.5, 0.0) == math.inf


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 0.00001]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "long-name" in lines[3] or "long-name" in lines[2]
        assert "1.000e-05" in table

    def test_handles_mixed_types(self):
        table = format_table(["x"], [[True], [None], [3]])
        assert "True" in table and "None" in table


class TestSaveText:
    def test_creates_parents(self, tmp_path):
        target = tmp_path / "nested" / "out.txt"
        save_text(target, "hello")
        assert target.read_text() == "hello"
