"""Tests for the sharded shared-cache tier (:mod:`repro.service.shard`).

Covers the tentpole contract: stable key partitioning, per-shard LRU and
write-back semantics, the cache-server protocol (including the version
handshake and fleet-wide single-flight), the drop-in
:class:`ShardedSolverCache`, warm-fleet restarts performing zero solves,
and bit-identity of sharded vs. unsharded answers on a seeded mixed-kind
corpus.
"""

import os
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.datasets.crowdrank import crowdrank_database
from repro.service.cache import SolverCache
from repro.service.persist import default_version, encode_key
from repro.service.service import PreferenceService
from repro.service.shard import (
    ShardCacheServer,
    ShardClient,
    ShardGroup,
    ShardProtocolError,
    ShardStore,
    ShardedSolverCache,
    shard_db_path,
    shard_of,
)


@pytest.fixture
def db():
    return crowdrank_database(n_workers=30, n_movies=6, seed=11)


#: A seeded mixed-kind corpus over the CrowdRank schema.
MIXED_REQUESTS = (
    "P(v; m1; m2), M(m1, 'Comedy', _, _, _)",
    "COUNT P(v; m1; m2), M(m1, _, 'F', _, _), M(m2, _, 'M', _, _)",
    "TOPK 3 P(v; m1; m2), M(m1, 'Thriller', _, _, _)",
    "AGG mean(V.age) P(v; m1; m2), M(m1, 'Drama', _, _, _)",
    "P(v; m1; m2), M(m1, 'Comedy', _, _, _)",  # repeat: must dedup
)


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------


class TestShardOf:
    def test_stable_and_in_range(self):
        keys = [encode_key(("session", "k", i)) for i in range(200)]
        for n_shards in (1, 2, 7):
            first = [shard_of(key, n_shards) for key in keys]
            second = [shard_of(key, n_shards) for key in keys]
            assert first == second
            assert all(0 <= index < n_shards for index in first)

    def test_spreads_across_shards(self):
        keys = [encode_key(("session", "k", i)) for i in range(400)]
        counts = [0] * 4
        for key in keys:
            counts[shard_of(key, 4)] += 1
        # blake2b over distinct keys: no shard may be empty or hog >60%.
        assert min(counts) > 0
        assert max(counts) < 0.6 * len(keys)

    def test_rejects_empty_partition(self):
        with pytest.raises(ValueError):
            shard_of("k", 0)

    def test_shard_db_path(self):
        assert (
            shard_db_path(os.path.join("x", "cache.sqlite"), 3)
            == os.path.join("x", "cache-shard3.sqlite")
        )
        assert shard_db_path("warm", 0) == "warm-shard0"


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------


class TestShardStore:
    def test_lru_eviction_per_shard(self):
        store = ShardStore(capacity=2)
        store.put_many([("a", (0.1, "s")), ("b", (0.2, "s"))])
        assert store.get("a") == (0.1, "s")  # refreshes recency
        store.put_many([("c", (0.3, "s"))])
        assert store.get("b") is None
        assert store.get("a") == (0.1, "s")
        assert store.stats()["evictions"] == 1

    def test_claim_wait_release_cycle(self):
        store = ShardStore(capacity=8)
        assert store.claim("k") == ("claimed", None)
        assert store.claim("k") == ("wait", None)
        store.put_many([("k", (0.5, "s"))])
        assert store.wait("k", 1.0) == (0.5, "s")
        assert store.claim("k") == ("value", (0.5, "s"))

    def test_abandoned_claim_unblocks_waiters(self):
        store = ShardStore(capacity=8)
        assert store.claim("k") == ("claimed", None)
        waited = []
        thread = threading.Thread(
            target=lambda: waited.append(store.wait("k", 5.0))
        )
        thread.start()
        store.release("k")  # owner gives up without publishing
        thread.join(5.0)
        assert waited == [None]

    def test_interleaved_writers_across_shards(self, tmp_path):
        # Concurrent batch writers hitting all shards at once: every
        # write lands, in memory and in the per-shard files.
        stem = tmp_path / "interleaved.sqlite"
        group = ShardGroup(n_shards=3, capacity=4096, cache_db=stem)
        keys = [encode_key(("session", "w", i)) for i in range(120)]

        def write(offset):
            group.put_many(
                (key, (index / 1000.0 + offset, f"writer{offset}"))
                for index, key in enumerate(keys[offset::6])
            )

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(write, range(6)))
        assert len(group) == len(keys)
        for offset in range(6):
            for index, key in enumerate(keys[offset::6]):
                assert group.get(key) == (
                    index / 1000.0 + offset,
                    f"writer{offset}",
                )
        group.close()
        # Together the per-shard files hold every key, each a piece.
        fresh = ShardGroup(n_shards=3, capacity=4096, cache_db=stem)
        sizes = [shard["disk_size"] for shard in fresh.stats()["shards"]]
        fresh.close()
        assert sum(sizes) == len(keys)
        assert all(size > 0 for size in sizes)

    def test_version_mismatch_clears_shards(self, tmp_path):
        stem = tmp_path / "versioned.sqlite"
        group = ShardGroup(n_shards=2, capacity=64, cache_db=stem)
        group.put_many([(encode_key(("session", i)), (0.5, "s"))
                        for i in range(10)])
        group.close()
        same = ShardGroup(n_shards=2, capacity=64, cache_db=stem)
        assert same.get(encode_key(("session", 3))) == (0.5, "s")
        same.close()
        bumped = ShardGroup(
            n_shards=2, capacity=64, cache_db=stem, version="next-format/k2"
        )
        assert bumped.get(encode_key(("session", 3))) is None
        assert bumped.stats()["totals"]["disk_size"] == 0
        bumped.close()


# ----------------------------------------------------------------------
# The cache-server protocol
# ----------------------------------------------------------------------


class TestShardServer:
    def test_round_trip_and_stats(self):
        with ShardCacheServer(n_shards=2, capacity=64) as server:
            client = ShardClient(server.address)
            assert client.get("k") is None
            client.put_many([("k", (0.25, "lifted"))])
            assert client.get("k") == (0.25, "lifted")
            stats = client.stats()
            assert stats["n_shards"] == 2
            assert stats["totals"]["size"] == 1
            assert stats["version"] == default_version()
            client.clear()
            assert client.get("k") is None
            client.close()

    def test_version_handshake_rejects_stale_clients(self):
        group = ShardGroup(n_shards=1, capacity=8, version="old-format/k0")
        with ShardCacheServer(group=group) as server:
            client = ShardClient(server.address)
            with pytest.raises(ShardProtocolError, match="version mismatch"):
                client.get("k")
            client.close()

    def test_single_flight_across_clients(self):
        # Two fleet members race one key: exactly one claims, the other
        # waits and reads the published value.
        with ShardCacheServer(n_shards=2, capacity=64) as server:
            owner = ShardClient(server.address)
            peer = ShardClient(server.address)
            assert owner.claim("hot") == ("claimed", None)
            assert peer.claim("hot") == ("wait", None)
            waited = []
            thread = threading.Thread(
                target=lambda: waited.append(peer.wait("hot", 10.0))
            )
            thread.start()
            owner.put_many([("hot", (0.75, "two_label"))])
            thread.join(10.0)
            assert waited == [(0.75, "two_label")]
            owner.close()
            peer.close()

    def test_malformed_put_many_is_rejected(self):
        with ShardCacheServer(n_shards=1, capacity=8) as server:
            client = ShardClient(server.address)
            with pytest.raises(ShardProtocolError, match="pairs"):
                client.put_many([("k", "not-a-pair")])
            # The connection survives the protocol error.
            client.put_many([("k", (0.5, "s"))])
            assert client.get("k") == (0.5, "s")
            client.close()

    def test_client_is_picklable(self):
        with ShardCacheServer(n_shards=1, capacity=8) as server:
            client = ShardClient(server.address)
            client.put_many([("k", (0.5, "s"))])
            clone = pickle.loads(pickle.dumps(client))
            assert clone.get("k") == (0.5, "s")
            client.close()
            clone.close()

    def test_bad_address_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            ShardClient("nonsense")


# ----------------------------------------------------------------------
# The drop-in cache
# ----------------------------------------------------------------------


class TestShardedSolverCache:
    def test_address_excludes_cache_db(self):
        with pytest.raises(ValueError, match="server"):
            ShardedSolverCache(address="127.0.0.1:1", cache_db="x.sqlite")

    def test_write_through_and_promotion(self, tmp_path):
        cache = ShardedSolverCache(
            capacity=8, n_shards=2, cache_db=tmp_path / "tier.sqlite"
        )
        cache.put(("session", "a"), (0.5, "s"))
        assert cache.get(("session", "a")) == (0.5, "s")
        # A second cache over the same files sees the write-back.
        cache.close()
        fresh = ShardedSolverCache(
            capacity=8, n_shards=2, cache_db=tmp_path / "tier.sqlite"
        )
        assert fresh.get(("session", "a")) == (0.5, "s")
        # ... and promoted it into its local LRU (no tier consultation).
        before = fresh.tier_stats()["shard_misses"]
        assert fresh.get(("session", "a")) == (0.5, "s")
        assert fresh.tier_stats()["shard_misses"] == before
        fresh.close()

    def test_non_persistable_values_stay_local(self):
        cache = ShardedSolverCache(capacity=8, n_shards=2)
        marker = object()
        cache.put(("solve", "rich"), marker)
        assert cache.get(("solve", "rich")) is marker
        assert cache.tier_stats()["shard_size"] == 0
        cache.close()

    def test_fleet_single_flight_one_solve(self):
        # N workers (each with its OWN ShardedSolverCache, sharing one
        # server) rush one cold key: the tier admits one compute.
        n_workers = 6
        with ShardCacheServer(n_shards=2, capacity=64) as server:
            barrier = threading.Barrier(n_workers)
            calls = []
            calls_lock = threading.Lock()

            def work(index):
                cache = ShardedSolverCache(
                    capacity=8, address=server.address
                )

                def compute():
                    with calls_lock:
                        calls.append(index)
                    return (0.625, "lifted")

                barrier.wait()
                value = cache.get_or_compute(("session", "hot"), compute)
                cache.close()
                return value

            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                results = list(pool.map(work, range(n_workers)))
            assert results == [(0.625, "lifted")] * n_workers
            assert len(calls) == 1

    def test_clear_drops_all_shards(self):
        cache = ShardedSolverCache(capacity=8, n_shards=3, shard_capacity=64)
        cache.put_many(
            [(("session", i), (0.5, "s")) for i in range(9)]
        )
        assert cache.tier_stats()["shard_size"] == 9
        cache.clear()
        assert cache.tier_stats()["shard_size"] == 0
        assert len(cache) == 0
        cache.close()


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------


class TestShardedService:
    def test_knob_validation(self):
        with pytest.raises(ValueError, match="shard_address excludes"):
            PreferenceService(shard_address="127.0.0.1:1", cache_shards=2)
        with pytest.raises(ValueError, match="not both"):
            PreferenceService(cache=SolverCache(4), cache_shards=2)

    def test_sharded_bit_identical_to_unsharded_mixed_kinds(self, db):
        # The seeded mixed-kind corpus: Probability, Count, TopK, and
        # Aggregate requests must produce bit-identical answers whether
        # the cache tier is sharded or not (aggregates draw from a seeded
        # rng, so both runs get an identically seeded generator).
        plain = PreferenceService(backend="serial")
        sharded = PreferenceService(backend="serial", cache_shards=3)
        reference = plain.evaluate_many(
            MIXED_REQUESTS, db, rng=np.random.default_rng(7)
        )
        answered = sharded.evaluate_many(
            MIXED_REQUESTS, db, rng=np.random.default_rng(7)
        )
        for theirs, ours in zip(reference, answered):
            assert ours.kind == theirs.kind
            assert ours.value == theirs.value

    def test_warm_fleet_restart_zero_solves(self, db, tmp_path):
        stem = tmp_path / "fleet.sqlite"
        queries = [MIXED_REQUESTS[0], MIXED_REQUESTS[1]]
        with ShardCacheServer(n_shards=2, cache_db=stem) as server:
            cold = PreferenceService(
                shard_address=server.address, backend="serial"
            )
            first = cold.evaluate_many(queries, db)
            assert first.n_distinct_solves > 0
        # The fleet restarts: a NEW server over the same shard files and
        # entirely new workers; nothing may be solved again.
        with ShardCacheServer(n_shards=2, cache_db=stem) as server:
            warm = PreferenceService(
                shard_address=server.address, backend="serial"
            )
            second = warm.evaluate_many(queries, db)
            assert second.n_distinct_solves == 0
            for theirs, ours in zip(first, second):
                assert ours.value == theirs.value

    def test_tier_depth_surfaces_per_shard_counters(self, db):
        service = PreferenceService(backend="serial", cache_shards=2)
        service.evaluate_many([MIXED_REQUESTS[0]], db)
        depth = service.tier_depth()
        assert depth["n_shards"] == 2
        assert len(depth["shards"]) == 2
        assert depth["totals"]["size"] > 0
        flat = service.stats()
        assert flat["n_shards"] == 2
        assert flat["shard_size"] == depth["totals"]["size"]

    def test_version_bump_refuses_stale_fleet(self, tmp_path):
        group = ShardGroup(
            n_shards=1, capacity=8, version="other-generation/k9"
        )
        with ShardCacheServer(group=group) as server:
            service = PreferenceService(
                shard_address=server.address, backend="serial"
            )
            with pytest.raises(ShardProtocolError, match="version mismatch"):
                service.cache.get(("session", "k"))
