"""Tests for the attribute-aggregation extension (the paper's future work)."""

import numpy as np
import pytest

from repro.db.examples import polling_example
from repro.query import aggregate_session_attribute, evaluate, parse_query


@pytest.fixture
def db():
    return polling_example()


REP_OVER_DEM = (
    "P(_, _; c1; c2), C(c1, 'R', _, _, _, _), C(c2, 'D', _, _, _, _)"
)


class TestAggregateSessionAttribute:
    def test_weighted_average_formula(self, db):
        q = parse_query(REP_OVER_DEM)
        agg = aggregate_session_attribute(
            q, db, relation="V", column="age", rng=np.random.default_rng(0)
        )
        result = evaluate(q, db)
        probabilities = [e.probability for e in result.per_session]
        ages = {"Ann": 20, "Bob": 30, "Dave": 50}
        values = [ages[e.key[0]] for e in result.per_session]
        expected = sum(p * v for p, v in zip(probabilities, values)) / sum(
            probabilities
        )
        assert agg.weighted_average == pytest.approx(expected)

    def test_expectation_close_to_analytic(self, db):
        # With independent Bernoulli sessions the conditional expectation of
        # the mean is computable by enumerating the 2^3 satisfying subsets.
        import itertools

        q = parse_query(REP_OVER_DEM)
        agg = aggregate_session_attribute(
            q, db, relation="V", column="age",
            n_worlds=60_000, rng=np.random.default_rng(1),
        )
        result = evaluate(q, db)
        probabilities = [e.probability for e in result.per_session]
        ages = {"Ann": 20.0, "Bob": 30.0, "Dave": 50.0}
        values = [ages[e.key[0]] for e in result.per_session]
        numerator = 0.0
        mass = 0.0
        for subset in itertools.product([0, 1], repeat=3):
            if not any(subset):
                continue
            weight = 1.0
            for included, p in zip(subset, probabilities):
                weight *= p if included else (1 - p)
            mean = sum(v for v, s in zip(values, subset) if s) / sum(subset)
            numerator += weight * mean
            mass += weight
        analytic = numerator / mass
        assert agg.expectation == pytest.approx(analytic, rel=0.02)
        assert agg.probability_any == pytest.approx(mass, abs=0.02)

    def test_sum_statistic(self, db):
        q = parse_query(REP_OVER_DEM)
        agg = aggregate_session_attribute(
            q, db, relation="V", column="age", statistic="sum",
            n_worlds=40_000, rng=np.random.default_rng(2),
        )
        # E[sum over satisfying | any] >= weighted single-session values.
        assert agg.expectation > 30.0

    def test_invalid_statistic(self, db):
        q = parse_query(REP_OVER_DEM)
        with pytest.raises(ValueError, match="statistic"):
            aggregate_session_attribute(
                q, db, relation="V", column="age", statistic="median"
            )

    def test_missing_attribute_row(self, db):
        # Sessions keyed by voters absent from the attribute relation fail
        # loudly instead of silently skewing the aggregate.
        q = parse_query(REP_OVER_DEM)
        with pytest.raises(KeyError):
            aggregate_session_attribute(q, db, relation="C", column="age")
