"""Tests for query-engine options: methods, limits, grouping, errors."""

import numpy as np
import pytest

from repro.datasets.crowdrank import crowdrank_database
from repro.db.examples import polling_example
from repro.query.engine import evaluate, solve_session
from repro.query.parser import parse_query


@pytest.fixture
def db():
    return polling_example()


SIMPLE = "P(_, _; 'Clinton'; 'Trump')"


class TestMethodHandling:
    def test_approximate_requires_rng(self, db):
        q = parse_query(SIMPLE)
        for method in ("mis_amp_lite", "mis_amp_adaptive", "rejection"):
            with pytest.raises(ValueError, match="rng"):
                evaluate(q, db, method=method)

    def test_rejection_method(self, db):
        q = parse_query(SIMPLE)
        exact = evaluate(q, db).probability
        approx = evaluate(
            q, db, method="rejection",
            rng=np.random.default_rng(0), n_samples=4000,
        ).probability
        assert approx == pytest.approx(exact, abs=0.05)

    def test_mis_amp_lite_options_forwarded(self, db):
        q = parse_query(SIMPLE)
        result = evaluate(
            q, db, method="mis_amp_lite",
            rng=np.random.default_rng(0),
            n_proposals=2, n_per_proposal=100,
        )
        assert 0.0 <= result.probability <= 1.0

    def test_unknown_exact_method(self, db):
        q = parse_query(SIMPLE)
        with pytest.raises(ValueError, match="unknown method"):
            evaluate(q, db, method="nonsense")


class TestSessionLimit:
    def test_limit_truncates_sessions(self):
        db = crowdrank_database(n_workers=30, n_movies=8, seed=5)
        q = parse_query("P(v; 1; 2), V(v, _, _)")
        full = evaluate(q, db, method="lifted")
        limited = evaluate(q, db, method="lifted", session_limit=10)
        assert full.n_sessions == 30
        assert limited.n_sessions == 10

    def test_limit_larger_than_sessions(self, db):
        q = parse_query(SIMPLE)
        result = evaluate(q, db, session_limit=100)
        assert result.n_sessions == 3


class TestGrouping:
    def test_group_counts_reported(self):
        db = crowdrank_database(n_workers=100, n_movies=8, seed=6)
        q = parse_query("P(v; 1; 2), V(v, _, _)")
        grouped = evaluate(q, db, method="lifted", group_sessions=True)
        # One pattern for everyone; groups = number of distinct models.
        assert grouped.n_groups <= 7
        assert grouped.n_solver_calls == grouped.n_groups
        naive = evaluate(q, db, method="lifted", group_sessions=False)
        assert naive.n_solver_calls == naive.n_sessions
        assert grouped.probability == pytest.approx(naive.probability)


class TestSolveSessionHelper:
    def test_mixture_dispatch(self, db):
        from repro.patterns.labels import Labeling
        from repro.patterns.pattern import LabelPattern, node
        from repro.patterns.union import PatternUnion
        from repro.rim.mallows import Mallows
        from repro.rim.mixture import MallowsMixture

        mixture = MallowsMixture(
            [Mallows([1, 2, 3], 0.2), Mallows([3, 2, 1], 0.2)],
            weights=[0.5, 0.5],
        )
        labeling = Labeling({1: {"A"}, 3: {"B"}})
        union = PatternUnion(
            [LabelPattern([(node("a", "A"), node("b", "B"))])]
        )
        p, solver_name = solve_session(mixture, labeling, union)
        assert solver_name.startswith("mixture[")
        # By symmetry of the two centers, the marginal is 0.5.
        assert p == pytest.approx(0.5, abs=1e-9)


class TestSessionEvaluationsSurface:
    def test_per_session_lookup(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, _, _), C(c2, 'R', _, _, _, _)"
        )
        result = evaluate(q, db)
        p = result.session_probability(("Ann", "5/5"))
        assert 0.0 <= p <= 1.0
        with pytest.raises(KeyError):
            result.session_probability(("Nobody", "1/1"))

    def test_unsatisfiable_sessions_marked(self, db):
        q = parse_query("P('Ann', '5/5'; 'Trump'; 'Trump')")
        result = evaluate(q, db)
        assert result.per_session[0].solver == "unsatisfiable"
