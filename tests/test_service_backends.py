"""Tests for the execution backends, the persistent tier, and the planner.

The contract under test: the serial / thread / process backends and the
cold-vs-persistent-cache paths all return *bit-identical* probabilities to
sequential :func:`repro.query.engine.evaluate`, because every backend
executes the same canonical ``SolveTask`` descriptors and a thawed solve
equals the original solve exactly.
"""

import pickle

import numpy as np
import pytest

from repro.datasets.crowdrank import crowdrank_database
from repro.db.database import PPDatabase
from repro.db.schema import PRelation
from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, PatternNode, chain_pattern
from repro.patterns.union import PatternUnion
from repro.query.engine import evaluate, solve_session
from repro.query.parser import parse_query
from repro.rim.mallows import Mallows
from repro.rim.mixture import MallowsMixture
from repro.rim.model import RIM
from repro.service import PreferenceService
from repro.service.cache import SolverCache
from repro.service.executors import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_solve_task,
    resolve_backend,
    run_solve_task,
    thaw_labeling,
    thaw_model,
    thaw_pattern,
    thaw_union,
)
from repro.service.persist import (
    PersistentCache,
    PersistentSolverCache,
    default_version,
)
from repro.service.planner import (
    estimate_solve_states,
    largest_first_order,
)

QUERIES = [
    "P(v; m1; m2), M(m1, 'Thriller', _, _, _), M(m2, _, _, _, 'short')",
    "P(v; m1; m2), V(v, sex, _), M(m1, _, sex, _, _), M(m2, _, _, _, 'short')",
    "P(v; m1; m2), P(v; m2; m3), M(m1, 'Thriller', _, _, _), "
    "M(m2, _, 'F', _, _), M(m3, _, _, _, 'short')",
]


@pytest.fixture(scope="module")
def db():
    return crowdrank_database(n_workers=25, n_movies=6, seed=11)


@pytest.fixture(scope="module")
def reference(db):
    """Sequential, cache-free engine results: the equivalence baseline."""
    return [evaluate(parse_query(q), db) for q in QUERIES]


def _solve_request():
    items = list("abcdef")
    model = Mallows(items, 0.4)
    labeling = Labeling(
        {item: {"hi"} if item in "abc" else {"lo"} for item in items}
    )
    union = PatternUnion(
        [
            LabelPattern(
                [(PatternNode("u", frozenset({"hi"})),
                  PatternNode("v", frozenset({"lo"})))]
            )
        ]
    )
    return model, labeling, union


# ----------------------------------------------------------------------
# Thawing: freeze() round-trips
# ----------------------------------------------------------------------


class TestThaw:
    def test_mallows_round_trip(self):
        model = Mallows(list("abcd"), 0.35)
        thawed = thaw_model(model.freeze())
        assert isinstance(thawed, Mallows)
        assert thawed.freeze() == model.freeze()

    def test_rim_round_trip_preserves_matrix_bits(self):
        rng = np.random.default_rng(5)
        m = 4
        pi = np.zeros((m, m))
        for i in range(1, m + 1):
            row = rng.random(i)
            pi[i - 1, :i] = row / row.sum()
        model = RIM(list("wxyz"), pi)
        thawed = thaw_model(model.freeze())
        assert thawed.freeze() == model.freeze()
        np.testing.assert_array_equal(thawed.pi, model.pi)

    def test_mixture_round_trip(self):
        components = [Mallows(list("abc"), 0.2), Mallows(list("abc"), 0.7)]
        mixture = MallowsMixture(components, [0.25, 0.75])
        thawed = thaw_model(mixture.freeze())
        assert isinstance(thawed, MallowsMixture)
        assert thawed.freeze() == mixture.freeze()

    def test_single_component_mixture_thaws_as_component(self):
        # The freeze collapse (one full-weight component freezes as the
        # component) must thaw back to a solvable model.
        mixture = MallowsMixture([Mallows(list("abc"), 0.5)], [1.0])
        thawed = thaw_model(mixture.freeze())
        assert isinstance(thawed, Mallows)
        assert thawed.freeze() == mixture.freeze()

    def test_unknown_model_form_rejected(self):
        with pytest.raises(ValueError, match="unknown frozen model"):
            thaw_model(("plackett_luce", (1, 2)))

    def test_labeling_round_trip(self):
        _, labeling, union = _solve_request()
        form = labeling.freeze(union.all_labels)
        thawed = thaw_labeling(form)
        assert thawed.freeze(union.all_labels) == form

    def test_union_round_trip(self):
        _, _, union = _solve_request()
        assert thaw_union(union.freeze()).freeze() == union.freeze()

    def test_named_fallback_pattern_round_trip(self):
        # Eight isolated same-label nodes exceed the canonicalization cap
        # (8! orderings), producing the name-carrying fallback form.
        nodes = [
            PatternNode(f"x{i}", frozenset({"L"})) for i in range(8)
        ]
        pattern = LabelPattern([], nodes=nodes)
        form = pattern.canonical_form()
        assert form[0] == "named"
        assert thaw_pattern(form).canonical_form() == form

    def test_thawed_solve_is_bit_identical(self):
        model, labeling, union = _solve_request()
        direct = solve_session(model, labeling, union)
        thawed = solve_session(
            thaw_model(model.freeze()),
            thaw_labeling(labeling.freeze(union.all_labels)),
            thaw_union(union.freeze()),
        )
        assert direct[0] == thawed[0]
        assert direct[1] == thawed[1]


# ----------------------------------------------------------------------
# Tasks and backends
# ----------------------------------------------------------------------


class TestSolveTask:
    def test_pickle_round_trip_and_execution(self):
        model, labeling, union = _solve_request()
        task = make_solve_task(model, labeling, union, "two_label", cost=3.0)
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        outcome = run_solve_task(clone)
        probability, solver_name = solve_session(
            model, labeling, union, method="two_label"
        )
        assert outcome.probability == probability
        assert outcome.solver == solver_name
        assert outcome.seconds > 0.0
        assert outcome.value == (probability, solver_name)

    def test_backends_agree_on_a_task_list(self):
        model, labeling, union = _solve_request()
        tasks = [
            make_solve_task(model, labeling, union, method)
            for method in ("two_label", "general", "lifted")
        ]
        serial = SerialBackend().run(tasks)
        threaded = ThreadBackend(max_workers=2).run(tasks)
        processed = ProcessBackend(max_workers=2).run(tasks)
        for a, b in zip(serial, threaded):
            assert a.value == b.value
        for a, b in zip(serial, processed):
            assert a.value == b.value

    def test_resolve_backend(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)
        assert isinstance(resolve_backend(None), ThreadBackend)
        instance = SerialBackend()
        assert resolve_backend(instance) is instance
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_empty_task_list(self):
        assert ProcessBackend(max_workers=2).run([]) == []


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_matches_sequential_engine(self, db, reference, backend):
        service = PreferenceService(backend=backend, max_workers=2)
        batch = service.evaluate_many(QUERIES, db)
        assert batch.backend == backend
        assert batch.n_cache_hits == 0
        for result, expected in zip(batch, reference):
            # Bit-identical, not approximately equal: every backend runs
            # the same canonical SolveTask path.
            assert result.probability == expected.probability

    def test_mixture_sessions_round_trip_through_process_tasks(self):
        # Tasks ship mixtures structure-preserved (task_model_form), so the
        # worker-side marginalization order is the original one and results
        # are bit-identical regardless of component order.
        items = list("abcde")
        components = [Mallows(items, 0.6), Mallows(items, 0.3)]
        sessions = {
            ("u1",): MallowsMixture(components, [0.4, 0.6]),
            ("u2",): Mallows(items, 0.5),
        }
        db = PPDatabase(
            orelations=[],
            prelations=[PRelation("P", ["user"], sessions)],
        )
        query = "P(u; 'a'; 'b')"
        expected = evaluate(parse_query(query), db)
        service = PreferenceService(backend="process", max_workers=2)
        batch = service.evaluate_many([query], db)
        assert batch[0].probability == expected.probability
        solvers = {e.solver for e in batch[0].per_session}
        assert solvers == {"mixture[two_label]", "two_label"}

    def test_collapsing_mixture_keeps_mixture_attribution(self):
        # Duplicate equal-weight components collapse in the *canonical*
        # freeze (the cache key), but the task transport must not: the
        # batch path has to report the same solver name as the engine.
        items = list("abcd")
        mixture = MallowsMixture(
            [Mallows(items, 0.3), Mallows(items, 0.3)], [0.5, 0.5]
        )
        db = PPDatabase(
            prelations=[PRelation("P", ["user"], {("u",): mixture})]
        )
        query = "P(u; 'a'; 'b')"
        expected = evaluate(parse_query(query), db)
        assert expected.per_session[0].solver == "mixture[two_label]"
        batch = PreferenceService(backend="serial").evaluate_many([query], db)
        assert batch[0].per_session[0].solver == "mixture[two_label]"
        assert batch[0].probability == expected.probability


# ----------------------------------------------------------------------
# Persistent tier
# ----------------------------------------------------------------------


class TestPersistentCache:
    def test_put_get_round_trip(self, tmp_path):
        with PersistentCache(tmp_path / "c.sqlite") as cache:
            key = ("session", ("mallows", ("a", "b"), 0.5), "rest")
            assert cache.get(key) is None
            cache.put(key, (0.123456789012345, "two_label"))
            assert cache.get(key) == (0.123456789012345, "two_label")
            assert len(cache) == 1

    def test_encode_key_discriminates_leaf_types(self, tmp_path):
        from repro.service.persist import encode_key

        assert encode_key((1,)) != encode_key((np.int64(1),))
        assert encode_key((1,)) != encode_key((1.0,))
        assert encode_key(("1",)) != encode_key((1,))
        assert encode_key((b"x",)) != encode_key(("x",))
        # ...and the store keeps such keys apart end to end.
        with PersistentCache(tmp_path / "c.sqlite") as cache:
            cache.put((np.int64(1),), (0.25, "general"))
            assert cache.get((1,)) is None
            assert cache.get((np.int64(1),)) == (0.25, "general")

    def test_rejects_non_outcome_values(self, tmp_path):
        with PersistentCache(tmp_path / "c.sqlite") as cache:
            with pytest.raises(TypeError, match="persistent cache stores"):
                cache.put(("k",), {"not": "a pair"})

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with PersistentCache(path) as cache:
            cache.put(("k",), (0.5, "general"))
        with PersistentCache(path) as cache:
            assert cache.get(("k",)) == (0.5, "general")

    def test_version_mismatch_clears(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with PersistentCache(path, version="v1") as cache:
            cache.put(("k",), (0.5, "general"))
        with PersistentCache(path, version="v2") as cache:
            assert cache.get(("k",)) is None
            assert len(cache) == 0
        assert default_version()  # the stamp the service tier uses

    def test_tiered_cache_promotes_and_writes_through(self, tmp_path):
        path = tmp_path / "c.sqlite"
        tiered = PersistentSolverCache(capacity=4, db_path=path)
        tiered.put(("k",), (0.25, "bipartite"))
        assert tiered.persistent.get(("k",)) == (0.25, "bipartite")
        # A fresh tier over the same file misses in memory, hits on disk,
        # and promotes the entry into the LRU.
        reopened = PersistentSolverCache(capacity=4, db_path=path)
        assert len(reopened) == 0
        assert reopened.get(("k",)) == (0.25, "bipartite")
        assert ("k",) in reopened
        assert reopened.tier_stats()["disk_hits"] == 1
        reopened.close()
        tiered.close()

    def test_put_many_single_transaction_round_trip(self, tmp_path):
        with PersistentCache(tmp_path / "c.sqlite") as cache:
            cache.put_many(
                [(("a",), (0.1, "two_label")), (("b",), (0.2, "general"))]
            )
            assert cache.get(("a",)) == (0.1, "two_label")
            assert cache.get(("b",)) == (0.2, "general")
            assert len(cache) == 2
            cache.put_many([])  # a batch with nothing fresh is a no-op
            with pytest.raises(TypeError, match="persistent cache stores"):
                cache.put_many([(("c",), "bad")])

    def test_tiered_put_many_mixes_persistable_and_not(self, tmp_path):
        tiered = PersistentSolverCache(capacity=8, db_path=tmp_path / "c.sqlite")
        tiered.put_many(
            [(("a",), (0.1, "two_label")), (("b",), {"rich": "object"})]
        )
        assert tiered.get(("a",)) == (0.1, "two_label")
        assert tiered.get(("b",)) == {"rich": "object"}
        assert len(tiered.persistent) == 1  # only the outcome pair on disk
        tiered.close()

    def test_non_persistable_values_stay_memory_only(self, tmp_path):
        tiered = PersistentSolverCache(capacity=4, db_path=tmp_path / "c.sqlite")
        tiered.put(("k",), {"rich": "object"})
        assert tiered.get(("k",)) == {"rich": "object"}
        assert len(tiered.persistent) == 0
        tiered.close()


class TestPersistentService:
    def test_restart_round_trip_serves_without_solving(self, db, reference, tmp_path):
        path = tmp_path / "service.sqlite"
        cold_service = PreferenceService(backend="serial", cache_db=path)
        cold = cold_service.evaluate_many(QUERIES, db)
        assert cold.n_distinct_solves > 0
        for result, expected in zip(cold, reference):
            assert result.probability == expected.probability

        # A brand-new service over the same file: the restart scenario.
        warm_service = PreferenceService(backend="serial", cache_db=path)
        warm = warm_service.evaluate_many(QUERIES, db)
        assert warm.n_distinct_solves == 0
        assert warm.n_cache_hits == cold.n_distinct_solves
        for result, expected in zip(warm, reference):
            assert result.probability == expected.probability
        assert warm_service.stats()["disk_hits"] == cold.n_distinct_solves

    def test_cache_and_cache_db_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            PreferenceService(
                cache=SolverCache(4), cache_db=tmp_path / "c.sqlite"
            )


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------


class TestPlanner:
    def test_states_grow_with_m(self):
        _, labeling, union = _solve_request()
        small = estimate_solve_states(Mallows(list("abcdef"), 0.5), labeling, union)
        items = [chr(ord("a") + i) for i in range(12)]
        big_labeling = Labeling(
            {item: {"hi"} if i < 6 else {"lo"} for i, item in enumerate(items)}
        )
        big = estimate_solve_states(Mallows(items, 0.5), big_labeling, union)
        assert big.states > small.states
        assert small.method == "two_label"

    def test_general_class_costs_more_than_two_label(self):
        model, labeling, union = _solve_request()
        chain = PatternUnion(
            [
                chain_pattern(
                    [
                        PatternNode("a", frozenset({"hi"})),
                        PatternNode("b", frozenset({"lo"})),
                        PatternNode("c", frozenset({"hi"})),
                    ]
                )
            ]
        )
        two_label = estimate_solve_states(model, labeling, union)
        general = estimate_solve_states(model, labeling, chain)
        assert general.method == "general"
        assert general.states > two_label.states

    def test_mixture_multiplies_by_components(self):
        model, labeling, union = _solve_request()
        mixture = MallowsMixture(
            [Mallows(list("abcdef"), 0.2), Mallows(list("abcdef"), 0.7)],
            [0.5, 0.5],
        )
        single = estimate_solve_states(model, labeling, union)
        double = estimate_solve_states(mixture, labeling, union)
        assert double.n_components == 2
        assert double.states == pytest.approx(2 * single.states)

    def test_brute_and_sampling_estimates(self):
        model, labeling, union = _solve_request()
        brute = estimate_solve_states(model, labeling, union, method="brute")
        assert brute.states == pytest.approx(720)  # 6!
        sampled = estimate_solve_states(
            model, labeling, union, method="rejection",
            options={"n_samples": 5000},
        )
        assert sampled.states == pytest.approx(5000)

    def test_largest_first_order_is_stable_descending(self):
        assert largest_first_order([1.0, 5.0, 3.0, 5.0]) == [1, 3, 2, 0]
        assert largest_first_order([]) == []


# ----------------------------------------------------------------------
# Batch metadata: seconds attribution, approximate-path warning
# ----------------------------------------------------------------------


class TestBatchSemantics:
    def test_seconds_attributed_to_consuming_queries(self, db):
        service = PreferenceService(backend="serial")
        duplicated = [QUERIES[0], QUERIES[0], QUERIES[1]]
        batch = service.evaluate_many(duplicated, db)
        # The duplicate queries consumed the same solves: identical, and
        # positive, attributed wall time.
        assert batch[0].seconds > 0.0
        assert batch[0].seconds == batch[1].seconds
        assert batch[2].seconds > 0.0
        # A cache-warm pass performs no solves, so no time is attributed.
        warm = service.evaluate_many(duplicated, db)
        assert all(result.seconds == 0.0 for result in warm)

    def test_approximate_path_warns_on_ignored_parallelism(self, db):
        service = PreferenceService()
        rng = np.random.default_rng(3)
        with pytest.warns(UserWarning, match="ignored"):
            service.evaluate_many(
                QUERIES[:1], db, method="rejection", rng=rng,
                max_workers=4, n_samples=50,
            )
        with pytest.warns(UserWarning, match="ignored"):
            service.evaluate_many(
                QUERIES[:1], db, method="rejection", rng=rng,
                backend="process", n_samples=50,
            )
        # A process-*configured* service (e.g. --backend process on the
        # CLI) must warn too, not only a per-call backend argument.
        with pytest.warns(UserWarning, match="ignored"):
            PreferenceService(backend="process").evaluate_many(
                QUERIES[:1], db, method="rejection", rng=rng, n_samples=50
            )

    def test_approximate_path_quiet_when_sequential(self, db, recwarn):
        service = PreferenceService()
        rng = np.random.default_rng(3)
        service.evaluate_many(
            QUERIES[:1], db, method="rejection", rng=rng, n_samples=50
        )
        # An explicitly serial request asks for no parallelism: no warning.
        service.evaluate_many(
            QUERIES[:1], db, method="rejection", rng=rng,
            backend="serial", n_samples=50,
        )
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]
