"""Statistical tests for IS-AMP, MIS-AMP, MIS-AMP-lite, MIS-AMP-adaptive.

Monte-Carlo estimators are validated against exact brute-force values on
small instances with fixed seeds and tolerances wide enough to be stable.
"""

import numpy as np
import pytest

from repro.approx.adaptive import mis_amp_adaptive
from repro.approx.is_amp import is_amp_estimate
from repro.approx.lite import LiteWorkspace, mis_amp_lite
from repro.approx.mis import mis_amp_estimate
from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, node
from repro.patterns.union import PatternUnion
from repro.rankings.subranking import SubRanking
from repro.rim.mallows import Mallows
from repro.rim.sampling import rejection_until_within
from repro.solvers.brute import brute_force_probability


def exact_subranking_probability(model: Mallows, psi: SubRanking) -> float:
    return sum(
        p
        for tau, p in model.enumerate_support()
        if psi.is_consistent_with(tau)
    )


class TestISAMP:
    def test_unbiased_on_easy_instance(self, rng):
        model = Mallows(list(range(5)), 0.6)
        psi = SubRanking([2, 0])
        exact = exact_subranking_probability(model, psi)
        estimate = is_amp_estimate(model, psi, 4000, rng).estimate
        assert estimate == pytest.approx(exact, rel=0.1)

    def test_rare_event(self, rng):
        model = Mallows(list(range(6)), 0.3)
        psi = SubRanking([5, 0])
        exact = exact_subranking_probability(model, psi)
        estimate = is_amp_estimate(model, psi, 6000, rng).estimate
        assert exact < 0.01  # genuinely rare
        assert estimate == pytest.approx(exact, rel=0.25)

    def test_underestimates_multimodal_posterior(self, rng):
        # Paper Example 5.1: with phi = 0.01 and psi0 = <s3, s1>, IS-AMP
        # concentrates on one mode and substantially misestimates.
        model = Mallows(["s1", "s2", "s3"], 0.01)
        psi = SubRanking(["s3", "s1"])
        exact = exact_subranking_probability(model, psi)
        mis = mis_amp_estimate(model, psi, 1500, rng).estimate
        # MIS-AMP corrects the multi-modal failure: tight agreement.
        assert mis == pytest.approx(exact, rel=0.05)


class TestMISAMP:
    def test_matches_exact_across_phis(self, rng):
        for phi in (0.1, 0.5, 0.9):
            model = Mallows(list(range(5)), phi)
            psi = SubRanking([4, 1])
            exact = exact_subranking_probability(model, psi)
            result = mis_amp_estimate(model, psi, 1200, rng)
            assert result.estimate == pytest.approx(exact, rel=0.15)

    def test_modal_centers_reported(self, rng):
        model = Mallows(["s1", "s2", "s3"], 0.01)
        result = mis_amp_estimate(model, SubRanking(["s3", "s1"]), 100, rng)
        assert result.n_proposals == 2


class TestLite:
    @pytest.fixture
    def instance(self):
        model = Mallows(list(range(6)), 0.3)
        labeling = Labeling(
            {0: {"A"}, 1: {"B"}, 2: {"A"}, 3: {"C"}, 4: {"B"}, 5: {"C"}}
        )
        g1 = LabelPattern([(node("c", "C"), node("a", "A"))])
        g2 = LabelPattern(
            [(node("c2", "C"), node("b", "B")), (node("b", "B"), node("a2", "A"))]
        )
        return model, labeling, PatternUnion([g1, g2])

    def test_converges_to_exact_with_many_proposals(self, instance, rng):
        model, labeling, union = instance
        exact = brute_force_probability(model, labeling, union).probability
        result = mis_amp_lite(
            model, labeling, union,
            n_proposals=40, n_per_proposal=500, rng=rng,
        )
        assert result.probability == pytest.approx(exact, rel=0.15)

    def test_compensation_factors_at_least_one(self, instance, rng):
        model, labeling, union = instance
        for d in (1, 3, 10):
            result = mis_amp_lite(
                model, labeling, union,
                n_proposals=d, n_per_proposal=50, rng=rng,
            )
            assert result.stats["c_psi"] >= 1.0
            assert result.stats["c_r"] >= 1.0

    def test_compensation_is_identity_when_nothing_pruned(self, instance, rng):
        model, labeling, union = instance
        workspace = LiteWorkspace(model, labeling, union)
        result = mis_amp_lite(
            model, labeling, union,
            n_proposals=10_000, n_per_proposal=20, rng=rng,
            workspace=workspace,
        )
        assert result.stats["c_psi"] == pytest.approx(1.0)
        assert result.stats["c_r"] == pytest.approx(1.0)

    def test_unsatisfiable_union(self, rng):
        model = Mallows(list(range(3)), 0.5)
        labeling = Labeling({0: set(), 1: set(), 2: set()})
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        result = mis_amp_lite(
            model, labeling, pattern, n_proposals=3, rng=rng
        )
        assert result.probability == 0.0
        assert result.stats["unsatisfiable"]

    def test_workspace_reuse_is_consistent(self, instance, rng):
        model, labeling, union = instance
        workspace = LiteWorkspace(model, labeling, union)
        fresh = mis_amp_lite(
            model, labeling, union,
            n_proposals=5, n_per_proposal=300,
            rng=np.random.default_rng(1),
        )
        reused = mis_amp_lite(
            model, labeling, union,
            n_proposals=5, n_per_proposal=300,
            rng=np.random.default_rng(1), workspace=workspace,
        )
        assert reused.probability == pytest.approx(fresh.probability)

    def test_overhead_and_sampling_times_reported(self, instance, rng):
        model, labeling, union = instance
        result = mis_amp_lite(
            model, labeling, union, n_proposals=3, n_per_proposal=50, rng=rng
        )
        assert result.stats["overhead_seconds"] >= 0.0
        assert result.stats["sampling_seconds"] > 0.0


class TestAdaptive:
    def test_converges_and_reports_iterations(self, rng):
        model = Mallows(list(range(6)), 0.3)
        labeling = Labeling(
            {0: {"A"}, 1: {"B"}, 2: {"A"}, 3: {"C"}, 4: {"B"}, 5: {"C"}}
        )
        union = PatternUnion(
            [LabelPattern([(node("c", "C"), node("a", "A"))])]
        )
        exact = brute_force_probability(model, labeling, union).probability
        result = mis_amp_adaptive(
            model, labeling, union, rng=rng, n_per_proposal=400
        )
        assert result.stats["iterations"] >= 2
        assert result.probability == pytest.approx(exact, rel=0.2)

    def test_unsatisfiable(self, rng):
        model = Mallows(list(range(3)), 0.5)
        labeling = Labeling({0: set(), 1: set(), 2: set()})
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        result = mis_amp_adaptive(model, labeling, pattern, rng=rng)
        assert result.probability == 0.0


class TestRejectionStoppingRule:
    def test_stops_when_within_tolerance(self, rng):
        model = Mallows(list(range(4)), 0.5)
        psi = SubRanking([3, 0])
        exact = exact_subranking_probability(model, psi)
        result = rejection_until_within(
            model, psi.is_consistent_with, exact, 0.05, rng,
            max_samples=200_000,
        )
        assert abs(result.estimate - exact) / exact <= 0.05
        assert result.n_samples < 200_000
