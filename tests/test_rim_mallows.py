"""Tests for the Mallows model: closed form vs RIM trajectory semantics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.rankings.kendall import kendall_tau
from repro.rankings.permutation import Ranking
from repro.rim.mallows import (
    Mallows,
    mallows_insertion_matrix,
    mallows_normalization,
)
from repro.rim.model import RIM


class TestInsertionMatrix:
    def test_rows_are_stochastic(self):
        pi = mallows_insertion_matrix(6, 0.4)
        for i in range(1, 7):
            assert pi[i - 1, :i].sum() == pytest.approx(1.0)

    def test_phi_one_is_uniform(self):
        pi = mallows_insertion_matrix(4, 1.0)
        for i in range(1, 5):
            assert pi[i - 1, :i] == pytest.approx([1 / i] * i)

    def test_phi_zero_is_degenerate(self):
        pi = mallows_insertion_matrix(4, 0.0)
        for i in range(1, 5):
            assert pi[i - 1, i - 1] == 1.0
            assert pi[i - 1, : i - 1].sum() == 0.0

    def test_formula_matches_paper(self):
        # Pi(i, j) = phi^{i-j} / (1 + phi + ... + phi^{i-1})
        phi = 0.3
        pi = mallows_insertion_matrix(5, phi)
        for i in range(1, 6):
            denom = sum(phi**k for k in range(i))
            for j in range(1, i + 1):
                assert pi[i - 1, j - 1] == pytest.approx(
                    phi ** (i - j) / denom
                )

    def test_invalid_phi_rejected(self):
        with pytest.raises(ValueError):
            mallows_insertion_matrix(3, 1.5)
        with pytest.raises(ValueError):
            mallows_insertion_matrix(3, -0.1)


class TestNormalization:
    def test_uniform_normalization_is_factorial(self):
        assert mallows_normalization(5, 1.0) == pytest.approx(120.0)

    def test_matches_exhaustive_sum(self):
        phi = 0.6
        sigma = Ranking(range(5))
        z = sum(
            phi ** kendall_tau(sigma, tau)
            for tau in Ranking.all_rankings(range(5))
        )
        assert mallows_normalization(5, phi) == pytest.approx(z)


class TestDensity:
    def test_kendall_form_matches_rim_trajectory_form(self):
        # The same distribution computed two ways: phi^d / Z versus the
        # product of insertion probabilities (Doignon et al.).
        model = Mallows(list(range(5)), 0.45)
        rim = RIM(model.sigma, model.pi)
        for tau in Ranking.all_rankings(range(5)):
            assert model.probability(tau) == pytest.approx(
                rim.probability(tau)
            )

    def test_center_is_mode(self):
        model = Mallows(list(range(5)), 0.3)
        center_p = model.probability(model.sigma)
        for tau in Ranking.all_rankings(range(5)):
            assert model.probability(tau) <= center_p + 1e-12

    def test_density_sums_to_one(self):
        model = Mallows(list(range(5)), 0.8)
        total = sum(
            model.probability(tau) for tau in Ranking.all_rankings(range(5))
        )
        assert total == pytest.approx(1.0)

    def test_phi_zero_point_mass(self):
        model = Mallows(["a", "b", "c"], 0.0)
        assert model.probability(model.sigma) == 1.0
        assert model.probability(Ranking(["b", "a", "c"])) == 0.0
        assert model.log_probability(Ranking(["b", "a", "c"])) == -math.inf

    def test_probability_of_distance(self):
        model = Mallows(list(range(4)), 0.5)
        tau = Ranking([1, 0, 2, 3])
        assert model.probability(tau) == pytest.approx(
            model.probability_of_distance(1)
        )

    def test_quickstart_value(self):
        model = Mallows(["a", "b", "c"], 0.5)
        # Z = 1 * (1 + .5) * (1 + .5 + .25) = 2.625; center has phi^0.
        assert model.probability(Ranking(["a", "b", "c"])) == pytest.approx(
            1 / 2.625
        )


class TestRecenter:
    def test_recenter_keeps_phi(self):
        model = Mallows(list(range(4)), 0.25)
        moved = model.recenter(Ranking([3, 2, 1, 0]))
        assert moved.phi == 0.25
        assert moved.sigma == Ranking([3, 2, 1, 0])

    def test_uniform_classmethod(self):
        model = Mallows.uniform(list(range(4)))
        assert model.phi == 1.0
        for tau in Ranking.all_rankings(range(4)):
            assert model.probability(tau) == pytest.approx(1 / 24)


class TestSampling:
    def test_distance_distribution(self, rng):
        # Empirical frequency of each Kendall distance matches phi^d * N(d) / Z.
        model = Mallows(list(range(4)), 0.5)
        by_distance: dict[int, float] = {}
        for tau in Ranking.all_rankings(range(4)):
            d = model.distance(tau)
            by_distance[d] = by_distance.get(d, 0.0) + model.probability(tau)
        n = 20_000
        observed: dict[int, int] = {}
        for _ in range(n):
            d = model.distance(model.sample(rng))
            observed[d] = observed.get(d, 0) + 1
        for d, p in by_distance.items():
            freq = observed.get(d, 0) / n
            sigma = math.sqrt(p * (1 - p) / n)
            assert abs(freq - p) < 4 * sigma + 1e-3


@settings(max_examples=20, deadline=None)
@given(
    st.floats(min_value=0.05, max_value=1.0),
    st.permutations(list(range(5))),
)
def test_density_is_monotone_in_distance(phi, perm):
    model = Mallows(list(range(5)), phi)
    tau = Ranking(perm)
    d = model.distance(tau)
    assert model.probability(tau) == pytest.approx(
        phi**d / model.normalization
    )
