"""Unit and property tests for the RIM generative model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rankings.permutation import Ranking
from repro.rim.model import RIM


def geometric_rim(m: int, phi: float = 0.5) -> RIM:
    """A hand-built RIM with Mallows-style insertion rows."""
    pi = np.zeros((m, m))
    for i in range(1, m + 1):
        weights = np.array([phi ** (i - j) for j in range(1, i + 1)])
        pi[i - 1, :i] = weights / weights.sum()
    return RIM(list(range(m)), pi)


class TestConstruction:
    def test_row_sums_validated(self):
        pi = np.zeros((2, 2))
        pi[0, 0] = 1.0
        pi[1, :] = [0.6, 0.3]  # sums to 0.9
        with pytest.raises(ValueError, match="sums to"):
            RIM([0, 1], pi)

    def test_negative_probability_rejected(self):
        pi = np.zeros((2, 2))
        pi[0, 0] = 1.0
        pi[1, :] = [1.5, -0.5]
        with pytest.raises(ValueError, match="negative"):
            RIM([0, 1], pi)

    def test_mass_beyond_triangle_rejected(self):
        pi = np.zeros((2, 2))
        pi[0, :] = [1.0, 0.1]  # row 1 may only use position 1
        pi[1, :] = [0.5, 0.5]
        with pytest.raises(ValueError, match="beyond"):
            RIM([0, 1], pi)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            RIM([0, 1, 2], np.eye(2))

    def test_pi_is_read_only(self):
        model = RIM.uniform([0, 1, 2])
        with pytest.raises(ValueError):
            model.pi[0, 0] = 0.5


class TestInsertionTrajectories:
    def test_example_2_1(self):
        # Paper Example 2.1: tau' = <b, c, a> from sigma = <a, b, c> has
        # trajectory (1, 1, 2).
        model = RIM.uniform(["a", "b", "c"])
        assert model.insertion_positions(Ranking(["b", "c", "a"])) == [1, 1, 2]

    def test_reference_trajectory_is_identity(self):
        model = RIM.uniform(list(range(5)))
        assert model.insertion_positions(model.sigma) == [1, 2, 3, 4, 5]

    def test_wrong_item_set_rejected(self):
        model = RIM.uniform([0, 1])
        with pytest.raises(ValueError):
            model.insertion_positions(Ranking([0, 2]))

    def test_trajectory_uniqueness(self):
        # Distinct rankings have distinct trajectories.
        model = RIM.uniform(list(range(4)))
        seen = set()
        for tau in Ranking.all_rankings(range(4)):
            trajectory = tuple(model.insertion_positions(tau))
            assert trajectory not in seen
            seen.add(trajectory)


class TestProbabilities:
    def test_uniform_probability(self):
        model = RIM.uniform(list(range(4)))
        for tau in Ranking.all_rankings(range(4)):
            assert model.probability(tau) == pytest.approx(1 / 24)

    def test_probabilities_sum_to_one(self):
        model = geometric_rim(5, 0.3)
        total = sum(
            model.probability(tau) for tau in Ranking.all_rankings(range(5))
        )
        assert total == pytest.approx(1.0)

    def test_log_probability_consistent(self):
        model = geometric_rim(4, 0.7)
        for tau in Ranking.all_rankings(range(4)):
            assert math.exp(model.log_probability(tau)) == pytest.approx(
                model.probability(tau)
            )

    def test_probability_from_trajectory_product(self):
        model = geometric_rim(4, 0.5)
        tau = Ranking([2, 0, 3, 1])
        expected = 1.0
        for i, j in enumerate(model.insertion_positions(tau), start=1):
            expected *= model.insertion_probability(i, j)
        assert model.probability(tau) == pytest.approx(expected)


class TestEnumeration:
    def test_support_covers_all_rankings(self):
        model = geometric_rim(4, 0.4)
        support = dict(model.enumerate_support())
        assert len(support) == 24
        assert sum(support.values()) == pytest.approx(1.0)

    def test_support_matches_pointwise_probability(self):
        model = geometric_rim(4, 0.4)
        for tau, p in model.enumerate_support():
            assert p == pytest.approx(model.probability(tau))

    def test_guard_on_large_m(self):
        model = RIM.uniform(list(range(12)))
        with pytest.raises(ValueError, match="refusing"):
            list(model.enumerate_support())


class TestSampling:
    def test_samples_are_permutations(self, rng):
        model = geometric_rim(6, 0.5)
        for tau in model.sample_many(20, rng):
            assert sorted(tau.items) == list(range(6))

    def test_empirical_matches_exact(self, rng):
        model = geometric_rim(4, 0.3)
        counts: dict = {}
        n = 30_000
        for _ in range(n):
            tau = model.sample(rng)
            counts[tau] = counts.get(tau, 0) + 1
        for tau, p in model.enumerate_support():
            observed = counts.get(tau, 0) / n
            # Generous tolerance: 4 sigma of the binomial.
            sigma = math.sqrt(p * (1 - p) / n)
            assert abs(observed - p) < 4 * sigma + 1e-3


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=0.05, max_value=1.0), st.integers(3, 6))
def test_random_geometric_rims_normalize(phi, m):
    model = geometric_rim(m, phi)
    total = sum(model.probability(t) for t in Ranking.all_rankings(range(m)))
    assert total == pytest.approx(1.0)
