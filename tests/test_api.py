"""Tests for the unified query API (repro.api): grammar, routing, answers,
mixed-kind batch dedup, deprecation-shim bit-identity, and explain."""

import numpy as np
import pytest

from repro.api import (
    Aggregate,
    Answer,
    BatchAnswer,
    Count,
    Probability,
    TopK,
    answer,
    answer_many,
    as_request,
    parse_request,
)
from repro.datasets.crowdrank import crowdrank_database
from repro.db.examples import polling_example
from repro.plan import build_plan, optimize_plan
from repro.plan.execute import execute_plan
from repro.query.aggregates import (
    aggregate_session_attribute,
    count_session,
    most_probable_session,
)
from repro.query.engine import evaluate
from repro.query.parser import QuerySyntaxError, parse_query
from repro.service.service import BatchResult, PreferenceService

POLLS_Q = "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
CROWD_Q = "P(v; m1; m2), M(m1, _, 'F', _, _), M(m2, 'Thriller', _, _, _)"


@pytest.fixture
def polls_db():
    return polling_example()


@pytest.fixture(scope="module")
def crowd_db():
    return crowdrank_database(n_workers=20, n_movies=6, seed=7)


# ----------------------------------------------------------------------
# The extended request grammar
# ----------------------------------------------------------------------


class TestParseRequest:
    def test_plain_text_is_probability(self):
        request = parse_request(POLLS_Q)
        assert isinstance(request, Probability)
        assert request.kind == "probability"
        assert len(request.query.p_atoms) == 1

    def test_count_prefix(self):
        request = parse_request(f"COUNT {POLLS_Q}")
        assert isinstance(request, Count)
        assert request.query == parse_query(POLLS_Q)

    def test_topk_prefix(self):
        request = parse_request(f"TOPK 3 {POLLS_Q}")
        assert isinstance(request, TopK)
        assert request.k == 3
        assert request.strategy == "upper_bound"

    def test_agg_prefix(self):
        request = parse_request(f"AGG mean(V.age) {POLLS_Q}")
        assert isinstance(request, Aggregate)
        assert (request.relation, request.column) == ("V", "age")
        assert request.statistic == "mean"

    def test_agg_sum_statistic(self):
        request = parse_request(f"AGG sum(V.age) {POLLS_Q}")
        assert request.statistic == "sum"

    def test_prefixes_are_case_insensitive(self):
        assert parse_request(f"count {POLLS_Q}").kind == "count"
        assert parse_request(f"topk 2 {POLLS_Q}").kind == "top_k"
        assert parse_request(f"agg mean(V.age) {POLLS_Q}").kind == "aggregate"

    def test_relation_named_count_is_not_a_prefix(self):
        # A keyword directly followed by '(' is an atom, not a prefix.
        request = parse_request("P(_, _; a; b), COUNT(a, 'x')")
        assert isinstance(request, Probability)
        assert request.query.o_atoms[0].relation == "COUNT"

    def test_keyword_named_variable_in_leading_comparison(self):
        # A previously valid plain query whose first conjunct compares a
        # variable named like a prefix keyword must keep parsing plain.
        for keyword in ("count", "topk", "agg", "COUNT"):
            text = f"{keyword} > 3, P(v, {keyword}; a; b)"
            assert parse_query(text) is not None  # the old grammar accepts it
            request = parse_request(text)
            assert isinstance(request, Probability)
            assert request.query == parse_query(text)

    def test_prefix_errors_survive_the_plain_fallback(self):
        # When neither the prefix nor the plain reading parses, the prefix
        # error (the informative one) is what surfaces.
        with pytest.raises(QuerySyntaxError, match="integer k"):
            parse_request("TOPK x P(_, _; a; b)")
        with pytest.raises(QuerySyntaxError, match=r"found '\)'"):
            parse_request("COUNT P(_; a; )")

    def test_topk_requires_integer_k(self):
        with pytest.raises(QuerySyntaxError, match="integer k"):
            parse_request(f"TOPK x {POLLS_Q}")

    def test_agg_requires_spec(self):
        with pytest.raises(QuerySyntaxError, match="statistic"):
            parse_request(f"AGG mean(Vage) {POLLS_Q}")

    def test_agg_rejects_unknown_statistic(self):
        with pytest.raises(QuerySyntaxError, match="median"):
            parse_request(f"AGG median(V.age) {POLLS_Q}")

    def test_as_request_normalizes_all_forms(self):
        query = parse_query(POLLS_Q)
        assert isinstance(as_request(query), Probability)
        assert as_request(Count(query)).kind == "count"
        assert as_request(f"COUNT {POLLS_Q}").kind == "count"
        with pytest.raises(TypeError):
            as_request(42)

    def test_requests_accept_query_text(self):
        assert Count(POLLS_Q).query == parse_query(POLLS_Q)
        assert TopK(POLLS_Q, k=2).k == 2

    def test_request_validation(self):
        with pytest.raises(ValueError, match="at least 1"):
            TopK(POLLS_Q, k=0)
        with pytest.raises(ValueError, match="strategy"):
            TopK(POLLS_Q, strategy="magic")
        with pytest.raises(ValueError, match="statistic"):
            Aggregate(POLLS_Q, relation="V", column="age", statistic="median")
        with pytest.raises(ValueError, match="relation"):
            Aggregate(POLLS_Q)

    def test_describe_round_trips_the_prefix(self):
        assert parse_request(f"COUNT {POLLS_Q}").describe().startswith("COUNT ")
        assert parse_request(f"TOPK 3 {POLLS_Q}").describe().startswith("TOPK 3 ")
        assert (
            parse_request(f"AGG sum(V.age) {POLLS_Q}")
            .describe()
            .startswith("AGG sum(V.age) ")
        )


class TestParserPositions:
    """The QuerySyntaxError position/caret satellite (old + prefixed)."""

    def test_offset_and_caret_on_plain_grammar(self):
        with pytest.raises(QuerySyntaxError) as info:
            parse_query("P(_; a; )")
        error = info.value
        assert error.offset == 8
        assert "(at offset 8)" in str(error)
        lines = str(error).splitlines()
        assert lines[1].strip() == "P(_; a; )"
        # The caret column matches the offending token's column.
        assert lines[2].index("^") - lines[1].index("P") == 8

    def test_unexpected_character_offset(self):
        with pytest.raises(QuerySyntaxError) as info:
            parse_query("P(_, _; a; b) %")
        assert info.value.offset == 14

    def test_prefixed_offsets_are_relative_to_full_text(self):
        text = "COUNT P(_; a; )"
        with pytest.raises(QuerySyntaxError) as info:
            parse_request(text)
        error = info.value
        assert error.offset == text.index("; )") + 2
        # The excerpt shows the *full* request text, prefix included.
        assert "COUNT P(_; a; )" in str(error)

    def test_long_sources_are_windowed(self):
        text = "P(_, _; " + "a" * 200 + "; b) %"
        with pytest.raises(QuerySyntaxError) as info:
            parse_query(text)
        rendered = str(info.value)
        assert "..." in rendered
        excerpt = rendered.splitlines()[1]
        assert len(excerpt.strip()) < 80
        # The caret still points inside the excerpt.
        assert "^" in rendered.splitlines()[2]

    def test_errors_remain_value_errors(self):
        with pytest.raises(ValueError):
            parse_query("P(")


# ----------------------------------------------------------------------
# Single-request answers
# ----------------------------------------------------------------------


class TestAnswer:
    def test_probability_answer_matches_evaluate(self, polls_db):
        result = evaluate(parse_query(POLLS_Q), polls_db)
        one = answer(POLLS_Q, polls_db)
        assert isinstance(one, Answer)
        assert one.kind == "probability"
        assert one.probability == result.probability
        assert one.value == result.probability
        assert [e.probability for e in one.per_session] == [
            e.probability for e in result.per_session
        ]
        assert one.to_legacy().probability == result.probability

    def test_methods_are_resolved_not_requested(self, polls_db):
        one = answer(POLLS_Q, polls_db)
        assert one.requested_method == "auto"
        assert one.methods and "auto" not in one.methods
        solvers = {e.solver for e in evaluate(parse_query(POLLS_Q), polls_db).per_session}
        assert set(one.methods) == solvers

    def test_count_answer(self, polls_db):
        one = answer(f"COUNT {POLLS_Q}", polls_db)
        result = evaluate(parse_query(POLLS_Q), polls_db)
        assert one.kind == "count"
        assert one.expectation == pytest.approx(
            sum(e.probability for e in result.per_session)
        )
        legacy = one.to_legacy()
        assert legacy.expectation == one.value
        assert legacy.method == "auto"
        assert legacy.resolved_methods == one.methods

    def test_topk_answer(self, polls_db):
        one = answer(f"TOPK 2 {POLLS_Q}", polls_db)
        assert one.kind == "top_k"
        assert len(one.ranking) == 2
        legacy = one.to_legacy()
        assert legacy.sessions == one.value
        assert legacy.k == 2
        # The paper's pruning bookkeeping survives in the answer stats.
        assert one.stats["n_upper_bound_evaluations"] == 3

    def test_aggregate_answer(self, polls_db):
        one = answer(
            f"AGG mean(V.age) {POLLS_Q}", polls_db,
            rng=np.random.default_rng(0),
        )
        assert one.kind == "aggregate"
        legacy = one.to_legacy()
        assert one.value == legacy.expectation
        assert one.stats["probability_any"] == legacy.probability_any
        assert 20.0 <= one.value <= 50.0  # ages in the polls example

    def test_kind_checked_accessors(self, polls_db):
        one = answer(f"COUNT {POLLS_Q}", polls_db)
        with pytest.raises(ValueError, match="accessor"):
            one.probability
        with pytest.raises(ValueError, match="accessor"):
            one.ranking
        assert one.expectation == one.value

    def test_programmatic_requests(self, polls_db):
        query = parse_query(POLLS_Q)
        assert answer(Probability(query), polls_db).kind == "probability"
        assert answer(Count(query), polls_db).kind == "count"
        topk = answer(TopK(query, k=1, strategy="naive"), polls_db)
        assert topk.to_legacy().strategy == "naive"
        assert topk.to_legacy().n_upper_bound_evaluations == 0
        assert topk.to_legacy().stats == {}

    def test_aggregate_missing_row_raises_key_error(self, polls_db):
        with pytest.raises(KeyError):
            answer(f"AGG mean(C.age) {POLLS_Q}", polls_db)


# ----------------------------------------------------------------------
# Deprecation-shim bit-identity
# ----------------------------------------------------------------------


class TestShimBitIdentity:
    """The four legacy entry points delegate without changing a bit."""

    def test_count_session_is_evaluate_sum(self, crowd_db):
        q = parse_query(CROWD_Q)
        count = count_session(q, crowd_db)
        result = evaluate(q, crowd_db)
        assert count.expectation == float(
            sum(e.probability for e in result.per_session)
        )
        assert count.per_session == [
            (e.key, e.probability) for e in result.per_session
        ]
        assert count.method == "auto"
        assert count.resolved_methods == tuple(
            sorted(
                {
                    e.solver
                    for e in result.per_session
                    if e.solver != "unsatisfiable"
                }
            )
        )

    def test_topk_matches_reference_loop(self, crowd_db):
        """most_probable_session == the pre-redesign algorithm, verbatim."""
        from repro.plan.execute import session_upper_bound
        from repro.query.classify import analyze
        from repro.query.compile import labeling_for_patterns
        from repro.query.engine import compile_session_work, solve_session

        q = parse_query(CROWD_Q)
        analysis = analyze(q, crowd_db)
        items = crowd_db.prelation(analysis.p_relation).items
        works = compile_session_work(q, crowd_db, analysis=analysis)
        labelings = {}

        def labeling_of(union):
            if union not in labelings:
                labelings[union] = labeling_for_patterns(
                    union.patterns, items, crowd_db
                )
            return labelings[union]

        def exact(work):
            if work.union is None:
                return 0.0
            probability, _ = solve_session(
                work.model, labeling_of(work.union), work.union
            )
            return probability

        for k in (1, 3):
            naive = most_probable_session(q, crowd_db, k=k, strategy="naive")
            scored = [(w.key, exact(w)) for w in works]
            scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
            assert naive.sessions == scored[:k]
            assert naive.n_exact_evaluations == len(works)

            pruned = most_probable_session(
                q, crowd_db, k=k, strategy="upper_bound"
            )
            bounded = [
                (
                    0.0
                    if w.union is None
                    else session_upper_bound(
                        w.model, labeling_of(w.union), w.union, 1
                    ),
                    w,
                )
                for w in works
            ]
            bounded.sort(key=lambda pair: (-pair[0], repr(pair[1].key)))
            confirmed, n_exact = [], 0
            for bound, work in bounded:
                if len(confirmed) >= k:
                    kth = sorted((p for _, p in confirmed), reverse=True)[k - 1]
                    if kth >= bound:
                        break
                confirmed.append((work.key, exact(work)))
                n_exact += 1
            confirmed.sort(key=lambda pair: (-pair[1], repr(pair[0])))
            assert pruned.sessions == confirmed[:k]
            assert pruned.n_exact_evaluations == n_exact
            assert pruned.n_upper_bound_evaluations == len(works)
            assert pruned.stats == {"n_sessions": len(works), "n_edges": 1}

    def test_topk_prunes_lazy_solves(self, crowd_db):
        pruned = most_probable_session(
            parse_query(CROWD_Q), crowd_db, k=1, strategy="upper_bound"
        )
        assert pruned.n_exact_evaluations < pruned.n_upper_bound_evaluations

    def test_rng_topk_stream_is_unchanged(self, crowd_db):
        """Approximate top-k draws one stream per session, as before."""
        q = parse_query(CROWD_Q)
        first = most_probable_session(
            q, crowd_db, k=2, strategy="upper_bound",
            method="rejection", rng=np.random.default_rng(5), n_samples=200,
        )
        second = most_probable_session(
            q, crowd_db, k=2, strategy="upper_bound",
            method="rejection", rng=np.random.default_rng(5), n_samples=200,
        )
        assert first.sessions == second.sessions

    def test_aggregate_default_rng_is_stable(self, crowd_db):
        q = parse_query(CROWD_Q)
        first = aggregate_session_attribute(q, crowd_db, "V", "age")
        second = aggregate_session_attribute(q, crowd_db, "V", "age")
        assert first.expectation == second.expectation
        assert first.probability_any == second.probability_any
        assert first.n_worlds == 10_000

    def test_evaluate_stays_a_query_result(self, polls_db):
        result = evaluate(parse_query(POLLS_Q), polls_db)
        assert result.method == "auto"
        assert result.stats == {}
        assert result.grouped is True


# ----------------------------------------------------------------------
# Mixed-kind batches
# ----------------------------------------------------------------------


class TestMixedBatches:
    def test_mixed_kinds_share_solves(self, crowd_db):
        """Count + Probability of the same query cost one set of solves."""
        prob_only = PreferenceService().evaluate_many([CROWD_Q], crowd_db)
        count_only = PreferenceService().evaluate_many(
            [f"COUNT {CROWD_Q}"], crowd_db
        )
        mixed = PreferenceService().evaluate_many(
            [CROWD_Q, f"COUNT {CROWD_Q}"], crowd_db
        )
        assert isinstance(prob_only, BatchResult)
        assert isinstance(mixed, BatchAnswer)
        assert mixed.n_distinct_solves == prob_only.n_distinct_solves
        assert mixed.n_distinct_solves == count_only.n_distinct_solves

    def test_mixed_batch_values_match_single_requests(self, crowd_db):
        service = PreferenceService()
        mixed = service.evaluate_many(
            [
                CROWD_Q,
                f"COUNT {CROWD_Q}",
                f"TOPK 2 {CROWD_Q}",
                f"AGG mean(V.age) {CROWD_Q}",
            ],
            crowd_db,
        )
        assert [one.kind for one in mixed] == [
            "probability", "count", "top_k", "aggregate",
        ]
        sequential = evaluate(parse_query(CROWD_Q), crowd_db)
        assert mixed[0].value == sequential.probability
        assert mixed[1].value == pytest.approx(
            sum(e.probability for e in sequential.per_session)
        )
        solo_topk = most_probable_session(
            parse_query(CROWD_Q), crowd_db, k=2
        )
        assert mixed[2].value == solo_topk.sessions
        solo_aggregate = aggregate_session_attribute(
            parse_query(CROWD_Q), crowd_db, "V", "age"
        )
        assert mixed[3].value == solo_aggregate.expectation

    def test_warm_mixed_batch_is_all_cache_hits(self, crowd_db):
        service = PreferenceService()
        requests = [CROWD_Q, f"COUNT {CROWD_Q}"]
        service.evaluate_many(requests, crowd_db)
        warm = service.evaluate_many(requests, crowd_db)
        assert warm.n_distinct_solves == 0
        assert warm.n_cache_hits > 0

    def test_answer_many_without_service(self, polls_db):
        batch = answer_many(
            [POLLS_Q, f"COUNT {POLLS_Q}", f"TOPK 1 {POLLS_Q}"], polls_db
        )
        assert isinstance(batch, BatchAnswer)
        assert batch.n_requests == 3
        assert len(batch.values) == 3
        assert batch.backend == "serial"

    def test_pure_boolean_batch_is_bit_identical(self, crowd_db):
        """The historical BatchResult path survives the redesign."""
        service = PreferenceService()
        batch = service.evaluate_many([CROWD_Q, CROWD_Q], crowd_db)
        assert isinstance(batch, BatchResult)
        sequential = evaluate(parse_query(CROWD_Q), crowd_db)
        for result in batch:
            assert result.probability == sequential.probability
            assert [(e.key, e.probability, e.solver) for e in result.per_session] == [
                (e.key, e.probability, e.solver)
                for e in sequential.per_session
            ]

    def test_service_evaluate_rejects_non_boolean(self, polls_db):
        with pytest.raises(TypeError, match="answer"):
            PreferenceService().evaluate(f"COUNT {POLLS_Q}", polls_db)

    def test_approximate_mixed_batch_runs_sequentially(self, polls_db):
        batch = answer_many(
            [POLLS_Q, f"COUNT {POLLS_Q}"],
            polls_db,
            method="rejection",
            rng=np.random.default_rng(0),
            n_samples=200,
        )
        assert batch.backend == "serial"
        assert batch.n_cache_hits == 0
        assert 0.0 <= batch[0].value <= 1.0

    def test_approximate_process_parallelism_warns(self, polls_db):
        with pytest.warns(UserWarning, match="rng-driven"):
            answer_many(
                [POLLS_Q],
                polls_db,
                method="rejection",
                rng=np.random.default_rng(0),
                backend="process",
                n_samples=100,
            )


# ----------------------------------------------------------------------
# Explain over aggregate plans
# ----------------------------------------------------------------------


EXPLAIN_GOLDEN = """\
== query plan: 2 queries, method=auto, group_sessions=on ==
q0: COUNT Q() <- P(_, _; 'Trump'; 'Clinton')
  SelectSessions[P]  sessions 3 -> 3
  GroundSessions  satisfiable=3 unsatisfiable=0
  CompileUnion #2  z=1 sessions=3
  Solve #3  method=two_label cost~1.6e+01 sessions=2  shared_by=q0,q1
  Solve #4  method=two_label cost~1.6e+01 sessions=2  shared_by=q0,q1
  Solve #5  method=two_label cost~1.6e+01 sessions=2  shared_by=q0,q1
  CountSessions  E[count(Q)] = sum(p_s) over 3 sessions
q1: TOPK 2 Q() <- P(_, _; 'Trump'; 'Clinton')
  SelectSessions[P]  sessions 3 -> 3
  GroundSessions  satisfiable=3 unsatisfiable=0
  CompileUnion #9  z=1 sessions=3
  Solve #3  (shared; see above)
  Solve #4  (shared; see above)
  Solve #5  (shared; see above)
  TopKSessions  k=2 strategy=upper_bound n_edges=1 over 3 sessions
CombineQueries  2 queries
passes: simplify_unions, resolve_methods, annotate_costs, eliminate_common_solves, order_solves
solves: planned=6 eliminated=3 frontier=3"""


class TestAggregateExplain:
    def test_mixed_kind_explain_golden(self, polls_db):
        plan = build_plan(
            [
                "COUNT P(_, _; 'Trump'; 'Clinton')",
                "TOPK 2 P(_, _; 'Trump'; 'Clinton')",
            ],
            polls_db,
        )
        optimize_plan(plan, canonical=True)
        assert plan.explain() == EXPLAIN_GOLDEN

    def test_aggregate_terminal_renders(self, polls_db):
        plan = build_plan(
            f"AGG mean(V.age) {POLLS_Q}", polls_db
        )
        optimize_plan(plan, canonical=True)
        text = plan.explain()
        assert "AttributeAggregate  E[mean(V.age) | count(Q) > 0]" in text
        assert "n_worlds=10000" in text

    def test_executed_topk_reports_pruning(self, crowd_db):
        plan = build_plan(f"TOPK 1 {CROWD_Q}", crowd_db)
        optimize_plan(plan, canonical=True)
        execution = execute_plan(plan)
        text = plan.explain(execution)
        assert "[exact=" in text
        assert "[pruned]" in text  # lazy solves the bound pruning skipped

    def test_boolean_assembly_rejects_pruned_topk_plans(self, crowd_db):
        # assemble_results folds terminals into QueryResults; a plan whose
        # top-k pruning skipped solves must fail loudly, not KeyError.
        from repro.plan.execute import assemble_results

        plan = build_plan(f"TOPK 1 {CROWD_Q}", crowd_db)
        optimize_plan(plan, canonical=True)
        execution = execute_plan(plan)
        with pytest.raises(ValueError, match="assemble_answers"):
            assemble_results(plan, execution)


# ----------------------------------------------------------------------
# The query CLI
# ----------------------------------------------------------------------


class TestQueryCli:
    def test_query_cli_probability(self, capsys):
        from repro.__main__ import main

        assert main(
            ["query", "P('Ann', '5/5'; 'Trump'; 'Clinton')",
             "--dataset", "polls"]
        ) == 0
        out = capsys.readouterr().out
        assert "kind: probability" in out
        assert "Pr(Q | D)" in out
        assert "resolved_methods=[two_label]" in out

    def test_query_cli_count_topk_agg(self, capsys):
        from repro.__main__ import main

        base = ["--sessions", "12", "--movies", "6"]
        assert main(
            ["query", "COUNT P(v; m1; m2), M(m1, 'Comedy', _, _, _)"] + base
        ) == 0
        assert "E[count(Q)]" in capsys.readouterr().out
        assert main(
            ["query", "TOPK 2 P(v; m1; m2), M(m1, _, 'F', _, _)"] + base
        ) == 0
        out = capsys.readouterr().out
        assert "top-2 sessions" in out and "rank" in out
        assert main(
            ["query", "AGG mean(V.age) P(v; m1; m2), M(m1, 'Comedy', _, _, _)"]
            + base
        ) == 0
        assert "probability_any" in capsys.readouterr().out

    def test_query_cli_rejects_bad_text(self, capsys):
        from repro.__main__ import main

        assert main(["query", "TOPK x P(v; m1; m2)"]) == 2
        assert "cannot evaluate query" in capsys.readouterr().err

    def test_query_cli_rejects_unknown_method(self, capsys):
        from repro.__main__ import main

        assert main(["query", POLLS_Q, "--method", "magic"]) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_explain_cli_accepts_prefixed_requests(self, capsys):
        from repro.__main__ import main

        assert main(
            ["explain", f"COUNT {POLLS_Q}", "--dataset", "polls"]
        ) == 0
        out = capsys.readouterr().out
        assert "CountSessions" in out

    def test_explain_cli_reports_missing_aggregate_relation(self, capsys):
        # The AGG attribute join runs at plan-build time; a bad relation
        # must produce the diagnostic, not a traceback.
        from repro.__main__ import main

        assert main(
            ["explain", f"AGG mean(Nope.age) {POLLS_Q}", "--dataset", "polls"]
        ) == 2
        assert "cannot plan query" in capsys.readouterr().err
