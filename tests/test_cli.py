"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestFigure:
    def test_runs_fast_figure(self, capsys):
        assert main(["figure", "5", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "figure_5" in out
        assert "conjunction_size" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_every_fast_config_is_valid(self):
        # Every registered experiment must accept its fast kwargs (the
        # runners evolve; this catches signature drift without running the
        # heavy ones).
        import inspect

        for name, (runner, kwargs) in EXPERIMENTS.items():
            signature = inspect.signature(runner)
            for key in kwargs:
                assert key in signature.parameters, (name, key)


class TestBatch:
    def test_batch_process_backend_with_cache_db(self, capsys, tmp_path):
        cache_db = str(tmp_path / "cache.sqlite")
        args = [
            "batch", "--queries", "4", "--sessions", "30", "--movies", "6",
            "--repeat", "1", "--seed", "3",
            "--backend", "process", "--cache-db", cache_db,
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "backend=process" in out
        assert "disk tier" in out
        # Restart: a fresh invocation over the same cache file serves the
        # whole batch from the persistent tier without solving.
        assert main(args) == 0
        out = capsys.readouterr().out
        warm_row = next(
            line for line in out.splitlines() if line.startswith("1 ")
        ).split()
        assert warm_row[3] == "0"  # distinct_solves
        assert "disk_hits=0" not in out

    def test_batch_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["batch", "--backend", "gpu"])

    def test_batch_reports_cache_warming(self, capsys):
        assert main(
            [
                "batch", "--queries", "4", "--sessions", "30", "--movies", "6",
                "--repeat", "2", "--seed", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "batch serving" in out
        assert "cache_hits" in out
        # Pass 2 re-serves the identical batch: all hits, no fresh solves.
        warm_row = [
            line for line in out.splitlines() if line.startswith("2 ")
        ][0]
        assert warm_row.split()[3] == "0"  # distinct_solves
        assert "hit_rate=0.500" in out


class TestArgparse:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
