"""Coverage for small utilities and docstring examples."""

import doctest

import pytest

import repro.evaluation.harness
import repro.rim.mallows
import repro.rim.marginals
from repro.patterns.pattern import LabelPattern, node
from repro.patterns.union import PatternUnion
from repro.query.parser import parse_query
from repro.rim.sampling import EstimateResult


class TestDoctests:
    @pytest.mark.parametrize(
        "module",
        [
            repro.rim.mallows,
            repro.rim.marginals,
            repro.evaluation.harness,
        ],
        ids=lambda m: m.__name__,
    )
    def test_module_doctests(self, module):
        failures, _ = doctest.testmod(module, verbose=False)
        assert failures == 0


class TestEstimateResult:
    def test_hit_rate(self):
        assert EstimateResult(0.5, 100, 50).hit_rate == 0.5
        assert EstimateResult(0.0, 0, 0).hit_rate == 0.0


class TestUnionHelpers:
    def _union(self):
        g1 = LabelPattern([(node("a", "A"), node("b", "B"))])
        g2 = LabelPattern([(node("c", "C"), node("d", "D"))])
        g3 = LabelPattern(
            [(node("e", "A"), node("f", "B")), (node("e", "A"), node("g", "C"))]
        )
        return PatternUnion([g1, g2, g3])

    def test_restrict(self):
        union = self._union()
        sub = union.restrict([0, 2])
        assert sub.z == 2
        assert union[0] in sub.patterns and union[2] in sub.patterns

    def test_total_label_count(self):
        assert self._union().total_label_count() == 2 + 2 + 3

    def test_indexing_and_iteration(self):
        union = self._union()
        assert list(union)[1] is union[1]
        assert len(union) == 3


class TestParserEdgeCases:
    def test_negative_numbers(self):
        q = parse_query("P(_; x; y), M(x, v), v >= -5")
        assert q.comparisons[0].value == -5

    def test_floats(self):
        q = parse_query("P(_; x; y), M(x, v), v < 2.5")
        assert q.comparisons[0].value == 2.5

    def test_whitespace_insensitive(self):
        a = parse_query("P(_;x;y),M(x,'G')")
        b = parse_query("  P( _ ; x ; y ) ,  M( x , 'G' )  ")
        assert a == b

    def test_repr_round_trip_structure(self):
        q = parse_query("P(_, d; c1; c2), C(c1, 'D', e), d = '5/5'")
        text = repr(q)
        assert "P(" in text and "C(" in text and "= '5/5'" in text


class TestHarnessResultsDir:
    def test_points_inside_benchmarks(self):
        from repro.evaluation.harness import results_dir

        path = results_dir()
        assert path.parent.name == "benchmarks"
