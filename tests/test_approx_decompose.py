"""Tests for the pattern → partial orders → sub-rankings decomposition."""

import pytest

from repro.approx.decompose import (
    DecompositionLimitError,
    pattern_embeddings,
    pattern_partial_orders,
    union_partial_orders,
    union_subrankings,
)
from repro.patterns.labels import Labeling
from repro.patterns.matching import matches_union
from repro.patterns.pattern import LabelPattern, node
from repro.patterns.union import PatternUnion
from repro.rankings.permutation import Ranking
from tests.conftest import random_instance


class TestEmbeddings:
    def test_simple_count(self):
        labeling = Labeling({1: {"A"}, 2: {"A"}, 3: {"B"}})
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        embeddings = list(pattern_embeddings(pattern, labeling))
        assert len(embeddings) == 2  # two A-candidates x one B-candidate

    def test_comparable_nodes_cannot_share_item(self):
        labeling = Labeling({1: {"A", "B"}})
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        assert list(pattern_embeddings(pattern, labeling)) == []

    def test_incomparable_nodes_can_share_item(self):
        labeling = Labeling({1: {"A", "B"}, 2: {"C"}})
        pattern = LabelPattern(
            [(node("a", "A"), node("c", "C")), (node("b", "B"), node("c", "C"))]
        )
        embeddings = list(pattern_embeddings(pattern, labeling))
        assert any(
            assignment[node("a", "A")] == assignment[node("b", "B")] == 1
            for assignment in embeddings
        )

    def test_no_candidates_no_embeddings(self):
        labeling = Labeling({1: {"A"}})
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        assert list(pattern_embeddings(pattern, labeling)) == []

    def test_limit_enforced(self):
        labeling = Labeling({i: {"A", "B"} for i in range(10)})
        pattern = LabelPattern([(node("a", "A"), node("b", "B"))])
        with pytest.raises(DecompositionLimitError):
            list(pattern_embeddings(pattern, labeling, max_embeddings=5))


class TestPartialOrders:
    def test_cyclic_assignment_skipped(self):
        # Nodes a > b and b > a... within one pattern is impossible (DAG),
        # but a diamond with shared items can induce a cycle at item level.
        labeling = Labeling({1: {"A", "C"}, 2: {"B"}})
        pattern = LabelPattern(
            [
                (node("a", "A"), node("b", "B")),
                (node("b2", "B"), node("c", "C")),
            ]
        )
        # assignment a->1, b->2, b2->2, c->1 gives 1>2 and 2>1: cyclic.
        orders = pattern_partial_orders(pattern, labeling)
        for order in orders:
            assert order.is_acyclic()

    def test_figure_3_shape(self):
        # Figure 3 of the paper: two patterns decompose into three partial
        # orders and six sub-rankings.  Reconstruction: items 1..4;
        # g1 has embeddings inducing upsilon1 = {1>2, 1>3, 2>4, 3>4}-like
        # shapes.  We verify the pipeline's counts on an analogous setup.
        labeling = Labeling({1: {"X"}, 2: {"Y"}, 3: {"Y"}, 4: {"Z"}})
        g1 = LabelPattern(
            [(node("x", "X"), node("y", "Y")), (node("y", "Y"), node("z", "Z"))]
        )
        union = PatternUnion([g1])
        orders = union_partial_orders(union, labeling)
        assert len(orders) == 2  # chains 1>2>4 and 1>3>4
        subs = union_subrankings(union, labeling)
        assert {s.items for s in subs} == {(1, 2, 4), (1, 3, 4)}


class TestSubrankingEquivalence:
    def test_union_equivalence_on_random_instances(self, pyrng):
        # tau |= G  iff  tau is consistent with some sub-ranking: the
        # foundation of the approximate solvers (Section 5.2).
        for _ in range(40):
            model, labeling, union = random_instance(
                pyrng, m_choices=(4, 5), max_patterns=2, max_nodes=3
            )
            subs = union_subrankings(union, labeling)
            for tau in Ranking.all_rankings(model.items):
                lhs = matches_union(tau, union, labeling)
                rhs = any(psi.is_consistent_with(tau) for psi in subs)
                assert lhs == rhs

    def test_subrankings_deduplicated(self):
        labeling = Labeling({1: {"A"}, 2: {"B"}})
        g = LabelPattern([(node("a", "A"), node("b", "B"))])
        union = PatternUnion([g, LabelPattern([(node("a2", "A"), node("b2", "B"))])])
        subs = union_subrankings(union, labeling)
        assert len(subs) == len({s.items for s in subs})
