"""Smoke tests for the per-figure experiment runners (tiny parameters).

These guard the benchmark harness itself: every runner must produce rows
with the advertised headers, sane value ranges, and the qualitative
invariants the benchmarks assert at larger scale.
"""

import math

from repro.evaluation.experiments import (
    accuracy_table,
    figure_10,
    figure_12,
    figure_13a,
    figure_14,
    figure_15,
    figure_4,
    figure_5,
    figure_6,
    figure_7a,
    figure_8,
    figure_9,
)


class TestExactRunners:
    def test_figure_4_rows(self):
        result = figure_4(m_values=(6,), sessions_per_m=2, n_voters=10)
        assert len(result.rows) == 4  # one per solver
        solvers = {row[1] for row in result.rows}
        assert solvers == {
            "two_label", "bipartite", "general", "mis_amp_adaptive",
        }
        for row in result.rows:
            assert row[2] >= 0.0

    def test_figure_5_exponential_growth(self):
        result = figure_5(n_unions=1, m=6)
        means = {row[0]: row[1] for row in result.rows}
        assert means[1] <= means[2] <= means[3]

    def test_figure_6_fraction_range(self):
        result = figure_6(
            m_values=(8,), patterns_per_union=(2,),
            instances_per_cell=2, time_budget=5.0,
        )
        for row in result.rows:
            assert 0.0 <= row[2] <= 1.0

    def test_figure_7a_reports_budget(self):
        result = figure_7a(
            m_values=(6,), labels_per_pattern=(2,),
            instances_per_cell=1, time_budget=5.0,
        )
        assert result.notes["time_budget"] == 5.0
        assert len(result.rows) == 1

    def test_figure_8_agreement_column(self):
        result = figure_8(k_values=(1,), n_candidates=8, n_voters=20)
        for row in result.rows:
            if row[1] != "full":
                assert row[6] is True


class TestApproxRunners:
    def test_figure_9_probability_decay(self):
        result = figure_9(
            m_values=(4, 5), repeats=1, rs_max_samples=50_000,
            lite_samples=200,
        )
        rows = {row[0]: row for row in result.rows}
        assert rows[4][1] > rows[5][1] > 0.0

    def test_figure_10_error_columns_ordered(self):
        result = figure_10(
            benchmark="a", d_values=(1, 4), n_instances=2, m=7,
            n_per_proposal=100,
        )
        for row in result.rows:
            assert row[1] <= row[2] <= row[3] <= row[4]  # p25<=p50<=p75<=max

    def test_figure_12_notes_fraction(self):
        result = figure_12(n_instances=3, m=7, n_per_proposal=100)
        assert 0.0 <= result.notes["improved_fraction"] <= 1.0

    def test_figure_13a_reports_w(self):
        result = figure_13a(
            labels_per_pattern=(3,), items_per_label=(3,), m=12,
        )
        assert all(row[3] >= 1 for row in result.rows)

    def test_figure_14_pattern_growth_column(self):
        result = figure_14(
            m_values=(15,), n_users=2, n_components=2, n_per_proposal=30,
            max_proposals=3,
        )
        assert len(result.rows) == 1
        assert result.rows[0][1] >= 1

    def test_figure_15_grouping_never_more_calls(self):
        result = figure_15(session_counts=(10, 50), naive_limit=50, n_movies=6)
        calls = {(row[0], row[1]): row[3] for row in result.rows}
        for count in (10, 50):
            assert calls[(count, "grouped")] <= calls[(count, "naive")]

    def test_accuracy_table_fractions(self):
        result = accuracy_table(m=6, n_sessions=3, n_voters=8,
                                n_per_proposal=100)
        values = dict(result.rows)
        assert 0.0 <= values["fraction_under_1pct"] <= 1.0
        assert values["fraction_under_1pct"] <= values["fraction_under_10pct"]
        assert not math.isnan(values["max_rel_err"])
