"""The lint engine, the rule catalogue, and the ``lint`` CLI.

The fixture corpus under ``tests/analysis_fixtures/`` holds one failing
and one passing snippet per rule.  Fixture files carry directives in
leading comments:

    # module: repro.fake.kernel       -> injected dotted module name
    # test-imports: repro.fake.kernel -> injected Project.test_imports

so package-scoped rules (wire-purity, scalar-reference, the async
checks) exercise hermetically, without depending on the real tree.
"""

import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.analysis import get_rules, lint_paths, lint_source
from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Project,
    discover_files,
    load_baseline,
    module_name_for,
    save_baseline,
)

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

_MODULE_RE = re.compile(r"^#\s*module:\s*(\S+)", re.MULTILINE)
_TEST_IMPORTS_RE = re.compile(r"^#\s*test-imports:\s*(\S+)", re.MULTILINE)


def lint_fixture(name, rule_id):
    """Findings of one rule against one fixture file, hermetically."""
    source = (FIXTURES / name).read_text()
    module_match = _MODULE_RE.search(source)
    imports_match = _TEST_IMPORTS_RE.search(source)
    project = Project(
        FIXTURES,
        test_imports=frozenset(
            imports_match.group(1).split(",") if imports_match else ()
        ),
    )
    return lint_source(
        source,
        path=str(FIXTURES / name),
        module=module_match.group(1) if module_match else None,
        rules=get_rules([rule_id]),
        project=project,
    )


CASES = [
    ("rng-discipline", "rng_bad.py", "rng_good.py", 3),
    ("cache-key-purity", "cachekey_bad.py", "cachekey_good.py", 3),
    ("scalar-reference", "scalarref_bad.py", "scalarref_good.py", 2),
    ("lock-discipline", "lock_bad.py", "lock_good.py", 2),
    ("wire-purity", "wire_bad.py", "wire_good.py", 1),
    ("constant-drift", "constant_bad.py", "constant_good.py", 1),
]


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id,bad,good,expected", CASES)
    def test_bad_fixture_flagged(self, rule_id, bad, good, expected):
        findings = lint_fixture(bad, rule_id)
        assert len(findings) == expected, [f.format() for f in findings]
        assert all(f.rule == rule_id for f in findings)
        # Every finding is actionable: positioned, explained, and hinted.
        for finding in findings:
            assert finding.line >= 1 and finding.col >= 1
            assert finding.message

    @pytest.mark.parametrize("rule_id,bad,good,expected", CASES)
    def test_good_fixture_clean(self, rule_id, bad, good, expected):
        findings = lint_fixture(good, rule_id)
        assert findings == [], [f.format() for f in findings]

    @pytest.mark.parametrize("rule_id,bad,good,expected", CASES)
    def test_disabling_the_rule_silences_the_bad_fixture(
        self, rule_id, bad, good, expected
    ):
        # The acceptance contract: each fixture test FAILS when its rule
        # is disabled, i.e. the findings come from that rule alone.
        others = [r for r in (case[0] for case in CASES) if r != rule_id]
        source = (FIXTURES / bad).read_text()
        module_match = _MODULE_RE.search(source)
        findings = lint_source(
            source,
            path=str(FIXTURES / bad),
            module=module_match.group(1) if module_match else None,
            rules=get_rules(others),
            project=Project(FIXTURES, test_imports=frozenset()),
        )
        assert all(f.rule != rule_id for f in findings)


class TestRuleDetails:
    def test_rng_allows_generator_constructors(self):
        findings = lint_source(
            "import numpy as np\n"
            "rng = np.random.default_rng(np.random.SeedSequence(7))\n",
            module="repro.fake.m",
            rules=get_rules(["rng-discipline"]),
        )
        assert findings == []

    def test_rng_sees_through_aliases(self):
        findings = lint_source(
            "import numpy.random as npr\nnpr.shuffle([1, 2])\n",
            module="repro.fake.m",
            rules=get_rules(["rng-discipline"]),
        )
        assert len(findings) == 1

    def test_scalar_reference_skips_untested_check_outside_repro(self):
        # Benchmarks/scripts (module=None) only get the routing check.
        findings = lint_source(
            "def f(x, vectorized=True):\n"
            "    return x if vectorized else -x\n",
            module=None,
            rules=get_rules(["scalar-reference"]),
            project=Project(FIXTURES, test_imports=frozenset()),
        )
        assert findings == []

    def test_lock_rule_ignores_lockless_classes(self):
        findings = lint_source(
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        self.n += 1\n",
            module="repro.fake.m",
            rules=get_rules(["lock-discipline"]),
        )
        assert findings == []

    def test_wire_purity_scoped_to_server_package(self):
        source = "import json\njson.dumps({})\n"
        assert (
            lint_source(
                source,
                module="repro.service.cache",
                rules=get_rules(["wire-purity"]),
            )
            == []
        )
        assert (
            len(
                lint_source(
                    source,
                    module="repro.server.app",
                    rules=get_rules(["wire-purity"]),
                )
            )
            == 1
        )

    def test_constant_drift_ignores_section_and_figure_numbers(self):
        findings = lint_source(
            '"""Budget BUDGET as in Section 6.2 and Figure 6."""\n'
            "BUDGET = 3.0\n",
            module="repro.fake.m",
            rules=get_rules(["constant-drift"]),
        )
        assert findings == []


class TestEngine:
    def test_suppression_on_line_and_line_above(self):
        flagged = "import json\njson.dumps({})\n"
        inline = (
            "import json\n"
            "json.dumps({})  # repro: allow[wire-purity] transport point\n"
        )
        above = (
            "import json\n"
            "# repro: allow[wire-purity] transport point\n"
            "json.dumps({})\n"
        )
        wildcard = "import json\njson.dumps({})  # repro: allow[*] all\n"
        kwargs = dict(module="repro.server.x", rules=get_rules(["wire-purity"]))
        assert len(lint_source(flagged, **kwargs)) == 1
        assert lint_source(inline, **kwargs) == []
        assert lint_source(above, **kwargs) == []
        assert lint_source(wildcard, **kwargs) == []

    def test_suppression_for_other_rule_does_not_apply(self):
        source = (
            "import json\n"
            "json.dumps({})  # repro: allow[rng-discipline] wrong rule\n"
        )
        findings = lint_source(
            source, module="repro.server.x", rules=get_rules(["wire-purity"])
        )
        assert len(findings) == 1

    def test_module_name_for(self):
        assert module_name_for("src/repro/server/http.py") == "repro.server.http"
        assert module_name_for("src/repro/__init__.py") == "repro"
        assert module_name_for("benchmarks/bench_x.py") is None

    def test_discover_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "b.py").write_text("x = 2\n")
        assert discover_files([tmp_path]) == [str(tmp_path / "a.py")]

    def test_parse_error_becomes_a_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        result = lint_paths([bad], project_root=tmp_path)
        assert [f.rule for f in result.findings] == ["parse-error"]
        assert not result.ok

    def test_baseline_roundtrip_filters_known_findings(self, tmp_path):
        offender = tmp_path / "repro" / "server" / "leaky.py"
        offender.parent.mkdir(parents=True)
        offender.write_text("import json\njson.dumps({})\n")
        first = lint_paths([offender], project_root=tmp_path)
        assert len(first.findings) == 1
        baseline = tmp_path / "lint-baseline.json"
        count = save_baseline(baseline, first, project_root=tmp_path)
        assert count == 1
        assert load_baseline(baseline)
        again = lint_paths(
            [offender], project_root=tmp_path, baseline=baseline
        )
        assert again.findings == []
        # A *new* violation in the same file is not masked by the baseline.
        offender.write_text(
            "import json\njson.dumps({})\njson.dumps({'k': 1})\n"
        )
        third = lint_paths([offender], project_root=tmp_path, baseline=baseline)
        assert len(third.findings) == 1

    def test_finding_format_and_dict(self):
        finding = Finding(
            path="x.py", line=3, col=2, rule="r", message="m", hint="h"
        )
        assert finding.format() == "x.py:3:2: [r] m\n    hint: h"
        assert finding.as_dict()["rule"] == "r"

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_rules(["no-such-rule"])

    def test_module_info_from_path(self):
        info = ModuleInfo.from_path(REPO / "src" / "repro" / "__init__.py")
        assert info.module == "repro"
        assert info.line_text(1).startswith('"""')


class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys, monkeypatch):
        # THE acceptance bar: the committed tree is lint-clean.
        monkeypatch.chdir(REPO)
        assert main(["lint", "src", "benchmarks", "examples"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_bad_fixture_exits_one(self, capsys):
        code = main(["lint", str(FIXTURES / "rng_bad.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "[rng-discipline]" in out
        assert "hint:" in out

    def test_json_format(self, capsys):
        # Note: wire/scalar fixtures need the module directive the test
        # harness injects; the CLI derives module names from paths, so
        # CLI-level tests use the path-independent rng fixture.
        code = main(
            ["lint", str(FIXTURES / "rng_bad.py"), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert payload["findings"][0]["rule"] == "rng-discipline"

    def test_rule_filter(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "rng_bad.py"), "--rule", "wire-purity"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "src", "--rule", "nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "does-not-exist-anywhere"]) == 2
        assert "error" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id, _, _, _ in CASES:
            assert rule_id in out

    def test_write_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "base.json"
        code = main(
            [
                "lint",
                str(FIXTURES / "rng_bad.py"),
                "--write-baseline",
                str(baseline),
            ]
        )
        assert code == 0
        assert load_baseline(baseline)
        code = main(
            ["lint", str(FIXTURES / "rng_bad.py"), "--baseline", str(baseline)]
        )
        assert code == 0


class TestMeta:
    def test_lint_subprocess_matches_ci_invocation(self):
        # Exactly what the CI analysis job runs, from a cold interpreter.
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src", "benchmarks"],
            cwd=REPO,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_fixture_corpus_covers_every_rule(self):
        from repro.analysis import all_rules

        covered = {case[0] for case in CASES}
        assert covered == {rule.rule_id for rule in all_rules()}


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    result = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_allowlist_clean():
    result = subprocess.run(
        [
            "mypy",
            "src/repro/api/requests.py",
            "src/repro/plan/nodes.py",
            "src/repro/server/protocol.py",
        ],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
