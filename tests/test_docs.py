"""The documentation suite stays real: files exist, references resolve.

The package docstrings point readers at DESIGN.md and EXPERIMENTS.md with
specific anchors (Substitution numbers, DESIGN.md Section 4, the system
inventory, the paper-vs-measured record).  These tests fail if a docstring
reference stops resolving to an actual section, or if a README example
stops running.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
DESIGN = (REPO / "DESIGN.md").read_text()
EXPERIMENTS = (REPO / "EXPERIMENTS.md").read_text()
README = (REPO / "README.md").read_text()


def _python_sources():
    for directory in ("src", "benchmarks", "examples"):
        yield from (REPO / directory).rglob("*.py")


class TestDesign:
    def test_promised_sections_exist(self):
        # Anchors promised by repro/__init__, solvers, datasets, benchmarks.
        for anchor in (
            "## 1. System inventory",
            "## 3. Solver dispatch decision tree",
            "## 4. Solver design choices and ablations",
            "Substitution 1",
            "Substitution 2",
            "Substitution 3",
            "## 6. The service layer",
            "ablation baseline",
        ):
            assert anchor in DESIGN, anchor

    def test_inventory_covers_every_package(self):
        packages = {
            child.name
            for child in (REPO / "src" / "repro").iterdir()
            if child.is_dir() and (child / "__init__.py").exists()
        }
        for package in packages:
            assert f"`{package}`" in DESIGN, package

    def test_substitution_references_resolve(self):
        # Any "DESIGN.md, Substitution N" in a docstring must exist here.
        pattern = re.compile(r"Substitutions?\s+(\d)(?:-(\d))?")
        for path in _python_sources():
            text = path.read_text()
            if "DESIGN.md" not in text:
                continue
            for match in pattern.finditer(text):
                low = int(match.group(1))
                high = int(match.group(2) or match.group(1))
                for number in range(low, high + 1):
                    assert f"Substitution {number}" in DESIGN, (path, number)

    def test_section_4_reference_resolves(self):
        # bench_ablation_solver_optimizations cites "DESIGN.md Section 4".
        assert re.search(r"^## 4\..*[Aa]blation", DESIGN, re.MULTILINE)


class TestExperiments:
    def test_one_row_per_benchmark_script(self):
        scripts = sorted((REPO / "benchmarks").glob("bench_*.py"))
        assert scripts
        for script in scripts:
            assert script.name in EXPERIMENTS, script.name

    def test_run_commands_present(self):
        assert "python -m repro figure" in EXPERIMENTS
        assert "paper-vs-measured" in EXPERIMENTS

    def test_every_cli_experiment_has_a_row(self):
        from repro.__main__ import EXPERIMENTS as CLI_EXPERIMENTS

        for name in CLI_EXPERIMENTS:
            assert f"figure {name}" in EXPERIMENTS, name


class TestReadme:
    def test_install_and_links(self):
        assert "pip install -e ." in README
        assert "DESIGN.md" in README
        assert "EXPERIMENTS.md" in README
        assert "python -m repro batch" in README

    @pytest.mark.parametrize(
        "index", range(len(re.findall(r"```python\n(.*?)```", README, re.S)))
    )
    def test_python_examples_run(self, index, capsys):
        blocks = re.findall(r"```python\n(.*?)```", README, re.S)
        exec(compile(blocks[index], f"README.md[block {index}]", "exec"), {})
