"""End-to-end tests for query evaluation over the Figure 1 database.

Hand-computed and Monte-Carlo-validated probabilities for the paper's
running examples Q0, Q1, Q2, plus grounding, grouping, count, and top-k.
"""

import numpy as np
import pytest

from repro.db.examples import polling_example
from repro.query.aggregates import count_session, most_probable_session
from repro.query.ast import Variable
from repro.query.classify import analyze
from repro.query.engine import compile_session_work, evaluate
from repro.query.ground import decompose_query, variable_domain
from repro.query.parser import parse_query


@pytest.fixture
def db():
    return polling_example()


def world_probability(db, predicate, n=30_000, seed=7) -> float:
    """Monte-Carlo estimate of Pr over possible worlds."""
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(n):
        if predicate(db.sample_world(rng)):
            hits += 1
    return hits / n


class TestGrounding:
    def test_q2_domain_of_e(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        analysis = analyze(q, db)
        # edu values in Candidates: BS (Trump, Sanders), JD (Clinton, Rubio).
        assert variable_domain(Variable("e"), analysis, db) == ["BS", "JD"]

    def test_q2_decomposes_into_two_queries(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        grounded = list(decompose_query(q, db))
        assert len(grounded) == 2
        assignments = [a for a, _ in grounded]
        assert {tuple(a.values()) for a in assignments} == {("BS",), ("JD",)}

    def test_itemwise_passthrough(self, db):
        q = parse_query("P(_, _; 'Trump'; 'Clinton')")
        grounded = list(decompose_query(q, db))
        assert len(grounded) == 1
        assert grounded[0][0] == {}


class TestEvaluation:
    def test_q0_exact(self, db):
        # Pr over MAL(<Clinton, Sanders, Rubio, Trump>, 0.3) that Trump is
        # above Clinton and above Rubio.
        q = parse_query(
            "P('Ann', '5/5'; 'Trump'; 'Clinton'), P('Ann', '5/5'; 'Trump'; 'Rubio')"
        )
        result = evaluate(q, db)
        model = db.prelation("P").model_of(("Ann", "5/5"))
        expected = sum(
            p
            for tau, p in model.enumerate_support()
            if tau.prefers("Trump", "Clinton") and tau.prefers("Trump", "Rubio")
        )
        assert result.probability == pytest.approx(expected)
        assert result.n_sessions == 1

    def test_q1_against_monte_carlo(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, _, 'F', _, _, _), C(c2, _, 'M', _, _, _)"
        )
        result = evaluate(q, db)

        def predicate(world):
            for ranking in world.values():
                for male in ("Trump", "Sanders", "Rubio"):
                    if ranking.prefers("Clinton", male):
                        return True
            return False

        mc = world_probability(db, predicate)
        assert result.probability == pytest.approx(mc, abs=0.01)

    def test_q2_against_monte_carlo(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        result = evaluate(q, db)

        def predicate(world):
            for ranking in world.values():
                if ranking.prefers("Sanders", "Trump") or ranking.prefers(
                    "Clinton", "Rubio"
                ):
                    return True
            return False

        mc = world_probability(db, predicate)
        assert result.probability == pytest.approx(mc, abs=0.01)

    def test_session_selection_by_constant(self, db):
        q = parse_query("P('Ann', _; 'Clinton'; 'Trump')")
        result = evaluate(q, db)
        assert result.n_sessions == 1
        assert result.per_session[0].key == ("Ann", "5/5")

    def test_session_selection_by_comparison(self, db):
        q = parse_query("P(_, d; 'Clinton'; 'Trump'), d = '6/5'")
        result = evaluate(q, db)
        assert [e.key for e in result.per_session] == [("Dave", "6/5")]

    def test_exact_methods_agree(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        values = {
            method: evaluate(q, db, method=method).probability
            for method in ("auto", "two_label", "bipartite", "general", "lifted", "brute")
        }
        reference = values.pop("brute")
        for method, value in values.items():
            assert value == pytest.approx(reference, abs=1e-9), method

    def test_approximate_methods_close(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        exact = evaluate(q, db).probability
        rng = np.random.default_rng(11)
        approx = evaluate(
            q, db, method="mis_amp_adaptive", rng=rng, n_per_proposal=300
        ).probability
        assert approx == pytest.approx(exact, rel=0.2)

    def test_grouping_equals_naive(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, _, _), C(c2, 'R', _, _, _, _)"
        )
        grouped = evaluate(q, db, group_sessions=True)
        naive = evaluate(q, db, group_sessions=False)
        assert grouped.probability == pytest.approx(naive.probability)
        # Ann and Dave share a reference ranking but have different phi, so
        # their models differ; grouping saves nothing here but must agree.
        assert grouped.n_solver_calls <= naive.n_solver_calls

    def test_unsatisfiable_query(self, db):
        q = parse_query("P(_, _; c1; c2), C(c1, 'Green', _, _, _, _)")
        result = evaluate(q, db)
        assert result.probability == pytest.approx(0.0, abs=1e-12)

    def test_self_preference_is_false(self, db):
        q = parse_query("P('Ann', '5/5'; 'Trump'; 'Trump')")
        result = evaluate(q, db)
        assert result.probability == 0.0

    def test_wildcard_item_position(self, db):
        # P(s; _; 'Clinton'): someone is preferred to Clinton, i.e. Clinton
        # is not ranked first.
        q = parse_query("P('Ann', '5/5'; _; 'Clinton')")
        result = evaluate(q, db)
        model = db.prelation("P").model_of(("Ann", "5/5"))
        expected = sum(
            p
            for tau, p in model.enumerate_support()
            if tau.rank_of("Clinton") > 1
        )
        assert result.probability == pytest.approx(expected)


class TestSessionBoundJoin:
    def test_voter_demographics_join(self, db):
        # Does some voter prefer a candidate of the voter's own sex to one
        # of the opposite sex?  Ann is F: pattern F > M for her session.
        q = parse_query(
            "P(v, _; c1; c2), V(v, sex, _, _), C(c1, _, sex, _, _, _), "
            "C(c2, _, 'M', _, _, _)"
        )
        works = compile_session_work(q, db)
        by_key = {w.key: w for w in works}
        # Bob (M) compiles an M > M pattern; Ann (F) an F > M pattern.
        assert by_key[("Ann", "5/5")].union is not None
        assert by_key[("Bob", "5/5")].union is not None
        assert (
            by_key[("Ann", "5/5")].union != by_key[("Bob", "5/5")].union
        )

        result = evaluate(q, db)

        def predicate(world):
            sex_of = {"Ann": "F", "Bob": "M", "Dave": "M"}
            males = ("Trump", "Sanders", "Rubio")
            for (_, key), ranking in world.items():
                voter_sex = sex_of[key[0]]
                same = (
                    ("Clinton",) if voter_sex == "F" else males
                )
                for a in same:
                    for b in males:
                        if a != b and ranking.prefers(a, b):
                            return True
            return False

        mc = world_probability(db, predicate)
        assert result.probability == pytest.approx(mc, abs=0.01)


class TestSessionAtomJoinRegressions:
    @pytest.fixture
    def db_with_rep(self, db):
        """Figure 1 plus R(voter, grp, rep): the session value recurs."""
        from repro.db.database import PPDatabase
        from repro.db.schema import ORelation

        rep = ORelation(
            "R",
            ["voter", "grp", "rep"],
            [("Ann", "g1", "Bob"), ("Dave", "g1", "Dave")],
        )
        return PPDatabase(
            orelations=list(db.orelations.values()) + [rep],
            prelations=list(db.prelations.values()),
        )

    def test_recurring_session_variable_constrains_the_row(self, db_with_rep):
        # R(v, _, v) must only join rows whose third column repeats the
        # session value: Ann's row names Bob, so her session is false; only
        # Dave self-matches.  (Regression: the recurring variable at a
        # non-zero position was skipped, joining Ann's row too and
        # inflating Pr(Q | D).)
        q = parse_query("P(v, _; 'Trump'; 'Clinton'), R(v, _, v)")
        works = compile_session_work(q, db_with_rep)
        by_key = {w.key: w.union for w in works}
        assert by_key[("Ann", "5/5")] is None
        assert by_key[("Bob", "5/5")] is None
        assert by_key[("Dave", "6/5")] is not None

        result = evaluate(q, db_with_rep)
        dave_only = evaluate(
            parse_query("P('Dave', _; 'Trump'; 'Clinton')"), db_with_rep
        )
        assert result.probability == pytest.approx(dave_only.probability)

    def test_binding_free_join_not_conflated_with_failed_join(self, db):
        # V(v, 'F', _, _) binds no variables, so every session's binding
        # set is either [{}] (a matching row exists) or [] (none does).
        # (Regression: the per-session union cache keyed both as (), so the
        # first-compiled session's union leaked to all the others.)
        q = parse_query("P(v, _; 'Trump'; 'Clinton'), V(v, 'F', _, _)")
        works = compile_session_work(q, db)
        by_key = {w.key: w.union for w in works}
        assert by_key[("Ann", "5/5")] is not None  # Ann is F
        assert by_key[("Bob", "5/5")] is None
        assert by_key[("Dave", "6/5")] is None

        result = evaluate(q, db)
        ann_only = evaluate(
            parse_query("P('Ann', _; 'Trump'; 'Clinton')"), db
        )
        assert result.probability == pytest.approx(ann_only.probability)


class TestSolverAttribution:
    def test_auto_reports_the_resolved_solver(self, db):
        q = parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')")
        result = evaluate(q, db)
        assert result.method == "auto"  # the request, as asked
        assert result.per_session[0].solver == "two_label"  # the solver run

    def test_mixture_reports_component_solver_not_auto(self):
        from repro.db.database import PPDatabase
        from repro.db.schema import PRelation
        from repro.rim.mallows import Mallows
        from repro.rim.mixture import MallowsMixture

        items = ["a", "b", "c"]
        mixture = MallowsMixture(
            [Mallows(items, 0.3), Mallows(items, 0.6)], [0.5, 0.5]
        )
        db = PPDatabase(
            prelations=[PRelation("P", ["user"], {("u",): mixture})]
        )
        result = evaluate(parse_query("P('u'; 'a'; 'b')"), db)
        assert result.per_session[0].solver == "mixture[two_label]"

    def test_auto_and_explicit_method_share_one_cache_entry(self, db):
        from repro.service.cache import SolverCache

        cache = SolverCache()
        q = parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')")
        first = evaluate(q, db, method="auto", cache=cache)
        assert first.n_solver_calls == 1
        # The explicit twin of what auto resolved to: zero fresh solves.
        second = evaluate(q, db, method="two_label", cache=cache)
        assert second.n_solver_calls == 0
        assert second.stats["cache_hits"] == 1
        assert len(cache) == 1
        assert second.probability == first.probability


class TestAggregates:
    def test_count_is_sum_of_session_probabilities(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        count = count_session(q, db)
        result = evaluate(q, db)
        assert count.expectation == pytest.approx(
            sum(e.probability for e in result.per_session)
        )
        assert len(count.per_session) == 3

    def test_topk_strategies_agree(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        for k in (1, 2, 3):
            naive = most_probable_session(q, db, k=k, strategy="naive")
            for n_edges in (1, 2):
                optimized = most_probable_session(
                    q, db, k=k, strategy="upper_bound", n_edges=n_edges
                )
                assert [key for key, _ in optimized.sessions] == [
                    key for key, _ in naive.sessions
                ]
                probs_opt = [p for _, p in optimized.sessions]
                probs_naive = [p for _, p in naive.sessions]
                assert probs_opt == pytest.approx(probs_naive)

    def test_topk_optimization_saves_work(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        optimized = most_probable_session(
            q, db, k=1, strategy="upper_bound", n_edges=1
        )
        assert optimized.n_exact_evaluations <= 3
        assert optimized.n_upper_bound_evaluations == 3

    def test_topk_validates_k(self, db):
        q = parse_query("P(_, _; 'Trump'; 'Clinton')")
        with pytest.raises(ValueError):
            most_probable_session(q, db, k=0)
        with pytest.raises(ValueError):
            most_probable_session(q, db, k=1, strategy="magic")
