"""Tests for the greedy modal search (Algorithms 5 and 6)."""

from repro.approx.modals import (
    approximate_distance,
    greedy_completion,
    greedy_modals,
)
from repro.rankings.kendall import kendall_tau
from repro.rankings.permutation import Ranking
from repro.rankings.subranking import SubRanking
from tests.conftest import random_instance


class TestGreedyModals:
    def test_paper_example_5_2(self):
        # psi0 = <s3, s1> over sigma0 = <s1, s2, s3> yields exactly the two
        # modals <s3, s1, s2> and <s2, s3, s1> (paper Example 5.2).
        sigma = Ranking(["s1", "s2", "s3"])
        modals = greedy_modals(SubRanking(["s3", "s1"]), sigma)
        assert {m.items for m in modals} == {
            ("s3", "s1", "s2"),
            ("s2", "s3", "s1"),
        }

    def test_empty_subranking_yields_center(self):
        sigma = Ranking([1, 2, 3, 4])
        modals = greedy_modals(SubRanking([]), sigma)
        assert modals == [sigma]

    def test_modals_are_complete_and_consistent(self, pyrng):
        from repro.approx.decompose import union_subrankings

        for _ in range(20):
            model, labeling, union = random_instance(
                pyrng, m_choices=(5, 6), max_patterns=2, max_nodes=3
            )
            for psi in union_subrankings(union, labeling)[:5]:
                for modal in greedy_modals(psi, model.sigma):
                    assert sorted(modal.items) == sorted(model.sigma.items)
                    assert psi.is_consistent_with(modal)

    def test_modals_minimize_distance_exactly_small(self, pyrng):
        # For small m, greedy modals should reach the true minimum distance
        # among completions (the greedy is a heuristic, but on short
        # sub-rankings over few items it is exact in practice; we assert it
        # never does worse than the true optimum + 1).
        sigma = Ranking([0, 1, 2, 3, 4])
        for psi_items in [(4, 0), (3, 1, 0), (2, 4)]:
            psi = SubRanking(psi_items)
            best = min(
                kendall_tau(sigma, tau)
                for tau in Ranking.all_rankings(range(5))
                if psi.is_consistent_with(tau)
            )
            achieved = min(
                kendall_tau(sigma, modal)
                for modal in greedy_modals(psi, sigma)
            )
            assert achieved <= best + 1

    def test_max_modals_cap(self):
        sigma = Ranking(range(8))
        # An empty sub-ranking with uniform ties would explode without a cap.
        modals = greedy_modals(SubRanking([7, 0]), sigma, max_modals=4)
        assert len(modals) <= 4


class TestApproximateDistance:
    def test_distance_of_consistent_subranking_is_zero(self):
        sigma = Ranking([1, 2, 3, 4, 5])
        assert approximate_distance(SubRanking([1, 3, 5]), sigma) == 0

    def test_upper_bounds_true_distance(self, pyrng):
        sigma = Ranking(range(6))
        for _ in range(30):
            items = pyrng.sample(range(6), pyrng.randint(1, 4))
            psi = SubRanking(items)
            estimate = approximate_distance(psi, sigma)
            best = min(
                kendall_tau(sigma, tau)
                for tau in Ranking.all_rankings(range(6))
                if psi.is_consistent_with(tau)
            )
            assert estimate >= best

    def test_greedy_completion_contains_psi(self):
        sigma = Ranking(range(5))
        psi = SubRanking([4, 2, 0])
        completion = greedy_completion(psi, sigma)
        assert psi.is_consistent_with(completion)
        assert sorted(completion.items) == list(range(5))
