"""Unit tests for the Ranking substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.rankings.permutation import Ranking


class TestConstruction:
    def test_basic(self):
        tau = Ranking(["a", "b", "c"])
        assert len(tau) == 3
        assert list(tau) == ["a", "b", "c"]

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Ranking(["a", "a"])

    def test_empty(self):
        tau = Ranking([])
        assert len(tau) == 0

    def test_identity(self):
        tau = Ranking.identity(4)
        assert tau.items == (0, 1, 2, 3)


class TestAccessors:
    def test_item_at_is_one_based(self):
        tau = Ranking(["x", "y"])
        assert tau.item_at(1) == "x"
        assert tau.item_at(2) == "y"

    def test_item_at_out_of_range(self):
        tau = Ranking(["x"])
        with pytest.raises(IndexError):
            tau.item_at(0)
        with pytest.raises(IndexError):
            tau.item_at(2)

    def test_rank_of(self):
        tau = Ranking(["x", "y", "z"])
        assert tau.rank_of("z") == 3

    def test_rank_of_missing(self):
        with pytest.raises(KeyError):
            Ranking(["x"]).rank_of("q")

    def test_contains(self):
        tau = Ranking(["x"])
        assert "x" in tau
        assert "y" not in tau

    def test_getitem_zero_based(self):
        tau = Ranking(["x", "y"])
        assert tau[0] == "x"


class TestPreferences:
    def test_prefers(self):
        tau = Ranking(["a", "b", "c"])
        assert tau.prefers("a", "c")
        assert not tau.prefers("c", "a")

    def test_preference_pairs_count(self):
        tau = Ranking(range(5))
        pairs = list(tau.preference_pairs())
        assert len(pairs) == 10
        assert (0, 4) in pairs
        assert (4, 0) not in pairs


class TestTransformations:
    def test_insert_positions(self):
        tau = Ranking(["a", "c"])
        assert tau.insert("b", 2).items == ("a", "b", "c")
        assert tau.insert("x", 1).items == ("x", "a", "c")
        assert tau.insert("x", 3).items == ("a", "c", "x")

    def test_insert_existing_rejected(self):
        with pytest.raises(ValueError):
            Ranking(["a"]).insert("a", 1)

    def test_insert_bad_position(self):
        with pytest.raises(IndexError):
            Ranking(["a"]).insert("b", 3)

    def test_remove(self):
        tau = Ranking(["a", "b", "c"])
        assert tau.remove("b").items == ("a", "c")

    def test_prefix(self):
        tau = Ranking(["a", "b", "c"])
        assert tau.prefix(2).items == ("a", "b")
        assert tau.prefix(0).items == ()

    def test_restrict_preserves_order(self):
        tau = Ranking(["d", "a", "c", "b"])
        assert tau.restrict({"a", "b", "d"}) == ("d", "a", "b")

    def test_restrict_unknown_item(self):
        with pytest.raises(KeyError):
            Ranking(["a"]).restrict({"z"})

    def test_reversed(self):
        assert Ranking([1, 2, 3]).reversed().items == (3, 2, 1)

    def test_swap(self):
        assert Ranking([1, 2, 3]).swap(1, 3).items == (3, 2, 1)


class TestEnumeration:
    def test_all_rankings_count(self):
        assert len(list(Ranking.all_rankings([1, 2, 3]))) == 6

    def test_all_rankings_distinct(self):
        rankings = list(Ranking.all_rankings("abc"))
        assert len(set(rankings)) == 6

    def test_random_is_permutation(self, rng):
        tau = Ranking.random([1, 2, 3, 4], rng)
        assert sorted(tau.items) == [1, 2, 3, 4]


class TestEquality:
    def test_eq_and_hash(self):
        assert Ranking([1, 2]) == Ranking([1, 2])
        assert Ranking([1, 2]) != Ranking([2, 1])
        assert hash(Ranking([1, 2])) == hash(Ranking([1, 2]))

    def test_not_equal_to_other_types(self):
        assert Ranking([1]) != (1,)


@given(st.permutations(list(range(6))))
def test_rank_item_roundtrip(perm):
    tau = Ranking(perm)
    for rank in range(1, len(perm) + 1):
        assert tau.rank_of(tau.item_at(rank)) == rank


@given(st.permutations(list(range(5))), st.integers(min_value=1, max_value=6))
def test_insert_then_remove_roundtrip(perm, position):
    tau = Ranking(perm)
    inserted = tau.insert("new", position)
    assert inserted.rank_of("new") == position
    assert inserted.remove("new") == tau
