"""Shared fixtures and random-instance helpers for the test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, PatternNode
from repro.patterns.union import PatternUnion
from repro.rim.mallows import Mallows


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy Generator."""
    return np.random.default_rng(20200316)


@pytest.fixture
def pyrng() -> random.Random:
    """A deterministic stdlib Random."""
    return random.Random(20200316)


def random_instance(
    pyrng: random.Random,
    m_choices=(4, 5, 6),
    phi_choices=(0.1, 0.3, 0.7, 1.0),
    max_patterns: int = 3,
    max_nodes: int = 4,
    labels=("A", "B", "C", "D"),
    label_density: float = 0.4,
):
    """A random (model, labeling, union) triple for cross-validation tests."""
    m = pyrng.choice(list(m_choices))
    items = list(range(m))
    model = Mallows(items, pyrng.choice(list(phi_choices)))
    labeling = Labeling(
        {
            item: {label for label in labels if pyrng.random() < label_density}
            for item in items
        }
    )
    patterns = []
    for p in range(pyrng.randint(1, max_patterns)):
        q = pyrng.randint(2, max_nodes)
        nodes = [
            PatternNode(
                f"n{p}_{k}",
                frozenset(pyrng.sample(labels, pyrng.randint(1, 2))),
            )
            for k in range(q)
        ]
        edges = []
        for a in range(q):
            for b in range(a + 1, q):
                if pyrng.random() < 0.5:
                    edges.append((nodes[a], nodes[b]))
        if not edges:
            edges = [(nodes[0], nodes[1])]
        patterns.append(LabelPattern(edges, nodes=nodes))
    return model, labeling, PatternUnion(patterns)


def random_two_label_instance(
    pyrng: random.Random,
    m_choices=(4, 5, 6),
    phi_choices=(0.1, 0.5, 1.0),
    max_patterns: int = 3,
    labels=("A", "B", "C", "D"),
):
    """A random two-label union instance."""
    m = pyrng.choice(list(m_choices))
    items = list(range(m))
    model = Mallows(items, pyrng.choice(list(phi_choices)))
    labeling = Labeling(
        {
            item: {label for label in labels if pyrng.random() < 0.4}
            for item in items
        }
    )
    patterns = []
    for p in range(pyrng.randint(1, max_patterns)):
        left, right = pyrng.sample(labels, 2)
        patterns.append(
            LabelPattern(
                [
                    (
                        PatternNode(f"l{p}", frozenset({left})),
                        PatternNode(f"r{p}", frozenset({right})),
                    )
                ]
            )
        )
    return model, labeling, PatternUnion(patterns)


def random_bipartite_instance(
    pyrng: random.Random,
    m_choices=(4, 5, 6),
    phi_choices=(0.1, 0.5, 1.0),
    max_patterns: int = 2,
    labels=("A", "B", "C", "D"),
):
    """A random bipartite union instance."""
    m = pyrng.choice(list(m_choices))
    items = list(range(m))
    model = Mallows(items, pyrng.choice(list(phi_choices)))
    labeling = Labeling(
        {
            item: {label for label in labels if pyrng.random() < 0.4}
            for item in items
        }
    )
    patterns = []
    for p in range(pyrng.randint(1, max_patterns)):
        n_left = pyrng.randint(1, 2)
        n_right = pyrng.randint(1, 2)
        lefts = [
            PatternNode(f"l{p}_{k}", frozenset({pyrng.choice(labels)}))
            for k in range(n_left)
        ]
        rights = [
            PatternNode(f"r{p}_{k}", frozenset({pyrng.choice(labels)}))
            for k in range(n_right)
        ]
        edges = [
            (u, v)
            for u in lefts
            for v in rights
            if pyrng.random() < 0.7
        ]
        if not edges:
            edges = [(lefts[0], rights[0])]
        patterns.append(LabelPattern(edges))
    return model, labeling, PatternUnion(patterns)
