"""Concurrency soak for the request coalescer.

The serving contract under test: N async clients firing overlapping
mixed-kind requests through :class:`RequestCoalescer` get answers
bit-identical to sequential :func:`repro.api.evaluate.answer` calls, the
coalesce ratio exceeds 1 (windows actually merged traffic), and
cancellation mid-window neither loses nor duplicates responses.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api.evaluate import answer
from repro.db.examples import polling_example
from repro.server.coalescer import CoalescerClosed, RequestCoalescer
from repro.server.metrics import MetricsRegistry
from repro.service.service import PreferenceService

pytestmark = pytest.mark.timeout(120)

BASE = "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
# Same atoms, different order: canonicalization dedups it against BASE.
REORDERED = "P(_, _; c1; c2), C(c2, 'R', _, _, e, _), C(c1, 'D', _, _, e, _)"

#: Overlapping mixed-kind traffic: all four kinds over shared queries.
CORPUS = [
    BASE,
    f"COUNT {BASE}",
    f"TOPK 2 {BASE}",
    f"AGG mean(V.age) {BASE}",
    f"COUNT {REORDERED}",
    f"AGG sum(V.age) {BASE}",
]


@pytest.fixture(scope="module")
def db():
    return polling_example()


@pytest.fixture(scope="module")
def expected(db):
    """Sequential request-at-a-time ground truth for the corpus."""
    return {text: answer(text, db) for text in CORPUS}


def make_coalescer(db, **kwargs):
    service = PreferenceService(backend="serial")
    metrics = MetricsRegistry()
    kwargs.setdefault("metrics", metrics)
    return RequestCoalescer(service, db, **kwargs), metrics


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=90))


class TestSoak:
    def test_concurrent_clients_match_sequential_answers(self, db, expected):
        n_clients = 48

        async def soak():
            coalescer, metrics = make_coalescer(
                db, window_seconds=0.05, max_batch=64
            )
            try:
                results = await asyncio.gather(
                    *(
                        coalescer.submit(CORPUS[i % len(CORPUS)])
                        for i in range(n_clients)
                    )
                )
            finally:
                await coalescer.drain()
                coalescer.close()
            return results, metrics, coalescer

        results, metrics, coalescer = run(soak())

        # Zero lost responses: every client got exactly one answer back.
        assert len(results) == n_clients
        for i, got in enumerate(results):
            want = expected[CORPUS[i % len(CORPUS)]]
            assert got.kind == want.kind
            # Bit-identical to the sequential path: exact methods are
            # deterministic and aggregate terminals draw from a fresh
            # default_rng(0) in both paths when no rng is passed.
            assert got.value == want.value
        # The windows genuinely merged traffic.
        assert metrics.coalesce_ratio > 1.0
        assert coalescer.n_batches < n_clients
        snapshot = metrics.snapshot()
        assert snapshot["coalescing"]["n_coalesced_requests"] == n_clients
        # Cross-request elimination fired on the live batches.
        assert snapshot["coalescing"]["n_solves_eliminated"] > 0

    def test_interleaved_option_keys_do_not_mix_windows(self, db):
        async def soak():
            coalescer, metrics = make_coalescer(db, window_seconds=0.05)
            try:
                plain, limited = await asyncio.gather(
                    coalescer.submit(f"COUNT {BASE}"),
                    coalescer.submit(f"COUNT {BASE}", session_limit=2),
                )
            finally:
                await coalescer.drain()
                coalescer.close()
            return plain, limited, coalescer

        plain, limited, coalescer = run(soak())
        # Different options => different windows => separate batches.
        assert coalescer.n_batches == 2
        assert limited.n_sessions == 2
        assert plain.n_sessions > limited.n_sessions
        assert plain.value != limited.value


class TestCancellation:
    def test_cancel_before_flush_drops_waiter_only(self, db, expected):
        async def scenario():
            coalescer, metrics = make_coalescer(db, window_seconds=0.1)
            tasks = [
                asyncio.ensure_future(coalescer.submit(text))
                for text in CORPUS[:5]
            ]
            await asyncio.sleep(0)  # let every submit join the window
            tasks[1].cancel()
            tasks[3].cancel()
            survivors = await asyncio.gather(
                tasks[0], tasks[2], tasks[4]
            )
            for cancelled in (tasks[1], tasks[3]):
                with pytest.raises(asyncio.CancelledError):
                    await cancelled
            await coalescer.drain()
            coalescer.close()
            return survivors, metrics

        survivors, metrics = run(scenario())
        for got, text in zip(survivors, (CORPUS[0], CORPUS[2], CORPUS[4])):
            assert got.value == expected[text].value
        # Cancelled waiters left before planning: the batch only carried
        # the three live requests, and nobody was answered twice.
        assert metrics.snapshot()["coalescing"]["n_coalesced_requests"] == 3

    def test_cancel_after_flush_discards_response_cleanly(self, db, expected):
        async def scenario():
            coalescer, _ = make_coalescer(db, window_seconds=0)
            doomed = asyncio.ensure_future(coalescer.submit(CORPUS[0]))
            safe = asyncio.ensure_future(coalescer.submit(CORPUS[1]))
            await asyncio.sleep(0)
            doomed.cancel()  # its batch may already be running
            got = await safe
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await coalescer.drain()
            coalescer.close()
            return got

        got = run(scenario())
        assert got.value == expected[CORPUS[1]].value


class TestWindows:
    def test_max_batch_flushes_early(self, db, expected):
        async def scenario():
            coalescer, _ = make_coalescer(
                db, window_seconds=30.0, max_batch=3
            )
            try:
                results = await asyncio.gather(
                    *(coalescer.submit(CORPUS[i]) for i in range(3))
                )
            finally:
                await coalescer.drain()
                coalescer.close()
            return results, coalescer

        # With a 30s window this only terminates via the max_batch flush
        # (the whole scenario is capped at 90s by run()).
        results, coalescer = run(scenario())
        assert coalescer.n_full_flushes == 1
        assert [a.value for a in results] == [
            expected[CORPUS[i]].value for i in range(3)
        ]

    def test_zero_window_serves_request_at_a_time(self, db, expected):
        async def scenario():
            coalescer, metrics = make_coalescer(db, window_seconds=0)
            try:
                results = await asyncio.gather(
                    *(coalescer.submit(CORPUS[i]) for i in range(4))
                )
            finally:
                await coalescer.drain()
                coalescer.close()
            return results, coalescer

        results, coalescer = run(scenario())
        assert coalescer.n_batches == 4  # nothing coalesced: the baseline
        for got, text in zip(results, CORPUS[:4]):
            assert got.value == expected[text].value


class TestFailureAndShutdown:
    def test_evaluation_error_is_delivered_to_the_waiter(self, db):
        async def scenario():
            coalescer, _ = make_coalescer(db, window_seconds=0)
            try:
                with pytest.raises(KeyError):
                    await coalescer.submit(f"AGG mean(C.age) {BASE}")
            finally:
                await coalescer.drain()
                coalescer.close()

        run(scenario())

    def test_submit_after_drain_is_refused(self, db):
        async def scenario():
            coalescer, _ = make_coalescer(db, window_seconds=0.01)
            first = asyncio.ensure_future(coalescer.submit(CORPUS[0]))
            await asyncio.sleep(0)
            drained = asyncio.ensure_future(coalescer.drain())
            await asyncio.sleep(0)
            with pytest.raises(CoalescerClosed):
                await coalescer.submit(CORPUS[1])
            # The request accepted before the drain still gets answered.
            got = await first
            await drained
            coalescer.close()
            return got

        got = run(scenario())
        assert got.kind == "probability"

    def test_execute_many_matches_direct_answer_many(self, db):
        service = PreferenceService(backend="serial")
        direct = service.answer_many(list(CORPUS), db)

        async def scenario():
            coalescer = RequestCoalescer(service, db, window_seconds=0.01)
            try:
                return await coalescer.execute_many(list(CORPUS))
            finally:
                await coalescer.drain()
                coalescer.close()

        batch = run(scenario())
        assert batch.n_requests == direct.n_requests
        assert batch.n_solves_planned == direct.n_solves_planned
        assert batch.n_solves_eliminated == direct.n_solves_eliminated
        for got, want in zip(batch.answers, direct.answers):
            assert got.value == want.value
