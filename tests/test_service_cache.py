"""Tests for the serving layer: canonical keys, the LRU cache, wiring.

Covers the acceptance bar of the cache subsystem: relabeled-but-identical
models/patterns collide on their canonical keys, cache-on and cache-off
evaluation agree across every exact solver path, the LRU evicts at
capacity, and ``PreferenceService.evaluate_many`` matches sequential
``evaluate`` output.
"""

import numpy as np
import pytest

from repro.db.database import PPDatabase
from repro.db.examples import polling_example
from repro.db.schema import ORelation, PRelation
from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, node
from repro.patterns.union import PatternUnion
from repro.query.engine import evaluate
from repro.query.parser import parse_query
from repro.rim.mallows import Mallows
from repro.rim.mixture import MallowsMixture
from repro.rim.model import RIM
from repro.service import SolverCache, session_cache_key, solve_cache_key
from repro.service.service import PreferenceService
from repro.solvers.dispatch import solve

EXACT_METHODS = ("auto", "two_label", "bipartite", "general", "lifted", "brute")


@pytest.fixture
def db():
    return polling_example()


# ----------------------------------------------------------------------
# Canonical forms (freeze hooks)
# ----------------------------------------------------------------------


class TestModelFreeze:
    def test_equal_mallows_instances_collide(self):
        a = Mallows(["x", "y", "z"], 0.4)
        b = Mallows(["x", "y", "z"], 0.4)
        assert a is not b
        assert a.freeze() == b.freeze()

    def test_mallows_parameters_distinguish(self):
        base = Mallows(["x", "y", "z"], 0.4)
        assert base.freeze() != Mallows(["x", "y", "z"], 0.5).freeze()
        assert base.freeze() != Mallows(["x", "z", "y"], 0.4).freeze()

    def test_rim_freeze_tracks_pi(self):
        a = RIM.uniform(["x", "y", "z"])
        b = RIM.uniform(["x", "y", "z"])
        assert a.freeze() == b.freeze()
        assert a.freeze() != Mallows(["x", "y", "z"], 0.3).freeze()

    def test_mixture_component_order_is_normalized(self):
        a = Mallows(["x", "y", "z"], 0.3)
        b = Mallows(["z", "y", "x"], 0.5)
        forward = MallowsMixture([a, b], [0.3, 0.7])
        backward = MallowsMixture([b, a], [0.7, 0.3])
        split = MallowsMixture([a, a, b], [0.15, 0.15, 0.7])
        assert forward.freeze() == backward.freeze() == split.freeze()
        reweighted = MallowsMixture([a, b], [0.4, 0.6])
        assert forward.freeze() != reweighted.freeze()

    def test_singleton_mixture_collides_with_plain_mallows(self):
        a = Mallows(["x", "y", "z"], 0.3)
        assert MallowsMixture([a], [1.0]).freeze() == a.freeze()


class TestPatternCanonicalForm:
    def test_renamed_nodes_collide(self):
        original = LabelPattern([(node("c1", "F"), node("c2", "M"))])
        renamed = LabelPattern([(node("left", "F"), node("right", "M"))])
        assert original.canonical_form() == renamed.canonical_form()

    def test_edge_direction_distinguishes(self):
        forward = LabelPattern([(node("a", "F"), node("b", "M"))])
        backward = LabelPattern([(node("a", "M"), node("b", "F"))])
        assert forward.canonical_form() != backward.canonical_form()

    def test_same_label_multiset_different_shape(self):
        chain = LabelPattern(
            [(node("a", "X"), node("b", "X")), (node("b", "X"), node("c", "X"))]
        )
        fork = LabelPattern(
            [(node("a", "X"), node("b", "X")), (node("a", "X"), node("c", "X"))]
        )
        assert chain.canonical_form() != fork.canonical_form()

    def test_identical_label_nodes_renamed(self):
        one = LabelPattern([(node("a", "F"), node("b", "F"))])
        other = LabelPattern([(node("u", "F"), node("v", "F"))])
        assert one.canonical_form() == other.canonical_form()

    def test_relabeled_helper_collides(self):
        pattern = LabelPattern(
            [(node("a", "F"), node("b", "M")), (node("a", "F"), node("c", "D"))]
        )
        assert pattern.canonical_form() == pattern.relabeled("&0").canonical_form()

    def test_union_is_order_and_name_invariant(self):
        fm = LabelPattern([(node("c1", "F"), node("c2", "M"))])
        dd = LabelPattern([(node("c3", "D"), node("c4", "D"))])
        fm_renamed = LabelPattern([(node("x", "F"), node("y", "M"))])
        assert (
            PatternUnion([fm, dd]).freeze()
            == PatternUnion([dd, fm_renamed]).freeze()
        )
        assert PatternUnion([fm]).freeze() != PatternUnion([fm, dd]).freeze()


class TestLabelingFreeze:
    def test_item_order_is_normalized(self):
        a = Labeling({"t": {"M"}, "c": {"F"}})
        b = Labeling({"c": {"F"}, "t": {"M"}})
        assert a.freeze() == b.freeze()

    def test_projection_ignores_irrelevant_labels(self):
        a = Labeling({"t": {"M", "R"}, "c": {"F", "D"}})
        b = Labeling({"t": {"M", "other"}, "c": {"F"}})
        assert a.freeze({"M", "F"}) == b.freeze({"M", "F"})
        assert a.freeze() != b.freeze()

    def test_item_universe_matters(self):
        # An extra (even unlabeled) item changes what wildcard nodes match.
        small = Labeling({"t": {"M"}, "c": {"F"}})
        large = Labeling({"t": {"M"}, "c": {"F"}, "x": set()})
        assert small.freeze({"M", "F"}) != large.freeze({"M", "F"})


class TestRequestKeys:
    def test_equivalent_requests_collide(self):
        labeling = Labeling({"t": {"M"}, "c": {"F"}, "s": {"M"}})
        union = PatternUnion([LabelPattern([(node("a", "F"), node("b", "M"))])])
        renamed = PatternUnion([LabelPattern([(node("p", "F"), node("q", "M"))])])
        key1 = solve_cache_key(
            Mallows(["c", "s", "t"], 0.3), labeling, union, "auto"
        )
        key2 = solve_cache_key(
            Mallows(["c", "s", "t"], 0.3), labeling, renamed, "two_label"
        )
        assert key1 == key2  # auto resolves to two_label for this union

    def test_session_and_solve_keys_are_disjoint(self):
        labeling = Labeling({"t": {"M"}, "c": {"F"}})
        union = PatternUnion([LabelPattern([(node("a", "F"), node("b", "M"))])])
        model = Mallows(["c", "t"], 0.3)
        assert solve_cache_key(model, labeling, union) != session_cache_key(
            model, labeling, union
        )

    def test_options_distinguish(self):
        labeling = Labeling({"t": {"M"}, "c": {"F"}})
        union = PatternUnion([LabelPattern([(node("a", "F"), node("b", "M"))])])
        model = Mallows(["c", "t"], 0.3)
        plain = solve_cache_key(model, labeling, union, "lifted")
        tuned = solve_cache_key(
            model, labeling, union, "lifted", {"merge_gaps": False}
        )
        assert plain != tuned


# ----------------------------------------------------------------------
# The LRU cache
# ----------------------------------------------------------------------


class TestSolverCache:
    def test_hit_miss_counting(self):
        cache = SolverCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_eviction_at_capacity(self):
        cache = SolverCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.stats().evictions == 1
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_get_refreshes_recency(self):
        cache = SolverCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "a" becomes most recent; "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_get_or_compute_computes_once(self):
        cache = SolverCache(capacity=2)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SolverCache(capacity=0)

    def test_get_or_compute_single_flight_under_contention(self):
        # Regression: concurrent misses on ONE key used to race past the
        # documented check-then-compute window and each run compute().
        # With per-key in-flight events, a barrier-synchronized pool of
        # threads releases exactly one compute; the rest block and read
        # the published value.
        import threading
        from concurrent.futures import ThreadPoolExecutor

        n_threads = 8
        cache = SolverCache(capacity=4)
        barrier = threading.Barrier(n_threads)
        calls = []
        calls_lock = threading.Lock()

        def compute():
            with calls_lock:
                calls.append(threading.get_ident())
            return "value"

        def contend():
            barrier.wait()  # all threads miss at the same instant
            return cache.get_or_compute("hot", compute)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            results = list(pool.map(lambda _: contend(), range(n_threads)))
        assert results == ["value"] * n_threads
        assert len(calls) == 1

    def test_get_or_compute_failed_owner_does_not_strand_waiters(self):
        import threading

        cache = SolverCache(capacity=4)
        entered = threading.Event()
        release = threading.Event()
        outcome = []

        def failing():
            entered.set()
            release.wait(5.0)
            raise RuntimeError("solver blew up")

        def owner():
            try:
                cache.get_or_compute("k", failing)
            except RuntimeError:
                outcome.append("raised")

        def waiter():
            entered.wait(5.0)
            outcome.append(cache.get_or_compute("k", lambda: "recovered"))

        threads = [
            threading.Thread(target=owner),
            threading.Thread(target=waiter),
        ]
        threads[0].start()
        entered.wait(5.0)
        threads[1].start()
        release.set()
        for thread in threads:
            thread.join(5.0)
        assert "raised" in outcome
        assert "recovered" in outcome

    def test_put_many_takes_the_lock_once(self):
        # The batch flush contract: ONE outer lock acquisition for the
        # whole batch (re-entrant re-entries inside it are free), not one
        # per entry — so a flush never interleaves with readers.
        import threading

        class CountingRLock:
            """Counts acquisitions made while the lock was not yet held."""

            def __init__(self):
                self._inner = threading.RLock()
                self._depth = 0
                self.outer_acquisitions = 0

            def __enter__(self):
                entered = self._inner.__enter__()
                if self._depth == 0:
                    self.outer_acquisitions += 1
                self._depth += 1
                return entered

            def __exit__(self, *exc_info):
                self._depth -= 1
                return self._inner.__exit__(*exc_info)

        cache = SolverCache(capacity=64)
        lock = CountingRLock()
        cache._lock = lock
        cache.put_many([(f"k{i}", i) for i in range(50)])
        assert len(cache) == 50
        assert lock.outer_acquisitions == 1


# ----------------------------------------------------------------------
# Engine and dispatch wiring
# ----------------------------------------------------------------------


class TestEngineCache:
    QUERY = "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"

    @pytest.mark.parametrize("method", EXACT_METHODS)
    def test_cache_on_equals_cache_off(self, db, method):
        query = parse_query(self.QUERY)
        reference = evaluate(query, db, method=method)
        cache = SolverCache(64)
        cold = evaluate(query, db, method=method, cache=cache)
        warm = evaluate(query, db, method=method, cache=cache)
        assert abs(cold.probability - reference.probability) <= 1e-12
        assert abs(warm.probability - reference.probability) <= 1e-12
        assert warm.n_solver_calls == 0
        assert warm.stats["cache_hits"] == warm.n_groups

    def test_cache_hits_across_different_query_texts(self, db):
        # Different syntax, same compiled (model, union) request.
        cache = SolverCache(64)
        direct = evaluate(
            parse_query("P('Ann', '5/5'; 'Trump'; 'Clinton')"), db, cache=cache
        )
        via_comparison = evaluate(
            parse_query("P(v, '5/5'; 'Trump'; 'Clinton'), v = 'Ann'"),
            db,
            cache=cache,
        )
        assert direct.n_solver_calls == 1
        assert via_comparison.n_solver_calls == 0
        assert via_comparison.probability == direct.probability

    def test_mixture_sessions_are_cached(self):
        components = [
            Mallows(["a", "b", "c"], 0.3),
            Mallows(["c", "b", "a"], 0.6),
        ]
        mixture = MallowsMixture(components, [0.4, 0.6])
        db = PPDatabase(
            orelations=[
                ORelation("C", ["item", "kind"], [("a", "X"), ("b", "Y"), ("c", "Y")])
            ],
            prelations=[
                PRelation(
                    "P",
                    ["user"],
                    # Distinct but identically-parameterized mixture objects:
                    # id()-based grouping cannot merge them, the cache can.
                    {
                        ("u1",): mixture,
                        ("u2",): MallowsMixture(components, [0.4, 0.6]),
                    },
                )
            ],
        )
        query = parse_query("P(_; i; j), C(i, 'X'), C(j, 'Y')")
        cache = SolverCache(64)
        reference = evaluate(query, db)
        cold = evaluate(query, db, cache=cache)
        warm = evaluate(query, db, cache=cache)
        assert abs(cold.probability - reference.probability) <= 1e-12
        assert cold.n_solver_calls == 1  # the two mixtures share one key
        assert warm.n_solver_calls == 0

    def test_approximate_methods_bypass_cache(self, db):
        cache = SolverCache(64)
        rng = np.random.default_rng(3)
        first = evaluate(
            parse_query(self.QUERY), db, method="mis_amp_adaptive", rng=rng,
            cache=cache, n_per_proposal=50,
        )
        assert first.n_solver_calls > 0
        assert len(cache) == 0

    def test_grouping_disabled_bypasses_cache(self, db):
        # group_sessions=False is the naive ablation baseline (Fig. 15);
        # a cache must not silently reintroduce session dedup there.
        cache = SolverCache(64)
        query = parse_query(self.QUERY)
        cold = evaluate(query, db, cache=cache, group_sessions=False)
        warm = evaluate(query, db, cache=cache, group_sessions=False)
        assert cold.n_solver_calls == cold.n_sessions
        assert warm.n_solver_calls == warm.n_sessions
        assert len(cache) == 0
        assert abs(warm.probability - cold.probability) <= 1e-12


class TestDispatchCache:
    def test_solve_returns_cached_result(self):
        model = Mallows(["c", "s", "t"], 0.3)
        labeling = Labeling({"c": {"F"}, "s": {"M"}, "t": {"M"}})
        union = PatternUnion([LabelPattern([(node("a", "F"), node("b", "M"))])])
        cache = SolverCache(8)
        first = solve(model, labeling, union, cache=cache)
        renamed = PatternUnion([LabelPattern([(node("x", "F"), node("y", "M"))])])
        second = solve(
            Mallows(["c", "s", "t"], 0.3), labeling, renamed, cache=cache
        )
        assert second is first  # the exact cached object
        assert cache.stats().hits == 1
        uncached = solve(model, labeling, union)
        assert abs(uncached.probability - first.probability) <= 1e-12


# ----------------------------------------------------------------------
# The batch service
# ----------------------------------------------------------------------


class TestPreferenceService:
    QUERIES = (
        "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)",
        "P('Ann', '5/5'; 'Trump'; 'Clinton')",
        "P(_, _; c1; c2), C(c1, _, 'F', _, _, _), C(c2, _, 'M', _, _, _)",
        "P(_, _; c1; c2), C(c1, 'Green', _, _, _, _)",  # unsatisfiable
    )

    @pytest.mark.parametrize("method", ("auto", "lifted"))
    def test_evaluate_many_matches_sequential_evaluate(self, db, method):
        service = PreferenceService(method=method)
        batch = service.evaluate_many(self.QUERIES, db)
        for text, result in zip(self.QUERIES, batch):
            sequential = evaluate(parse_query(text), db, method=method)
            assert abs(result.probability - sequential.probability) <= 1e-12
            assert result.n_sessions == sequential.n_sessions
            for ours, theirs in zip(result.per_session, sequential.per_session):
                assert ours.key == theirs.key
                assert abs(ours.probability - theirs.probability) <= 1e-12

    def test_second_batch_is_all_cache_hits(self, db):
        service = PreferenceService()
        cold = service.evaluate_many(self.QUERIES, db)
        warm = service.evaluate_many(self.QUERIES, db)
        assert cold.n_cache_hits == 0
        assert warm.n_distinct_solves == 0
        assert warm.n_cache_hits == cold.n_distinct_solves
        assert warm.probabilities == cold.probabilities

    def test_worker_pool_matches_serial(self, db):
        serial = PreferenceService(max_workers=1).evaluate_many(self.QUERIES, db)
        threaded = PreferenceService(max_workers=4).evaluate_many(
            self.QUERIES, db
        )
        assert threaded.probabilities == pytest.approx(
            serial.probabilities, abs=1e-12
        )

    def test_single_query_evaluate_uses_shared_cache(self, db):
        service = PreferenceService()
        first = service.evaluate(self.QUERIES[0], db)
        second = service.evaluate(self.QUERIES[0], db)
        assert first.n_solver_calls > 0
        assert second.n_solver_calls == 0
        assert second.probability == first.probability

    def test_unsatisfiable_query_probability_zero(self, db):
        batch = PreferenceService().evaluate_many([self.QUERIES[3]], db)
        # Matches the engine: numerically zero (inclusion-exclusion noise).
        assert batch.probabilities[0] == pytest.approx(0.0, abs=1e-12)

    def test_approximate_method_falls_back_to_sequential(self, db):
        service = PreferenceService(method="mis_amp_adaptive")
        rng = np.random.default_rng(5)
        batch = service.evaluate_many(
            self.QUERIES[:2], db, rng=rng, n_per_proposal=50
        )
        assert batch.n_cache_hits == 0
        assert all(0.0 <= p <= 1.0 for p in batch.probabilities)

    def test_accepts_parsed_queries(self, db):
        query = parse_query(self.QUERIES[1])
        batch = PreferenceService().evaluate_many([query], db)
        reference = evaluate(query, db)
        assert abs(batch.probabilities[0] - reference.probability) <= 1e-12
