"""Tests for the RIM marginal convenience functions."""

import pytest

from repro.rim.mallows import Mallows
from repro.rim.marginals import (
    expected_rank,
    pairwise_marginal,
    pairwise_marginal_matrix,
    rank_distribution,
)


@pytest.fixture
def model():
    return Mallows(list("abcde"), 0.4)


def brute_pairwise(model, a, b) -> float:
    return sum(
        p
        for tau, p in model.enumerate_support()
        if tau.prefers(a, b)
    )


def brute_rank_distribution(model, item):
    m = model.m
    distribution = [0.0] * m
    for tau, p in model.enumerate_support():
        distribution[tau.rank_of(item) - 1] += p
    return distribution


class TestPairwiseMarginal:
    def test_matches_brute_force(self, model):
        for a, b in [("a", "b"), ("a", "e"), ("d", "c")]:
            assert pairwise_marginal(model, a, b) == pytest.approx(
                brute_pairwise(model, a, b)
            )

    def test_complement(self, model):
        p = pairwise_marginal(model, "b", "d")
        q = pairwise_marginal(model, "d", "b")
        assert p + q == pytest.approx(1.0)

    def test_uniform_is_half(self):
        model = Mallows(list("abc"), 1.0)
        assert pairwise_marginal(model, "a", "c") == pytest.approx(0.5)

    def test_degenerate_model(self):
        model = Mallows(list("abc"), 0.0)
        assert pairwise_marginal(model, "a", "c") == pytest.approx(1.0)
        assert pairwise_marginal(model, "c", "a") == pytest.approx(0.0)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            pairwise_marginal(model, "a", "a")
        with pytest.raises(KeyError):
            pairwise_marginal(model, "a", "z")

    def test_matrix_is_consistent(self, model):
        matrix = pairwise_marginal_matrix(model)
        assert len(matrix) == 20  # 5 * 4 ordered pairs
        for (a, b), p in matrix.items():
            assert matrix[(b, a)] == pytest.approx(1.0 - p)


class TestRankDistribution:
    def test_matches_brute_force(self, model):
        for item in "ace":
            exact = rank_distribution(model, item)
            brute = brute_rank_distribution(model, item)
            assert exact == pytest.approx(brute, abs=1e-9)

    def test_sums_to_one(self, model):
        assert sum(rank_distribution(model, "b")) == pytest.approx(1.0)

    def test_sampled_close_to_exact(self, model, rng):
        exact = rank_distribution(model, "c")
        sampled = rank_distribution(model, "c", n_samples=20_000, rng=rng)
        for e, s in zip(exact, sampled):
            assert s == pytest.approx(e, abs=0.02)

    def test_sampling_requires_rng(self, model):
        with pytest.raises(ValueError):
            rank_distribution(model, "c", n_samples=10)

    def test_expected_rank(self, model):
        brute = sum(
            p * tau.rank_of("a") for tau, p in model.enumerate_support()
        )
        assert expected_rank(model, "a") == pytest.approx(brute)

    def test_unknown_item(self, model):
        with pytest.raises(KeyError):
            rank_distribution(model, "z")
