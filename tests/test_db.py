"""Tests for the RIM-PPD database layer."""

import pytest

from repro.db.database import PPDatabase
from repro.db.examples import polling_example
from repro.db.schema import ORelation, PRelation
from repro.rim.mallows import Mallows


class TestORelation:
    def test_arity_validated(self):
        with pytest.raises(ValueError, match="columns"):
            ORelation("R", ["a", "b"], [(1,)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ORelation("R", ["a", "a"], [])

    def test_active_domain(self):
        relation = ORelation("R", ["x", "y"], [(1, "p"), (2, "p"), (1, "q")])
        assert relation.active_domain(0) == [1, 2]
        assert relation.active_domain(1) == ["p", "q"]

    def test_rows_where(self):
        relation = ORelation("R", ["x", "y"], [(1, "p"), (2, "p"), (1, "q")])
        assert list(relation.rows_where({0: 1})) == [(1, "p"), (1, "q")]
        assert relation.first_row_where({0: 1, 1: "q"}) == (1, "q")
        assert relation.first_row_where({0: 9}) is None

    def test_column_index(self):
        relation = ORelation("R", ["x", "y"], [])
        assert relation.column_index("y") == 1
        with pytest.raises(KeyError):
            relation.column_index("z")


class TestPRelation:
    def test_key_arity_validated(self):
        model = Mallows([1, 2], 0.5)
        with pytest.raises(ValueError, match="does not match"):
            PRelation("P", ["voter", "date"], {("a",): model})

    def test_mixed_universes_rejected(self):
        with pytest.raises(ValueError, match="different item universe"):
            PRelation(
                "P",
                ["s"],
                {("a",): Mallows([1, 2], 0.5), ("b",): Mallows([1, 3], 0.5)},
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one session"):
            PRelation("P", ["s"], {})

    def test_scalar_keys_normalized(self):
        model = Mallows([1, 2], 0.5)
        relation = PRelation("P", ["s"], {"x": model})
        assert ("x",) in relation
        assert relation.model_of(("x",)) is model

    def test_session_lookup(self):
        model = Mallows([1, 2], 0.5)
        relation = PRelation("P", ["s"], {("x",): model})
        with pytest.raises(KeyError):
            relation.model_of(("y",))


class TestPPDatabase:
    def test_duplicate_names_rejected(self):
        r = ORelation("R", ["x"], [])
        with pytest.raises(ValueError, match="duplicate"):
            PPDatabase(orelations=[r, r])

    def test_o_p_name_clash_rejected(self):
        r = ORelation("P", ["x"], [])
        p = PRelation("P", ["s"], {("a",): Mallows([1, 2], 0.5)})
        with pytest.raises(ValueError, match="both"):
            PPDatabase(orelations=[r], prelations=[p])

    def test_lookup_errors(self):
        db = polling_example()
        with pytest.raises(KeyError):
            db.orelation("nope")
        with pytest.raises(KeyError):
            db.prelation("nope")

    def test_sample_world_covers_all_sessions(self, rng):
        db = polling_example()
        world = db.sample_world(rng)
        assert len(world) == 3
        for (_, key), ranking in world.items():
            assert sorted(ranking.items) == sorted(
                db.prelation("P").items
            )

    def test_item_satisfies(self):
        db = polling_example()
        # Clinton: party D, sex F, age 69, edu JD, reg NE.
        assert db.item_satisfies("Clinton", "C", {1: "D", 2: "F"})
        assert not db.item_satisfies("Clinton", "C", {1: "R"})
        assert db.item_satisfies("Clinton", "C", {}, predicates=[(3, ">=", 69)])
        assert not db.item_satisfies("Clinton", "C", {}, predicates=[(3, "<", 69)])
        assert not db.item_satisfies("Nobody", "C", {})


class TestPollingExample:
    def test_figure_1_contents(self):
        db = polling_example()
        candidates = db.orelation("C")
        assert len(candidates) == 4
        trump = candidates.first_row_where({0: "Trump"})
        assert trump == ("Trump", "R", "M", 70, "BS", "NE")
        polls = db.prelation("P")
        assert polls.n_sessions == 3
        ann = polls.model_of(("Ann", "5/5"))
        assert ann.phi == 0.3
        assert ann.sigma.items == ("Clinton", "Sanders", "Rubio", "Trump")
