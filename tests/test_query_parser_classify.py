"""Tests for query parsing and classification."""

import pytest

from repro.db.examples import polling_example
from repro.query.ast import (
    Comparison,
    ConjunctiveQuery,
    Constant,
    PAtom,
    Variable,
    WILDCARD,
)
from repro.query.classify import UnsupportedQueryError, analyze
from repro.query.parser import QuerySyntaxError, parse_query


@pytest.fixture
def db():
    return polling_example()


class TestParser:
    def test_q0(self):
        q = parse_query(
            "P('Ann', '5/5'; 'Trump'; 'Clinton'), P('Ann', '5/5'; 'Trump'; 'Rubio')"
        )
        assert len(q.p_atoms) == 2
        assert q.p_atoms[0].left == Constant("Trump")
        assert q.p_atoms[0].session_terms == (Constant("Ann"), Constant("5/5"))

    def test_q2(self):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        assert len(q.o_atoms) == 2
        assert q.p_atoms[0].left == Variable("c1")
        assert q.p_atoms[0].session_terms == (WILDCARD, WILDCARD)

    def test_head_is_optional(self):
        with_head = parse_query("Q() <- P(_; c1; c2)")
        without = parse_query("P(_; c1; c2)")
        assert with_head == without

    def test_comparisons(self):
        q = parse_query("P(_; x; y), M(x, year), year >= 1990, year < 2000")
        assert Comparison(Variable("year"), ">=", 1990) in q.comparisons
        assert Comparison(Variable("year"), "<", 2000) in q.comparisons

    def test_numbers_and_strings(self):
        q = parse_query('P(_; 223; 111), M(223, "double quoted", 1.5)')
        assert q.p_atoms[0].left == Constant(223)
        assert q.o_atoms[0].terms[2] == Constant(1.5)

    def test_syntax_errors(self):
        for bad in (
            "P(_; c1)",  # p-atom needs 3 groups
            "P(_; c1; c2), C(c1",  # unclosed paren
            "P(_; c1; c2) C(c1, _)",  # missing comma
            "42",
            "P(_; a; b; c; d)",
        ):
            with pytest.raises(QuerySyntaxError):
                parse_query(bad)

    def test_no_p_atom_rejected(self):
        with pytest.raises(ValueError):
            parse_query("C(c1, 'D')")


class TestQueryAst:
    def test_variables(self):
        q = parse_query("P(v, _; c1; c2), C(c1, p, _), p = 'D'")
        names = {v.name for v in q.variables()}
        assert names == {"v", "c1", "c2", "p"}

    def test_substitute(self):
        q = parse_query("P(_, _; c1; c2), C(c1, e, _), C(c2, e, _)")
        bound = q.substitute({Variable("e"): "BS"})
        assert all(
            Constant("BS") in atom.terms for atom in bound.o_atoms
        )

    def test_item_variables(self):
        q = parse_query("P(_; c1; 'Trump')")
        assert q.item_variables() == {Variable("c1")}


class TestClassification:
    def test_q0_is_itemwise(self, db):
        q = parse_query(
            "P('Ann', '5/5'; 'Trump'; 'Clinton'), P('Ann', '5/5'; 'Trump'; 'Rubio')"
        )
        analysis = analyze(q, db)
        assert analysis.is_itemwise
        assert analysis.item_variables == set()

    def test_q1_is_itemwise(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, _, 'F', _, _, _), C(c2, _, 'M', _, _, _)"
        )
        assert analyze(q, db).is_itemwise

    def test_q2_grounds_e(self, db):
        q = parse_query(
            "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"
        )
        analysis = analyze(q, db)
        assert not analysis.is_itemwise
        assert analysis.groundable == {Variable("e")}

    def test_equality_comparison_folds(self, db):
        # age = 50 turns the shared variable into a constant: itemwise.
        q = parse_query(
            "P(_, date; c1; c2), C(c1, p, _, _, _, 'NE'), C(c2, p, _, _, _, 'MW'), "
            "date = '5/5'"
        )
        analysis = analyze(q, db)
        assert analysis.groundable == {Variable("p")}

    def test_contradictory_equalities_rejected(self, db):
        q = parse_query("P(_, d; c1; c2), d = '5/5', d = '6/5'")
        with pytest.raises(UnsupportedQueryError, match="contradictory"):
            analyze(q, db)

    def test_different_sessions_rejected(self, db):
        q = ConjunctiveQuery(
            p_atoms=(
                PAtom("P", (Constant("Ann"), Constant("5/5")), Variable("a"), Variable("b")),
                PAtom("P", (Constant("Bob"), Constant("5/5")), Variable("b"), Variable("c")),
            )
        )
        with pytest.raises(UnsupportedQueryError, match="non-sessionwise"):
            analyze(q, db)

    def test_unknown_relations_rejected(self, db):
        with pytest.raises(UnsupportedQueryError, match="unknown p-relation"):
            analyze(parse_query("X(_; a; b)"), db)
        with pytest.raises(UnsupportedQueryError, match="unknown o-relation"):
            analyze(parse_query("P(_, _; a; b), Z(a, _)"), db)

    def test_wrong_session_arity_rejected(self, db):
        with pytest.raises(UnsupportedQueryError, match="columns"):
            analyze(parse_query("P(_; a; b)"), db)

    def test_item_variable_must_be_identifier_column(self, db):
        q = parse_query("P(_, _; c1; c2), C('Trump', c1, _, _, _, _)")
        with pytest.raises(UnsupportedQueryError, match="first"):
            analyze(q, db)

    def test_two_item_variables_in_one_atom_rejected(self, db):
        q = parse_query("P(_, _; c1; c2), C(c1, c2, _, _, _, _)")
        with pytest.raises(UnsupportedQueryError, match="several item"):
            analyze(q, db)

    def test_session_bound_variables(self, db):
        q = parse_query(
            "P(v, _; c1; c2), V(v, sex, _, _), C(c1, _, sex, _, _, _), "
            "C(c2, _, 'F', _, _, _)"
        )
        analysis = analyze(q, db)
        assert Variable("sex") in analysis.session_bound
        # sex is session-bound, not groundable.
        assert analysis.groundable == set()

    def test_wildcard_sessions_allowed_multi_atom(self, db):
        # Follows the paper's Figure 14 notation.
        q = parse_query("P(_, _; 'Trump'; 'Clinton'), P(_, _; 'Trump'; 'Rubio')")
        analysis = analyze(q, db)
        assert analysis.is_itemwise
