"""``python -m repro serve`` end to end: spawn, query, shut down.

The CLI contract the CI smoke and the benchmark rely on: the bound
address is the first (flushed) stdout line, ``--port 0`` binds an
ephemeral port, ``POST /shutdown`` drains and the process exits 0, and a
misconfigured server (auto-approx without a budget) exits 2 before
binding anything.
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.timeout(180)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def serve_command(*extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--dataset", "polls", "--backend", "serial",
        "--window-ms", "5", *extra,
    ]


def spawn(*extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.Popen(
        serve_command(*extra),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO,
    )


def read_port(process: subprocess.Popen, deadline: float = 60.0) -> int:
    started = time.monotonic()
    line = process.stdout.readline()
    assert time.monotonic() - started < deadline
    assert line.startswith("serving on http://"), line
    return int(line.rsplit(":", 1)[1])


def call(port: int, method: str, path: str, body=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestServeSmoke:
    def test_start_query_shutdown(self):
        process = spawn()
        try:
            port = read_port(process)
            status, payload = call(
                port, "POST", "/answer",
                {"request": "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), "
                            "C(c2, 'R', _, _, e, _)"},
            )
            assert status == 200
            assert payload["kind"] == "probability"
            assert 0.0 <= payload["value"] <= 1.0

            status, stats = call(port, "GET", "/stats")
            assert status == 200
            assert stats["requests"]["answered"] == 1

            status, payload = call(port, "POST", "/shutdown")
            assert status == 200 and payload == {"draining": True}

            stdout, stderr = process.communicate(timeout=60)
            assert process.returncode == 0, stderr
            assert "server drained and stopped" in stdout
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    def test_auto_approx_without_budget_exits_2(self):
        process = spawn("--method", "auto-approx")
        stdout, stderr = process.communicate(timeout=120)
        assert process.returncode == 2
        assert "approx_budget" in stderr
        assert "serving on" not in stdout


class TestConfigFromArgs:
    def test_flags_map_onto_the_config(self):
        import argparse

        from repro.server.cli import add_serve_parser, config_from_args

        parser = argparse.ArgumentParser()
        add_serve_parser(parser.add_subparsers(dest="command"))
        args = parser.parse_args(
            [
                "serve", "--port", "0", "--dataset", "polls",
                "--window-ms", "2.5", "--max-batch", "16",
                "--backend", "serial", "--approx-budget", "1e6",
                "--cache-db", "cache.sqlite",
            ]
        )
        config = config_from_args(args)
        assert config.port == 0
        assert config.dataset == "polls"
        assert config.window_seconds == pytest.approx(0.0025)
        assert config.max_batch == 16
        assert config.backend == "serial"
        assert config.solver_options == {"approx_budget": 1e6}
        assert config.cache_db == "cache.sqlite"
