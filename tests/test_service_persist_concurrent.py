"""The persistent cache tier under concurrent writers.

Two serving backends may share one ``--cache-db`` file (the server CLI
wires it straight through), so the SQLite tier must stay uncorrupted
under interleaved writers on separate connections, the version-mismatch
clear must work, and ``put_many`` must stay a single transaction.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.db.examples import polling_example
from repro.service.persist import PersistentCache, PersistentSolverCache
from repro.service.service import PreferenceService

pytestmark = pytest.mark.timeout(120)

QUERIES = [
    "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)",
    "COUNT P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)",
]


class TestConcurrentWriters:
    def test_interleaved_writers_do_not_corrupt_the_file(self, tmp_path):
        path = tmp_path / "shared.sqlite"
        n_writers, n_rounds, chunk = 4, 25, 8
        errors = []
        barrier = threading.Barrier(n_writers)

        def writer(worker: int):
            try:
                cache = PersistentCache(path)
                barrier.wait()
                for round_no in range(n_rounds):
                    # Overlapping keys (shared across workers) exercise
                    # INSERT OR REPLACE races; distinct keys grow the file.
                    items = [
                        (("shared", round_no, j), (j / 7.0, f"w{worker}"))
                        for j in range(chunk)
                    ] + [
                        (("own", worker, round_no), (float(round_no), "lp"))
                    ]
                    cache.put_many(items)
                    got = cache.get(("shared", round_no, 0))
                    assert got is not None and got[0] == 0.0
                cache.close()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(n_writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []

        # The file is intact and holds exactly the expected key space.
        conn = sqlite3.connect(path)
        assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"
        conn.close()
        survivor = PersistentCache(path)
        assert len(survivor) == n_rounds * chunk + n_writers * n_rounds
        for round_no in range(n_rounds):
            for j in range(chunk):
                value = survivor.get(("shared", round_no, j))
                assert value[0] == j / 7.0
                assert value[1] in {f"w{w}" for w in range(n_writers)}
        survivor.close()

    def test_two_services_share_one_cache_db(self, tmp_path):
        path = str(tmp_path / "served.sqlite")
        db = polling_example()

        first = PreferenceService(backend="serial", cache_db=path)
        cold = first.answer_many(QUERIES, db)
        assert cold.n_distinct_solves > 0
        first.cache.close()

        # A second backend over the same file starts warm: every session
        # outcome comes off disk, so the batch performs zero solves.
        second = PreferenceService(backend="serial", cache_db=path)
        warm = second.answer_many(QUERIES, db)
        assert warm.n_distinct_solves == 0
        assert second.stats()["disk_hits"] > 0
        for a, b in zip(cold.answers, warm.answers):
            assert a.value == b.value
        second.cache.close()


class TestVersioning:
    def test_version_mismatch_clears_the_store(self, tmp_path):
        path = tmp_path / "versioned.sqlite"
        old = PersistentCache(path, version="gen-1")
        old.put(("k",), (0.5, "lp"))
        old.close()

        reopened = PersistentCache(path, version="gen-1")
        assert reopened.get(("k",)) == (0.5, "lp")
        reopened.close()

        # A different generation must not trust gen-1 keys.
        migrated = PersistentCache(path, version="gen-2")
        assert migrated.get(("k",)) is None
        assert len(migrated) == 0
        migrated.put(("k",), (0.75, "dp"))
        migrated.close()

        kept = PersistentCache(path, version="gen-2")
        assert kept.get(("k",)) == (0.75, "dp")
        kept.close()

    def test_solver_cache_version_clear_via_tier(self, tmp_path):
        path = str(tmp_path / "tiered.sqlite")
        tiered = PersistentSolverCache(capacity=8, db_path=path,
                                       version="gen-1")
        tiered.put(("k",), (0.25, "lp"))
        tiered.close()
        fresh = PersistentSolverCache(capacity=8, db_path=path,
                                      version="gen-2")
        assert fresh.get(("k",)) is None
        fresh.close()


class TestTransactions:
    def test_put_many_is_one_transaction(self, tmp_path):
        cache = PersistentCache(tmp_path / "txn.sqlite")
        statements = []
        cache._conn.set_trace_callback(statements.append)
        cache.put_many(
            [(("k", i), (i / 3.0, "lp")) for i in range(50)]
        )
        cache._conn.set_trace_callback(None)
        commits = [s for s in statements if s.strip().upper() == "COMMIT"]
        begins = [
            s for s in statements if s.strip().upper().startswith("BEGIN")
        ]
        assert len(commits) == 1
        assert len(begins) <= 1  # one implicit BEGIN for the whole batch
        assert len(cache) == 50
        cache.close()

    def test_put_many_rejects_unpersistable_values_atomically(self, tmp_path):
        cache = PersistentCache(tmp_path / "atomic.sqlite")
        with pytest.raises(TypeError):
            cache.put_many([(("good",), (0.5, "lp")), (("bad",), object())])
        # Validation happens before any row is staged: nothing landed.
        assert len(cache) == 0
        cache.close()
