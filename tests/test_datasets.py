"""Tests for the benchmark and database generators (Section 6.1)."""

import numpy as np

from repro.datasets.benchmarks import (
    benchmark_a,
    benchmark_b,
    benchmark_c,
    benchmark_d,
)
from repro.datasets.crowdrank import crowdrank_database
from repro.datasets.movielens import movielens_database
from repro.datasets.polls import polls_database


class TestBenchmarkA:
    def test_structure(self):
        instances = benchmark_a(n_unions=3, m=10, items_per_label=2)
        assert len(instances) == 3
        for instance in instances:
            assert instance.union.z == 3
            for pattern in instance.union:
                assert pattern.is_bipartite()
                assert pattern.size == 4
                assert len(pattern.edges) == 3

    def test_shared_b_and_d_labels(self):
        instance = benchmark_a(n_unions=1, m=10, items_per_label=2)[0]
        # All three patterns reference the same B and D labels.
        for pattern in instance.union:
            names = {n.name for n in pattern.nodes}
            assert "B" in names and "D" in names

    def test_items_per_label(self):
        instance = benchmark_a(n_unions=1, m=12, items_per_label=3)[0]
        for label in ("B", "D", "A0", "C2"):
            assert instance.labeling.label_count(label) == 3

    def test_deterministic_with_seed(self):
        a = benchmark_a(n_unions=2, m=10, seed=99)
        b = benchmark_a(n_unions=2, m=10, seed=99)
        assert a[0].labeling == b[0].labeling
        assert a[0].union == b[0].union

    def test_low_probability_bias(self):
        # A/B items are drawn from the bottom of sigma, C/D from the top, so
        # A-above-C events are biased to be rare.
        instance = benchmark_a(n_unions=1, m=15, items_per_label=3, seed=1)[0]
        sigma = instance.model.sigma
        a_ranks = [
            sigma.rank_of(i)
            for i in instance.labeling.items_with_label("A0")
        ]
        c_ranks = [
            sigma.rank_of(i)
            for i in instance.labeling.items_with_label("C0")
        ]
        assert np.mean(a_ranks) > np.mean(c_ranks)


class TestBenchmarkB:
    def test_instance_count(self):
        instances = list(
            benchmark_b(
                m_values=(10,),
                patterns_per_union=(1, 2),
                labels_per_pattern=(3,),
                items_per_label=(3,),
                instances_per_combo=2,
            )
        )
        assert len(instances) == 4

    def test_shared_edge_shape_within_union(self):
        instance = next(
            iter(
                benchmark_b(
                    m_values=(10,),
                    patterns_per_union=(3,),
                    labels_per_pattern=(4,),
                    items_per_label=(3,),
                    instances_per_combo=1,
                )
            )
        )
        edge_counts = {len(p.edges) for p in instance.union}
        assert len(edge_counts) == 1  # same shape across patterns

    def test_no_isolated_nodes(self):
        for instance in benchmark_b(
            m_values=(10,),
            patterns_per_union=(1,),
            labels_per_pattern=(3, 5),
            items_per_label=(3,),
            instances_per_combo=3,
        ):
            for pattern in instance.union:
                involved = {n for e in pattern.edges for n in e}
                assert involved == set(pattern.nodes)


class TestBenchmarkC:
    def test_bipartite(self):
        for instance in benchmark_c(
            m_values=(8,),
            patterns_per_union=(2,),
            labels_per_pattern=(2, 3, 4),
            items_per_label=(1, 3),
            instances_per_combo=2,
        ):
            assert instance.union.is_bipartite()

    def test_parameters_recorded(self):
        instance = next(
            iter(
                benchmark_c(
                    m_values=(8,),
                    patterns_per_union=(2,),
                    labels_per_pattern=(3,),
                    items_per_label=(1,),
                    instances_per_combo=1,
                )
            )
        )
        assert instance.params["m"] == 8
        assert instance.params["z"] == 2


class TestBenchmarkD:
    def test_two_label(self):
        for instance in benchmark_d(
            m_values=(10,),
            patterns_per_union=(2, 5),
            items_per_label=(3,),
            instances_per_combo=2,
        ):
            assert instance.union.is_two_label()
            assert instance.model.phi == 0.5


class TestPolls:
    def test_schema(self):
        db = polls_database(n_candidates=8, n_voters=20)
        assert db.orelation("C").columns == (
            "candidate", "party", "sex", "age", "edu", "reg",
        )
        assert db.orelation("V").columns == ("voter", "sex", "age", "edu")
        assert db.prelation("P").n_sessions == 20

    def test_one_session_per_voter(self):
        db = polls_database(n_candidates=6, n_voters=15)
        voters = {key[0] for key in db.prelation("P").session_keys()}
        assert len(voters) == 15

    def test_models_within_group_parameters(self):
        db = polls_database(n_candidates=6, n_voters=30, phis=(0.2, 0.5))
        for key in db.prelation("P").session_keys():
            model = db.prelation("P").model_of(key)
            assert model.phi in (0.2, 0.5)
            assert len(model.items) == 6


class TestMovieLens:
    def test_catalog(self):
        db = movielens_database(n_movies=20, n_users=10, n_components=3)
        movies = db.orelation("M")
        assert len(movies) == 20
        years = [row[2] for row in movies.rows]
        assert any(y < 1990 for y in years) and any(y >= 1990 for y in years)

    def test_component_sharing(self):
        db = movielens_database(n_movies=10, n_users=30, n_components=3)
        models = {
            id(db.prelation("P").model_of(key))
            for key in db.prelation("P").session_keys()
        }
        assert len(models) <= 3

    def test_genre_diversity_grows_with_catalog(self):
        small = movielens_database(n_movies=10, n_users=1, seed=3)
        large = movielens_database(n_movies=150, n_users=1, seed=3)
        genres_small = set(small.orelation("M").active_domain(3))
        genres_large = set(large.orelation("M").active_domain(3))
        assert len(genres_large) >= len(genres_small)


class TestCrowdRank:
    def test_schema_and_sizes(self):
        db = crowdrank_database(n_workers=100, n_movies=12, n_components=4)
        assert len(db.orelation("M")) == 12
        assert len(db.orelation("V")) == 100
        assert db.prelation("P").n_sessions == 100

    def test_model_sharing_for_grouping(self):
        db = crowdrank_database(n_workers=500, n_movies=10, n_components=5)
        models = {
            id(db.prelation("P").model_of(key))
            for key in db.prelation("P").session_keys()
        }
        assert len(models) <= 5

    def test_demographic_correlation(self):
        # Most workers in the same (sex, age) group share the home component.
        db = crowdrank_database(n_workers=600, n_movies=8, n_components=4, seed=2)
        voters = db.orelation("V")
        groups: dict[tuple, dict[int, int]] = {}
        for row in voters.rows:
            voter, sex, age = row
            model_id = id(db.prelation("P").model_of((voter,)))
            groups.setdefault((sex, age), {}).setdefault(model_id, 0)
            groups[(sex, age)][model_id] += 1
        dominant_fractions = [
            max(counts.values()) / sum(counts.values())
            for counts in groups.values()
            if sum(counts.values()) >= 10
        ]
        assert np.mean(dominant_fractions) > 0.6
