"""The serving application: routes, error contract, backpressure, drain.

Drives :class:`ServerApp.handle` in-process with plain dicts (the HTTP
layer only parses bytes), plus one end-to-end pass over real sockets via
:func:`run_server` — raw HTTP/1.1 in, JSON out, graceful shutdown.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api.evaluate import answer
from repro.server.app import ServerApp
from repro.server.config import ServerConfig
from repro.server.http import run_server

pytestmark = pytest.mark.timeout(120)

BASE = "P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)"


def make_app(**overrides) -> ServerApp:
    overrides.setdefault("dataset", "polls")
    overrides.setdefault("backend", "serial")
    overrides.setdefault("window_seconds", 0.005)
    overrides.setdefault("port", 0)
    return ServerApp(ServerConfig(**overrides))


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=90))


async def closing(app, coro):
    try:
        return await coro
    finally:
        await app.shutdown()


class TestRoutes:
    def test_answer_matches_direct_evaluation(self):
        app = make_app()
        want = answer(BASE, app.db)

        status, payload, _ = run(
            closing(app, app.handle("POST", "/answer", BASE, "c1"))
        )
        assert status == 200
        assert payload["kind"] == "probability"
        assert payload["value"] == want.value
        assert payload["n_sessions"] == want.n_sessions

    def test_typed_body_and_options(self):
        app = make_app()
        body = {"request": f"COUNT {BASE}", "session_limit": 2}
        status, payload, _ = run(
            closing(app, app.handle("POST", "/answer", body, "c1"))
        )
        assert status == 200
        assert payload["kind"] == "count"
        assert payload["n_sessions"] == 2

    def test_answer_many_reports_plan_counters(self):
        app = make_app()
        body = {"requests": [BASE, f"COUNT {BASE}", f"TOPK 2 {BASE}"]}
        status, payload, _ = run(
            closing(app, app.handle("POST", "/answer_many", body, "c1"))
        )
        assert status == 200
        assert len(payload["answers"]) == 3
        assert payload["n_solves_planned"] > payload["n_distinct_solves"]
        assert payload["n_solves_eliminated"] > 0

    def test_explain_renders_the_optimized_plan(self):
        app = make_app()
        status, payload, _ = run(
            closing(
                app,
                app.handle(
                    "POST", "/explain",
                    {"requests": [BASE, f"COUNT {BASE}"]}, "c1",
                ),
            )
        )
        assert status == 200
        assert "solve" in payload["explain"]
        assert len(payload["requests"]) == 2

    def test_stats_after_traffic(self):
        app = make_app()

        async def scenario():
            await asyncio.gather(
                *(app.handle("POST", "/answer", BASE, f"c{i}")
                  for i in range(3))
            )
            return app.handle_stats()

        stats = run(closing(app, scenario()))
        assert stats["requests"]["answered"] == 3
        assert stats["latency_seconds"]["p50"] > 0
        assert stats["latency_seconds"]["p99"] >= stats["latency_seconds"]["p50"]
        assert stats["coalescing"]["coalesce_ratio"] >= 1.0
        assert stats["cache"]["size"] >= 0
        assert stats["server"]["dataset"] == "polls"
        json.dumps(stats)  # the payload is wire-ready

    def test_healthz_and_unknown_route(self):
        app = make_app()

        async def scenario():
            ok = await app.handle("GET", "/healthz", None, "c1")
            missing = await app.handle("GET", "/nope", None, "c1")
            wrong_verb = await app.handle("GET", "/answer", None, "c1")
            return ok, missing, wrong_verb

        ok, missing, wrong_verb = run(closing(app, scenario()))
        assert ok[0] == 200 and ok[1] == {"status": "ok"}
        assert missing[0] == 404
        assert wrong_verb[0] == 404


class TestErrorContract:
    def test_syntax_error_is_400_with_caret(self):
        app = make_app()
        status, payload, _ = run(
            closing(app, app.handle("POST", "/answer", "P(v; 'a' 'b')", "c"))
        )
        assert status == 400
        assert "^" in payload["error"]

    def test_auto_approx_without_budget_is_400(self):
        app = make_app()
        body = {"request": BASE, "method": "auto-approx"}
        status, payload, _ = run(
            closing(app, app.handle("POST", "/answer", body, "c"))
        )
        assert status == 400
        assert "approx_budget" in payload["error"]

    def test_auto_approx_with_budget_answers(self):
        app = make_app()
        body = {"request": BASE, "method": "auto-approx",
                "approx_budget": 1e6}
        status, payload, _ = run(
            closing(app, app.handle("POST", "/answer", body, "c"))
        )
        assert status == 200
        assert 0.0 <= payload["value"] <= 1.0

    def test_server_config_rejects_auto_approx_without_budget(self):
        with pytest.raises(ValueError, match="approx_budget"):
            make_app(method="auto-approx")
        # With a budget the same configuration is legal.
        app = make_app(method="auto-approx",
                       solver_options={"approx_budget": 1e6})
        run(closing(app, app.handle("GET", "/healthz", None, "c")))

    def test_evaluation_error_is_400_not_a_stack_trace(self):
        app = make_app()
        status, payload, _ = run(
            closing(
                app,
                app.handle("POST", "/answer", f"AGG mean(C.age) {BASE}", "c"),
            )
        )
        assert status == 400
        assert payload["error"].startswith("cannot evaluate request")
        assert "Traceback" not in payload["error"]

    def test_approximate_parallelism_warning_fires_through_config(self):
        # Satellite fix: the server's configured backend/max_workers feed
        # the service defaults, so the rng-driven route's parallelism
        # warning fires for server configs exactly as for direct services.
        app = make_app(backend="thread", max_workers=4)
        body = {"request": BASE, "method": "rejection"}
        with pytest.warns(UserWarning, match="parallelism"):
            status, payload, _ = run(
                closing(app, app.handle("POST", "/answer", body, "c"))
            )
        assert status == 200
        assert 0.0 <= payload["value"] <= 1.0


class TestBackpressure:
    def test_overflow_is_429_with_retry_after(self):
        app = make_app(max_pending_per_client=1, window_seconds=0.1)

        async def scenario():
            first = asyncio.ensure_future(
                app.handle("POST", "/answer", BASE, "alice")
            )
            await asyncio.sleep(0)  # alice's slot is now held in the window
            rejected = await app.handle("POST", "/answer", BASE, "alice")
            other = await app.handle("POST", "/answer", BASE, "bob")
            return await first, rejected, other

        first, rejected, other = run(closing(app, scenario()))
        assert first[0] == 200
        status, payload, headers = rejected
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert payload["status"] == 429
        assert other[0] == 200  # the per-client bound is per client
        assert app.metrics.snapshot()["requests"]["rejected"] == 1

    def test_total_bound_rejects_across_clients(self):
        app = make_app(max_pending_total=2, window_seconds=0.1)

        async def scenario():
            held = [
                asyncio.ensure_future(
                    app.handle("POST", "/answer", BASE, f"c{i}")
                )
                for i in range(2)
            ]
            await asyncio.sleep(0)
            rejected = await app.handle("POST", "/answer", BASE, "c9")
            return await asyncio.gather(*held), rejected

        held, rejected = run(closing(app, scenario()))
        assert all(status == 200 for status, _, _ in held)
        assert rejected[0] == 429


class TestShutdown:
    def test_drain_answers_accepted_requests_then_refuses(self):
        app = make_app(window_seconds=0.2)

        async def scenario():
            pending = asyncio.ensure_future(
                app.handle("POST", "/answer", BASE, "c")
            )
            await asyncio.sleep(0)  # joins an open 200ms window
            await app.shutdown()  # flushes it instead of waiting
            answered = await pending
            refused = await app.handle("POST", "/answer", BASE, "c")
            return answered, refused

        answered, refused = run(scenario())
        assert answered[0] == 200
        assert refused[0] == 503

    def test_shutdown_route_sets_the_event(self):
        app = make_app()

        async def scenario():
            status, payload, _ = await app.handle(
                "POST", "/shutdown", None, "c"
            )
            return status, payload, app.shutdown_requested.is_set()

        status, payload, flagged = run(closing(app, scenario()))
        assert status == 200 and payload == {"draining": True}
        assert flagged


# ----------------------------------------------------------------------
# End to end over real sockets
# ----------------------------------------------------------------------


async def http_call(port, method, path, body=None, headers=()):
    """One raw HTTP/1.1 exchange against 127.0.0.1:port."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n"
        )
        for name, value in headers:
            head += f"{name}: {value}\r\n"
        writer.write(head.encode() + b"\r\n" + payload)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        response_headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            response_headers[name.strip().lower()] = value.strip()
        raw = await reader.readexactly(
            int(response_headers["content-length"])
        )
        return status, json.loads(raw), response_headers
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class TestHTTPEndToEnd:
    def test_serve_query_stats_shutdown(self):
        config = ServerConfig(
            dataset="polls", backend="serial", port=0, window_seconds=0.005
        )
        app = ServerApp(config)
        db = app.db

        async def scenario():
            bound = asyncio.get_running_loop().create_future()
            server_task = asyncio.ensure_future(
                run_server(config, ready=lambda s: bound.set_result(s.port),
                           app=app)
            )
            port = await bound
            health = await http_call(port, "GET", "/healthz")
            answered = await asyncio.gather(
                http_call(port, "POST", "/answer", {"request": BASE}),
                http_call(port, "POST", "/answer",
                          {"request": f"COUNT {BASE}"}),
            )
            bad = await http_call(port, "POST", "/answer",
                                  {"request": "P(v; 'a' 'b'"})
            missing = await http_call(port, "GET", "/nowhere")
            stats = await http_call(port, "GET", "/stats")
            down = await http_call(port, "POST", "/shutdown")
            await asyncio.wait_for(server_task, timeout=30)
            return health, answered, bad, missing, stats, down

        health, answered, bad, missing, stats, down = run(scenario())
        assert health[0] == 200
        want = answer(BASE, db)
        assert answered[0][0] == 200
        assert answered[0][1]["value"] == want.value
        assert answered[1][1]["kind"] == "count"
        assert bad[0] == 400 and "^" in bad[1]["error"]
        assert missing[0] == 404
        assert stats[0] == 200
        assert stats[1]["requests"]["answered"] == 2
        assert down == (200, {"draining": True},
                        down[2])  # body + headers intact

    def test_malformed_json_body_is_400(self):
        config = ServerConfig(dataset="polls", backend="serial", port=0)
        app = ServerApp(config)

        async def scenario():
            bound = asyncio.get_running_loop().create_future()
            server_task = asyncio.ensure_future(
                run_server(config, ready=lambda s: bound.set_result(s.port),
                           app=app)
            )
            port = await bound
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            raw = b"not json"
            writer.write(
                b"POST /answer HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(raw)}\r\n\r\n".encode()
                + raw
            )
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            writer.close()
            await http_call(port, "POST", "/shutdown")
            await asyncio.wait_for(server_task, timeout=30)
            return status

        assert run(scenario()) == 400
