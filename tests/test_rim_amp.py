"""Tests for the AMP constrained sampler."""

import math

import pytest

from repro.rankings.partial_order import CyclicOrderError, PartialOrder
from repro.rankings.permutation import Ranking
from repro.rankings.subranking import SubRanking
from repro.rim.amp import AMPSampler
from repro.rim.mallows import Mallows


class TestConstruction:
    def test_cyclic_constraint_rejected(self):
        model = Mallows(["a", "b"], 0.5)
        with pytest.raises(CyclicOrderError):
            AMPSampler(model, PartialOrder([("a", "b"), ("b", "a")]))

    def test_unknown_items_rejected(self):
        model = Mallows(["a", "b"], 0.5)
        with pytest.raises(ValueError, match="outside the model"):
            AMPSampler(model, PartialOrder([("a", "z")]))

    def test_accepts_subranking_and_ranking(self):
        model = Mallows(["a", "b", "c"], 0.5)
        AMPSampler(model, SubRanking(["c", "a"]))
        AMPSampler(model, Ranking(["c", "b", "a"]))


class TestSampling:
    def test_samples_respect_constraint(self, rng):
        model = Mallows(list(range(6)), 0.7)
        constraint = PartialOrder([(5, 0), (3, 1)])
        sampler = AMPSampler(model, constraint)
        for _ in range(200):
            tau = sampler.sample(rng)
            assert constraint.is_consistent(tau)

    def test_unconstrained_amp_equals_rim(self, rng):
        # With an empty constraint AMP is exactly the underlying RIM.
        model = Mallows(list(range(4)), 0.4)
        sampler = AMPSampler(model, PartialOrder())
        for tau in Ranking.all_rankings(range(4)):
            assert sampler.probability(tau) == pytest.approx(
                model.probability(tau)
            )

    def test_transitive_constraints_used(self, rng):
        # a > b > c implies a > c even without the explicit edge.
        model = Mallows(["a", "b", "c"], 1.0)
        sampler = AMPSampler(model, PartialOrder([("c", "b"), ("b", "a")]))
        for _ in range(100):
            tau = sampler.sample(rng)
            assert tau.prefers("c", "a")


class TestProposalDensity:
    def test_example_2_2(self):
        # Paper Example 2.2: AMP(<a,b,c>, phi, {c > a}) generates <b, c, a>
        # with probability (phi / (1 + phi)) * (phi / (phi + phi^2)).
        phi = 0.5
        model = Mallows(["a", "b", "c"], phi)
        sampler = AMPSampler(model, PartialOrder([("c", "a")]))
        expected = (phi / (1 + phi)) * (phi / (phi + phi**2))
        assert sampler.probability(Ranking(["b", "c", "a"])) == pytest.approx(
            expected
        )

    def test_density_normalizes_over_consistent_rankings(self):
        model = Mallows(list(range(5)), 0.35)
        constraint = PartialOrder([(4, 0), (2, 1)])
        sampler = AMPSampler(model, constraint)
        total = sum(
            sampler.probability(tau)
            for tau in Ranking.all_rankings(range(5))
        )
        assert total == pytest.approx(1.0)

    def test_zero_density_on_violating_rankings(self):
        model = Mallows(["a", "b"], 0.5)
        sampler = AMPSampler(model, PartialOrder([("b", "a")]))
        assert sampler.probability(Ranking(["a", "b"])) == 0.0
        assert sampler.log_probability(Ranking(["a", "b"])) == -math.inf

    def test_density_matches_empirical(self, rng):
        model = Mallows(list(range(4)), 0.5)
        sampler = AMPSampler(model, SubRanking([3, 0]))
        n = 20_000
        counts: dict = {}
        for _ in range(n):
            tau = sampler.sample(rng)
            counts[tau] = counts.get(tau, 0) + 1
        for tau, count in counts.items():
            p = sampler.probability(tau)
            sigma = math.sqrt(p * (1 - p) / n)
            assert abs(count / n - p) < 4 * sigma + 2e-3


class TestPosteriorBias:
    def test_amp_is_biased_in_general(self):
        # AMP approximates the conditional distribution; Example 5.1 of the
        # paper relies on the discrepancy being bounded but non-zero.  Here
        # we check AMP's density differs from the true posterior for some
        # ranking, while both are supported on the same set.
        model = Mallows(list(range(4)), 0.3)
        psi = SubRanking([3, 1, 0])
        sampler = AMPSampler(model, psi)
        consistent = [
            tau
            for tau in Ranking.all_rankings(range(4))
            if psi.is_consistent_with(tau)
        ]
        mass = sum(model.probability(tau) for tau in consistent)
        posterior = {tau: model.probability(tau) / mass for tau in consistent}
        deviations = [
            abs(sampler.probability(tau) - posterior[tau])
            for tau in consistent
        ]
        assert all(sampler.probability(tau) > 0 for tau in consistent)
        assert max(deviations) > 1e-6
