"""The array-compiled DP engines against the scalar reference (DESIGN.md 12).

Three layers of coverage:

* unit tests of the shared kernels — ``scalar_gap_segments``,
  ``sequential_sum``, ``merge_states`` — whose ordering contracts
  (first-occurrence dedup, left-to-right folds) carry the bit-identity
  guarantee;
* a hypothesis property suite generating random small instances (m <= 10,
  mixed serving / non-serving items, a phi grid including the 0 and 1
  edge weights) asserting vectorized == scalar probabilities to 1e-12 and
  identical state-count stats for all three solvers, both ``merge_gaps``
  settings, and both bipartite variants;
* regression tests for the per-chunk time-budget checks (an oversized
  instance must time out within ~2x the budget, not per-generation) and
  for the opt-in jit layer's silent NumPy fallback.
"""

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets.benchmarks import benchmark_a, benchmark_c, benchmark_d
from repro.kernels import jit as jit_module
from repro.kernels.dp import merge_states, scalar_gap_segments, sequential_sum
from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, PatternNode
from repro.patterns.union import PatternUnion
from repro.rim.mallows import Mallows
from repro.solvers.base import SolverTimeout
from repro.solvers.bipartite import bipartite_probability
from repro.solvers.lifted import lifted_probability
from repro.solvers.two_label import two_label_probability

LABELS = ("A", "B", "C")

#: Includes the degenerate weights: phi=0 puts all insertion mass on the
#: last slot (exercising the zero-weight skips), phi=1 is uniform.
PHI_GRID = (0.0, 0.1, 0.5, 1.0)


# ---------------------------------------------------------------------------
# Shared scalar kernels
# ---------------------------------------------------------------------------


def test_scalar_gap_segments_matches_prefix_differences():
    prefix = np.array([0.0, 0.1, 0.4, 0.4, 0.8, 1.0])
    # Boundaries 0 < 2 < 5: gaps (0, 2] and (2, 5].
    segments = list(scalar_gap_segments([0, 2, 5], prefix))
    assert segments == [(2, pytest.approx(0.4)), (5, pytest.approx(0.6))]


def test_scalar_gap_segments_skips_empty_and_zero_weight_gaps():
    prefix = np.array([0.0, 0.5, 0.5, 1.0])
    # Duplicate boundary (empty gap) and a zero-mass gap (2, 2] are skipped.
    segments = list(scalar_gap_segments([0, 1, 1, 2, 3], prefix))
    assert [high for high, _ in segments] == [1, 3]


def test_sequential_sum_folds_left_to_right():
    values = [1e16, 1.0, -1e16, 1.0]
    assert sequential_sum(values) == (((1e16 + 1.0) - 1e16) + 1.0)
    assert sequential_sum([], 0.25) == 0.25


def test_merge_states_first_occurrence_order_and_fold():
    keys = np.array([[3, 1], [0, 2], [3, 1], [0, 2], [5, 5]])
    masses = np.array([0.1, 0.2, 0.3, 0.4, 0.5])
    unique, probs = merge_states(keys, masses)
    assert unique.tolist() == [[3, 1], [0, 2], [5, 5]]
    assert probs.tolist() == [0.1 + 0.3, 0.2 + 0.4, 0.5]


def test_merge_states_zero_width_collapses_to_one_state():
    unique, probs = merge_states(np.zeros((4, 0), np.int64), np.ones(4) / 4)
    assert unique.shape == (1, 0)
    assert probs.tolist() == [1.0]


# ---------------------------------------------------------------------------
# Property suite: vectorized == scalar
# ---------------------------------------------------------------------------


@st.composite
def two_label_instances(draw, max_m: int = 10):
    """Random two-label-union instance with serving and non-serving items."""
    m = draw(st.integers(4, max_m))
    phi = draw(st.sampled_from(PHI_GRID))
    model = Mallows(list(range(m)), phi)
    # Empty label sets make items non-serving (gap-merge path).
    labeling = Labeling(
        {
            item: draw(st.sets(st.sampled_from(LABELS), max_size=2))
            for item in range(m)
        }
    )
    patterns = []
    for p in range(draw(st.integers(1, 3))):
        left = PatternNode(
            f"l{p}",
            frozenset(
                draw(st.sets(st.sampled_from(LABELS), min_size=1, max_size=2))
            ),
        )
        right = PatternNode(
            f"r{p}",
            frozenset(
                draw(st.sets(st.sampled_from(LABELS), min_size=1, max_size=2))
            ),
        )
        patterns.append(LabelPattern([(left, right)], nodes=[left, right]))
    return model, labeling, PatternUnion(patterns)


@st.composite
def bipartite_instances(draw, max_m: int = 10):
    """Random bipartite-union instance (complete L -> R edge sets)."""
    m = draw(st.integers(4, max_m))
    phi = draw(st.sampled_from(PHI_GRID))
    model = Mallows(list(range(m)), phi)
    labeling = Labeling(
        {
            item: draw(st.sets(st.sampled_from(LABELS), max_size=2))
            for item in range(m)
        }
    )
    patterns = []
    for p in range(draw(st.integers(1, 2))):
        lefts = [
            PatternNode(
                f"l{p}_{k}",
                frozenset(
                    draw(
                        st.sets(
                            st.sampled_from(LABELS), min_size=1, max_size=2
                        )
                    )
                ),
            )
            for k in range(draw(st.integers(1, 2)))
        ]
        rights = [
            PatternNode(
                f"r{p}_{k}",
                frozenset(
                    draw(
                        st.sets(
                            st.sampled_from(LABELS), min_size=1, max_size=2
                        )
                    )
                ),
            )
            for k in range(draw(st.integers(1, 2)))
        ]
        edges = [(u, v) for u in lefts for v in rights]
        patterns.append(LabelPattern(edges, nodes=lefts + rights))
    return model, labeling, PatternUnion(patterns)


PROPERTY_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@PROPERTY_SETTINGS
@given(two_label_instances(), st.booleans())
def test_two_label_vectorized_matches_scalar(instance, merge_gaps):
    model, labeling, union = instance
    scalar = two_label_probability(
        model, labeling, union, merge_gaps=merge_gaps, vectorized=False
    )
    vector = two_label_probability(
        model, labeling, union, merge_gaps=merge_gaps, vectorized=True
    )
    assert abs(vector.probability - scalar.probability) <= 1e-12
    assert vector.stats["peak_states"] == scalar.stats["peak_states"]
    assert vector.stats["final_states"] == scalar.stats["final_states"]


@PROPERTY_SETTINGS
@given(bipartite_instances(), st.booleans(), st.booleans())
def test_bipartite_vectorized_matches_scalar(instance, merge_gaps, pruned):
    model, labeling, union = instance
    scalar = bipartite_probability(
        model,
        labeling,
        union,
        merge_gaps=merge_gaps,
        pruned=pruned,
        vectorized=False,
    )
    vector = bipartite_probability(
        model,
        labeling,
        union,
        merge_gaps=merge_gaps,
        pruned=pruned,
        vectorized=True,
    )
    assert abs(vector.probability - scalar.probability) <= 1e-12
    assert vector.stats.get("peak_states") == scalar.stats.get("peak_states")


@PROPERTY_SETTINGS
@given(bipartite_instances(), st.booleans(), st.booleans())
def test_lifted_vectorized_matches_scalar(instance, merge_gaps, prune_dead):
    model, labeling, union = instance
    scalar = lifted_probability(
        model,
        labeling,
        union,
        merge_gaps=merge_gaps,
        prune_dead=prune_dead,
        vectorized=False,
    )
    vector = lifted_probability(
        model,
        labeling,
        union,
        merge_gaps=merge_gaps,
        prune_dead=prune_dead,
        vectorized=True,
    )
    assert abs(vector.probability - scalar.probability) <= 1e-12
    assert vector.stats.get("peak_states") == scalar.stats.get("peak_states")
    assert vector.stats.get("expansions") == scalar.stats.get("expansions")


@PROPERTY_SETTINGS
@given(bipartite_instances(max_m=8), st.booleans())
def test_lifted_column_fallback_matches_scalar(instance, merge_gaps):
    """The wide-sequence path (no packed gcode) is equally bit-faithful."""
    from repro.kernels import dp

    model, labeling, union = instance
    scalar = lifted_probability(
        model, labeling, union, merge_gaps=merge_gaps, vectorized=False
    )
    original = dp._GCODE_LIMIT
    dp._GCODE_LIMIT = 0  # force the per-slot id-column fallback
    try:
        vector = lifted_probability(
            model, labeling, union, merge_gaps=merge_gaps, vectorized=True
        )
    finally:
        dp._GCODE_LIMIT = original
    assert abs(vector.probability - scalar.probability) <= 1e-12
    assert vector.stats.get("peak_states") == scalar.stats.get("peak_states")


# ---------------------------------------------------------------------------
# Per-chunk budget checks
# ---------------------------------------------------------------------------

BUDGET = 0.4


def _oversized_two_label():
    instance = next(
        iter(
            benchmark_d(
                m_values=(44,),
                patterns_per_union=(3,),
                items_per_label=(3,),
                instances_per_combo=1,
                seed=7,
            )
        )
    )
    return lambda: two_label_probability(
        instance.model, instance.labeling, instance.union, time_budget=BUDGET
    )


def _oversized_bipartite():
    instance = next(
        iter(
            benchmark_c(
                m_values=(18,),
                patterns_per_union=(3,),
                labels_per_pattern=(3,),
                items_per_label=(3,),
                instances_per_combo=1,
                seed=7,
            )
        )
    )
    # The basic variant has no absorption/pruning: states explode fast.
    return lambda: bipartite_probability(
        instance.model,
        instance.labeling,
        instance.union,
        pruned=False,
        time_budget=BUDGET,
    )


def _oversized_lifted():
    instance = benchmark_a(
        n_unions=1, m=14, items_per_label=3, seed=20200316
    )[0]
    return lambda: lifted_probability(
        instance.model, instance.labeling, instance.union, time_budget=BUDGET
    )


@pytest.mark.parametrize(
    "make_solve",
    [_oversized_two_label, _oversized_bipartite, _oversized_lifted],
    ids=["two_label", "bipartite_basic", "lifted"],
)
def test_oversized_instance_times_out_within_twice_budget(make_solve):
    """One generation can dwarf the budget; chunk checks must still fire."""
    solve = make_solve()
    started = time.perf_counter()
    with pytest.raises(SolverTimeout):
        solve()
    elapsed = time.perf_counter() - started
    assert elapsed <= 2.0 * BUDGET


# ---------------------------------------------------------------------------
# JIT layer: opt-in, silent fallback
# ---------------------------------------------------------------------------


def test_jit_disabled_by_default(monkeypatch):
    monkeypatch.delenv(jit_module.JIT_ENV, raising=False)
    assert not jit_module.jit_requested()
    assert not jit_module.jit_enabled()
    assert jit_module.maybe_segment_fold(
        np.ones(3), np.array([0]), np.array([3])
    ) is None


def test_jit_request_without_numba_falls_back_silently(monkeypatch):
    """REPRO_JIT=1 on a numba-less interpreter must not change results."""
    monkeypatch.setenv(jit_module.JIT_ENV, "1")
    assert jit_module.jit_requested()
    enabled = jit_module.jit_enabled()
    assert enabled == jit_module.jit_available()
    # Whether or not numba is importable, the solver path stays correct.
    model = Mallows(list(range(6)), 0.5)
    labeling = Labeling({i: {"A"} if i % 2 else {"B"} for i in range(6)})
    left = PatternNode("l", frozenset({"A"}))
    right = PatternNode("r", frozenset({"B"}))
    union = PatternUnion([LabelPattern([(left, right)])])
    scalar = two_label_probability(
        model, labeling, union, vectorized=False
    )
    vector = two_label_probability(model, labeling, union, vectorized=True)
    assert vector.probability == scalar.probability
