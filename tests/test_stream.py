"""Streaming sessions: delta semantics, targeted invalidation, standing
queries (DESIGN.md Section 15).

The load-bearing contract is bit-identity: after any seeded sequence of
adds/updates/expirations, every materialized standing answer must equal
a from-scratch ``answer()`` on the mutated database exactly — same kind,
same principal value, same per-session probabilities — for all four
request kinds, with and without a sharded cache tier beneath the engine.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import answer, answer_many
from repro.db.database import PPDatabase
from repro.db.mutable import MutablePPDatabase, SessionDelta
from repro.db.schema import ORelation, PRelation
from repro.rankings.permutation import Ranking
from repro.rim.mallows import Mallows
from repro.server.app import ServerApp
from repro.server.config import ServerConfig
from repro.service.cache import SolverCache
from repro.service.persist import PersistentSolverCache, encode_key
from repro.service.shard import (
    ShardCacheServer,
    ShardClient,
    ShardedSolverCache,
    ShardProtocolError,
)
from repro.stream import (
    StandingQueryEngine,
    TrafficReplayer,
    answers_equal,
)

pytestmark = pytest.mark.timeout(120)

ITEMS = [1, 2, 3, 4]


def model(phi: float, center: "list[int] | None" = None) -> Mallows:
    return Mallows(Ranking(center if center is not None else ITEMS), phi)


def make_db(n_sessions: int = 3) -> MutablePPDatabase:
    movies = ORelation(
        "M",
        ["id", "genre", "duration"],
        [
            (1, "Thriller", "long"),
            (2, "Drama", "short"),
            (3, "Drama", "long"),
            (4, "Comedy", "short"),
        ],
    )
    sessions = {
        (f"w{index}",): model(0.3 + 0.1 * index)
        for index in range(n_sessions)
    }
    return MutablePPDatabase(
        orelations=[movies],
        prelations=[PRelation("P", ["worker"], sessions)],
    )


QUERY = "P(w; m1; m2), M(m1, 'Thriller', _), M(m2, _, 'short')"


# ----------------------------------------------------------------------
# The mutable database
# ----------------------------------------------------------------------


class TestMutableDatabase:
    def test_generation_counts_mutations(self):
        db = make_db()
        assert db.generation == 0
        first = db.add_session("P", ("w9",), model(0.5))
        assert (first.generation, first.kind) == (1, "add")
        second = db.update_session("P", "w9", model(0.6))
        assert (second.generation, second.kind) == (2, "update")
        third = db.expire_session("P", ("w9",))
        assert (third.generation, third.kind, third.model) == (
            3, "expire", None,
        )
        assert db.generation == 3
        assert all(
            delta.relation == "P" and delta.key == ("w9",)
            for delta in (first, second, third)
        )

    def test_subscribers_see_deltas_in_order(self):
        db = make_db()
        seen: list[SessionDelta] = []
        unsubscribe = db.subscribe(seen.append)
        db.add_session("P", ("w9",), model(0.5))
        db.expire_session("P", ("w9",))
        assert [delta.generation for delta in seen] == [1, 2]
        unsubscribe()
        db.add_session("P", ("w9",), model(0.5))
        assert len(seen) == 2

    def test_from_database_wraps_static_instance(self):
        static = make_db(2).snapshot()
        assert isinstance(static, PPDatabase)
        db = MutablePPDatabase.from_database(static)
        assert db.generation == 0
        db.update_session("P", ("w0",), model(0.9))
        # The wrapped source is untouched.
        assert static.prelation("P").model_of(("w0",)).phi != 0.9

    def test_snapshot_is_frozen(self):
        db = make_db(2)
        frozen = db.snapshot()
        db.add_session("P", ("w9",), model(0.5))
        db.update_session("P", ("w0",), model(0.9))
        assert ("w9",) not in list(frozen.prelation("P").session_keys())
        assert frozen.prelation("P").model_of(("w0",)).phi != 0.9

    def test_add_existing_rejected(self):
        db = make_db()
        with pytest.raises(ValueError, match="use update_session"):
            db.add_session("P", ("w0",), model(0.5))

    def test_update_missing_rejected(self):
        db = make_db()
        with pytest.raises(KeyError, match="no session"):
            db.update_session("P", ("nobody",), model(0.5))

    def test_expire_missing_and_last_rejected(self):
        db = make_db(1)
        with pytest.raises(KeyError, match="no session"):
            db.expire_session("P", ("nobody",))
        with pytest.raises(ValueError, match="at least one session"):
            db.expire_session("P", ("w0",))

    def test_universe_mismatch_rejected(self):
        db = make_db()
        with pytest.raises(ValueError, match="different item universe"):
            db.add_session("P", ("w9",), model(0.5, center=[1, 2, 3]))

    def test_bad_key_arity_rejected(self):
        db = make_db()
        with pytest.raises(ValueError, match="does not match columns"):
            db.add_session("P", ("a", "b"), model(0.5))

    def test_failed_mutation_emits_nothing(self):
        db = make_db()
        seen: list[SessionDelta] = []
        db.subscribe(seen.append)
        with pytest.raises(ValueError):
            db.add_session("P", ("w0",), model(0.5))
        assert seen == [] and db.generation == 0


# ----------------------------------------------------------------------
# Targeted invalidation, tier by tier
# ----------------------------------------------------------------------


class TestInvalidate:
    def test_solver_cache_drops_exactly_the_keys(self):
        cache = SolverCache(capacity=8)
        cache.put_many([("a", 1), ("b", 2), ("c", 3)])
        assert cache.invalidate(["a", "c", "ghost"]) == 2
        assert cache.get("a") is None and cache.get("b") == 2
        stats = cache.stats()
        assert stats.invalidations == 2 and stats.size == 1

    def test_persistent_cache_drops_from_disk(self, tmp_path):
        path = tmp_path / "cache.sqlite"
        cache = PersistentSolverCache(capacity=8, db_path=path)
        cache.put_many([("a", (0.25, "lifted")), ("b", (0.5, "lifted"))])
        assert cache.invalidate(["a"]) == 1
        assert cache.persistent.stats()["disk_invalidations"] == 1
        cache.close()
        # A cold restart over the same file must not resurrect the key.
        reopened = PersistentSolverCache(capacity=8, db_path=path)
        assert reopened.get("a") is None
        assert reopened.get("b") == (0.5, "lifted")
        reopened.close()

    def test_sharded_cache_drops_across_shards(self):
        cache = ShardedSolverCache(capacity=8, n_shards=2)
        cache.put_many([("a", (0.25, "lifted")), ("b", (0.5, "lifted"))])
        assert cache.invalidate(["a", "b"]) == 2
        assert cache.get("a") is None and cache.get("b") is None
        assert cache.tier_stats()["shard_invalidations"] == 2
        cache.close()

    def test_shard_protocol_invalidate(self):
        with ShardCacheServer(n_shards=2, capacity=8) as server:
            client = ShardClient(server.address)
            keys = [encode_key(("k", index)) for index in range(3)]
            client.put_many([(key, (0.5, "s")) for key in keys])
            assert client.invalidate(keys[:2]) == 2
            assert client.get(keys[0]) is None
            assert client.get(keys[2]) == (0.5, "s")
            assert client.stats()["totals"]["invalidations"] == 2
            client.close()

    def test_shard_protocol_rejects_malformed_invalidate(self):
        with ShardCacheServer(n_shards=1, capacity=8) as server:
            client = ShardClient(server.address)
            with pytest.raises(ShardProtocolError, match="encoded TEXT"):
                client.invalidate([("not", "text")])  # type: ignore[list-item]
            # The connection survives the protocol error.
            client.put_many([("k", (0.5, "s"))])
            assert client.get("k") == (0.5, "s")
            client.close()


# ----------------------------------------------------------------------
# Generation stamps on answers
# ----------------------------------------------------------------------


class TestGenerationStamp:
    def test_static_database_has_no_generation(self):
        static = make_db().snapshot()
        assert answer(QUERY, static).generation is None

    def test_answers_carry_the_generation(self):
        db = make_db()
        assert answer(QUERY, db).generation == 0
        db.update_session("P", ("w0",), model(0.9))
        assert answer(QUERY, db).generation == 1

    def test_batch_answers_carry_the_generation(self):
        db = make_db()
        db.add_session("P", ("w9",), model(0.5))
        batch = answer_many([QUERY, f"COUNT {QUERY}"], db)
        assert batch.generation == 1
        assert [a.generation for a in batch.answers] == [1, 1]


# ----------------------------------------------------------------------
# The standing-query engine
# ----------------------------------------------------------------------


class TestStandingEngine:
    @pytest.mark.parametrize("n_shards", [None, 2])
    def test_bit_identical_across_seeded_traffic(self, n_shards):
        """All four request kinds stay bit-identical to a from-scratch
        evaluation through a seeded add/update/expire sequence."""
        replayer = TrafficReplayer(
            n_active=8, n_pool=3, n_movies=6, seed=11
        )
        cache = (
            ShardedSolverCache(capacity=512, n_shards=n_shards)
            if n_shards is not None
            else SolverCache(capacity=512)
        )
        engine = StandingQueryEngine(
            replayer.db, cache=cache, auto_refresh=False
        )
        registered = [
            engine.register(text)
            for text in replayer.standing_requests(4)
        ]
        kinds = {standing.answer.kind for standing in registered}
        assert len(kinds) == 4  # probability, count, top-k, aggregate
        for _ in range(3):
            replayer.step()
            engine.refresh()
            frozen = replayer.db.snapshot()
            for standing in registered:
                reference = answer(
                    standing.request, frozen, method=standing.method
                )
                assert answers_equal(standing.answer, reference), (
                    f"standing query {standing.query_id} diverged at "
                    f"generation {replayer.db.generation}"
                )
                assert standing.answer.generation == replayer.db.generation
        engine.close()
        if n_shards is not None:
            cache.close()

    def test_auto_refresh_tracks_mutations(self):
        db = make_db()
        engine = StandingQueryEngine(db)
        standing = engine.register(QUERY)
        before = standing.value
        db.update_session("P", ("w0",), model(0.95))
        # No explicit refresh: the subscription re-materialized it.
        assert standing.generation == 1
        assert not standing.stale
        assert answers_equal(standing.answer, answer(QUERY, db))
        assert standing.value != before
        engine.close()

    def test_untouched_queries_skip_recomputation(self):
        db = make_db()
        engine = StandingQueryEngine(db, auto_refresh=False)
        standing = engine.register(QUERY)
        cold = standing.n_refreshes
        db.update_session("P", ("w1",), model(0.95))
        assert standing.stale
        assert engine.stats()["max_staleness"] == 1
        refreshed = engine.refresh()
        assert refreshed == [standing]
        assert standing.n_refreshes == cold + 1
        # A second refresh with no new deltas recomputes nothing.
        assert engine.refresh() == []
        assert engine.stats()["max_staleness"] == 0
        engine.close()

    def test_update_retires_the_previous_key(self):
        db = make_db()
        cache = SolverCache()
        engine = StandingQueryEngine(db, cache=cache, auto_refresh=False)
        standing = engine.register(QUERY)
        db.update_session("P", ("w0",), model(0.95))
        engine.refresh()
        assert standing.n_invalidations >= 1
        assert cache.stats().invalidations >= 1
        assert engine.stats()["invalidations_applied"] >= 1
        engine.close()

    def test_deregister_drops_only_exclusive_keys(self):
        db = make_db()
        cache = SolverCache()
        engine = StandingQueryEngine(db, cache=cache, auto_refresh=False)
        first = engine.register(QUERY)
        second = engine.register(f"COUNT {QUERY}")
        # Both kinds share the same canonical solves: nothing to drop.
        assert engine.deregister(first.query_id) == 0
        assert engine.deregister(second.query_id) > 0
        assert engine.stats()["count"] == 0
        with pytest.raises(KeyError):
            engine.deregister(first.query_id)
        engine.close()

    def test_rejects_approximate_methods(self):
        db = make_db()
        with pytest.raises(ValueError, match="cacheable"):
            StandingQueryEngine(db, method="rejection")
        engine = StandingQueryEngine(db, auto_refresh=False)
        with pytest.raises(ValueError, match="cacheable"):
            engine.register(QUERY, method="mis_amp_lite")
        engine.close()

    def test_closed_engine_ignores_deltas(self):
        db = make_db()
        engine = StandingQueryEngine(db)
        standing = engine.register(QUERY)
        engine.close()
        db.update_session("P", ("w0",), model(0.95))
        assert standing.generation == 0 and not standing.stale


# ----------------------------------------------------------------------
# The replayer
# ----------------------------------------------------------------------


class TestTrafficReplayer:
    def test_same_seed_same_traffic(self):
        schedules = []
        for _ in range(2):
            replayer = TrafficReplayer(
                n_active=6, n_pool=3, n_movies=5, seed=42
            )
            deltas = [d for step in replayer.run(4) for d in step]
            schedules.append(
                [(d.generation, d.kind, d.key) for d in deltas]
            )
        assert schedules[0] == schedules[1]

    def test_step_respects_schedule_counts(self):
        replayer = TrafficReplayer(
            n_active=6, n_pool=2, n_movies=5,
            arrivals=1, updates=2, expirations=1, seed=5,
        )
        kinds = [d.kind for d in replayer.step()]
        assert kinds.count("add") == 1
        assert kinds.count("update") == 2
        assert kinds.count("expire") == 1

    def test_relation_never_drains(self):
        replayer = TrafficReplayer(
            n_active=2, n_pool=0, n_movies=4,
            arrivals=0, updates=0, expirations=5, seed=1,
        )
        replayer.run(6)
        assert len(list(replayer.db.prelation("P").session_keys())) >= 2

    def test_standing_requests_cycle_all_kinds(self):
        replayer = TrafficReplayer(n_active=2, n_movies=4, seed=0)
        requests = replayer.standing_requests(4)
        assert len(requests) == 4
        assert requests[1].startswith("COUNT ")
        assert requests[2].startswith("TOPK 3 ")
        assert requests[3].startswith("AGG mean(V.age) ")


# ----------------------------------------------------------------------
# The server gauge and the CLI
# ----------------------------------------------------------------------


class TestObservability:
    def test_server_stats_gains_standing_queries_gauge(self):
        db = make_db()
        engine = StandingQueryEngine(db, auto_refresh=False)
        engine.register(QUERY)
        app = ServerApp(
            ServerConfig(dataset="polls", backend="serial", port=0),
            stream=engine,
        )
        try:
            db.update_session("P", ("w0",), model(0.9))
            stats = app.handle_stats()
            gauge = stats["standing_queries"]
            assert gauge["count"] == 1
            assert gauge["generation"] == 1
            assert gauge["max_staleness"] == 1
            assert gauge["refreshes"] == 1
            assert "invalidations_applied" in gauge
        finally:
            asyncio.run(app.shutdown())
            engine.close()

    def test_server_without_stream_has_no_gauge(self):
        app = ServerApp(
            ServerConfig(dataset="polls", backend="serial", port=0)
        )
        try:
            assert "standing_queries" not in app.handle_stats()
        finally:
            asyncio.run(app.shutdown())


class TestReplayCLI:
    def test_replay_verifies_bit_identity(self, capsys):
        from repro.__main__ import main

        assert main([
            "replay", "--steps", "2", "--sessions", "8", "--pool", "3",
            "--movies", "5", "--queries", "4", "--verify", "--seed", "3",
        ]) == 0
        output = capsys.readouterr().out
        assert "fresh_solves" in output
        assert "bit-identical" in output

    def test_replay_with_shards(self, capsys):
        from repro.__main__ import main

        assert main([
            "replay", "--steps", "1", "--sessions", "6", "--pool", "2",
            "--movies", "5", "--queries", "2", "--shards", "2",
            "--seed", "3",
        ]) == 0
        assert "steady state" in capsys.readouterr().out

    def test_replay_rejects_bad_arguments(self, capsys):
        from repro.__main__ import main

        assert main(["replay", "--steps", "0"]) == 2
        assert main([
            "replay", "--steps", "1", "--method", "rejection",
        ]) == 2
        assert "cacheable" in capsys.readouterr().err
