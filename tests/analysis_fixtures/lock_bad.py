# module: repro.server.fake_metrics
"""Fixture: unlocked counter write + blocking sleep in an async body."""

import threading
import time


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        self.hits += 1


async def poll():
    time.sleep(0.1)
    return True
