# module: repro.fake.kernel
# test-imports: repro.fake.kernel
"""Fixture: vectorized= routes to a scalar branch; module test-imported."""


def _solve_scalar(table):
    total = 0.0
    for row in table:
        total += row
    return total


def _solve_vectorized(table):
    return sum(table)


def solve(table, vectorized=True):
    if vectorized:
        return _solve_vectorized(table)
    return _solve_scalar(table)


def delegate(table, vectorized=True):
    return solve(table, vectorized=vectorized)
