# module: repro.fake.bench
"""Fixture: docstring cites a stale value for the module constant.

Each repetition runs under a 5-second cap (``TIME_BUDGET``), mirroring
the bench_fig06 drift this rule exists to catch.
"""

TIME_BUDGET = 3.0
