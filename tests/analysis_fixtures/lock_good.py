# module: repro.server.fake_metrics
"""Fixture: writes under the lock; blocking work stays in sync helpers."""

import asyncio
import threading
import time


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        with self._lock:
            self.hits += 1

    def snapshot(self):
        with self._lock:
            return self.hits


def _blocking_wait():
    time.sleep(0.1)


async def poll():
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, _blocking_wait)
    return True
