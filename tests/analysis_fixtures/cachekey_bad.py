# module: repro.fake.keys
"""Fixture: plan-level options and float keys leak into cache keys."""


def freeze(value):
    return value


def solve_cache_key(model, query, **options):
    return (model, query, tuple(sorted(options.items())))


def build(model, query, budget):
    key = solve_cache_key(model, query, approx_budget=budget)
    frozen = freeze({"optimize": True})
    fragile = freeze({0.5: "half"})
    return key, frozen, fragile
