# module: repro.server.fake_http
"""Fixture: ad-hoc json.dumps on a server path (wire-purity must flag)."""

import json


def render(payload):
    return json.dumps(payload).encode("utf-8")
