# module: repro.fake.sampler
"""Fixture: global-random-state draws (rng-discipline must flag all three)."""

import numpy as np
from random import choice


def sample(n):
    np.random.seed(0)
    values = np.random.rand(n)
    return values, choice([1, 2, 3])
