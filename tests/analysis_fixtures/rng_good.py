# module: repro.fake.sampler
"""Fixture: explicit seeded Generator threading (rng-discipline clean)."""

import numpy as np


def sample(n, rng=None):
    rng = np.random.default_rng(0) if rng is None else rng
    return rng.random(n)


def entry(seed):
    return sample(4, rng=np.random.default_rng(seed))
