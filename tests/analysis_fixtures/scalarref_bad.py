# module: repro.fake.kernel
"""Fixture: vectorized= accepted but never routed; module untested."""


def solve(table, vectorized=True):
    total = 0.0
    for row in table:
        total += row
    return total
