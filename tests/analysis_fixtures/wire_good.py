# module: repro.server.protocol
"""Fixture: json.dumps is fine inside repro.server.protocol itself."""

import json


def jsonable(payload):
    return payload


def render(payload):
    return json.dumps(jsonable(payload)).encode("utf-8")
