# module: repro.fake.bench
"""Fixture: docstring numbers match the constant they cite.

Each repetition runs under a 3-second cap (``TIME_BUDGET``); see
Section 6.2 of the paper and Figure 6 for the measured curves.
"""

TIME_BUDGET = 3.0
