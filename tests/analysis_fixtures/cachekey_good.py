# module: repro.fake.keys
"""Fixture: plan-level options popped before key construction (clean)."""


def freeze(value):
    return value


def solve_cache_key(model, query, options):
    return (model, query, freeze(options))


def build(model, query, options):
    options = dict(options)
    options.pop("approx_budget", None)
    options.pop("optimize", None)
    return solve_cache_key(model, query, options)
