"""Tests for the ease-heuristic upper bounds (Sections 3.2 / 4.3.2)."""

import math

import pytest

from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, node
from repro.patterns.union import PatternUnion
from repro.rankings.permutation import Ranking
from repro.rim.mallows import Mallows
from repro.solvers.brute import brute_force_probability
from repro.solvers.upper_bound import (
    ease,
    upper_bound_probability,
    upper_bound_union,
)
from tests.conftest import random_instance


class TestEase:
    def test_definition(self):
        # ease(l, r | sigma) = beta(r | sigma) - alpha(l | sigma)
        sigma = Ranking(["a", "b", "c", "d"])
        labeling = Labeling({"a": {"L"}, "c": {"L"}, "b": {"R"}, "d": {"R"}})
        value = ease(node("u", "L"), node("v", "R"), sigma, labeling)
        assert value == 4 - 1  # beta(R)=4 (item d), alpha(L)=1 (item a)

    def test_unserved_label_is_hardest(self):
        sigma = Ranking(["a"])
        labeling = Labeling({"a": {"L"}})
        assert ease(node("u", "L"), node("v", "Z"), sigma, labeling) == -math.inf


class TestRelaxedUnion:
    def test_one_edge_yields_two_label(self):
        chain = LabelPattern(
            [(node("a", "A"), node("b", "B")), (node("b", "B"), node("c", "C"))]
        )
        sigma = Ranking([0, 1, 2])
        labeling = Labeling({0: {"A"}, 1: {"B"}, 2: {"C"}})
        relaxed = upper_bound_union(chain, sigma, labeling, n_edges=1)
        assert relaxed.is_two_label()

    def test_multi_edge_yields_bipartite(self):
        chain = LabelPattern(
            [(node("a", "A"), node("b", "B")), (node("b", "B"), node("c", "C"))]
        )
        sigma = Ranking([0, 1, 2])
        labeling = Labeling({0: {"A"}, 1: {"B"}, 2: {"C"}})
        relaxed = upper_bound_union(chain, sigma, labeling, n_edges=2)
        assert relaxed.is_bipartite()
        # A middle node of the chain appears in both roles, split into
        # L- and R-copies.
        names = {n.name for p in relaxed for n in p.nodes}
        assert any(name.endswith("^L") for name in names)
        assert any(name.endswith("^R") for name in names)

    def test_invalid_n_edges(self):
        with pytest.raises(ValueError):
            upper_bound_union(
                LabelPattern([(node("a", "A"), node("b", "B"))]),
                Ranking([0]),
                Labeling({0: {"A"}}),
                n_edges=0,
            )


class TestDominance:
    def test_upper_bound_dominates_exact(self, pyrng):
        # The central invariant: Pr(G') >= Pr(G) for every instance and
        # every number of selected edges.
        for _ in range(40):
            model, labeling, union = random_instance(pyrng, m_choices=(4, 5))
            exact = brute_force_probability(model, labeling, union).probability
            for n_edges in (1, 2):
                bound = upper_bound_probability(
                    model, labeling, union, n_edges=n_edges
                ).probability
                assert bound >= exact - 1e-9

    def test_more_edges_tighter(self, pyrng):
        # More selected constraints can only lower (tighten) the bound.
        for _ in range(25):
            model, labeling, union = random_instance(pyrng, m_choices=(4, 5))
            one = upper_bound_probability(model, labeling, union, n_edges=1)
            two = upper_bound_probability(model, labeling, union, n_edges=2)
            assert two.probability <= one.probability + 1e-9

    def test_example_4_4_gap(self):
        # The paper's Example 4.4: a ranking can satisfy the Min/Max
        # constraints of a chain without satisfying the chain, so the bound
        # can be strictly larger than the exact probability.
        labeling = Labeling(
            {"a": {"la"}, "b1": {"lb"}, "b2": {"lb"}, "c": {"lc"}}
        )
        chain = LabelPattern(
            [
                (node("na", "la"), node("nb", "lb")),
                (node("nb", "lb"), node("nc", "lc")),
            ]
        )
        model = Mallows(["b1", "a", "c", "b2"], 0.0)  # point mass
        exact = brute_force_probability(model, labeling, chain).probability
        bound = upper_bound_probability(
            model, labeling, PatternUnion([chain]), n_edges=3
        ).probability
        assert exact == 0.0
        assert bound == 1.0
