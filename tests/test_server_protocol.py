"""The wire protocol and the request-grammar round trip.

Satellite coverage for the serving front-end: property-based
(`hypothesis`) round-tripping of every request kind through the string
grammar — ``request.describe()`` must parse back equal — plus anchored
caret excerpts on mutated invalid inputs, and unit coverage of the JSON
protocol layer (typed/string decode, options validation including the
auto-approx 400, JSON-safe encoding).
"""

from __future__ import annotations

import json
import string

import pytest

from repro.api.answer import Answer, BatchAnswer
from repro.api.requests import (
    AGGREGATE_STATISTICS,
    Aggregate,
    Count,
    Probability,
    TopK,
    parse_request,
)
from repro.query.ast import (
    COMPARISON_OPS,
    Comparison,
    ConjunctiveQuery,
    Constant,
    OAtom,
    PAtom,
    Variable,
    WILDCARD,
)
from repro.query.parser import QuerySyntaxError, caret_excerpt
from repro.server.protocol import (
    ProtocolError,
    decode_batch,
    decode_request,
    encode_answer,
    jsonable,
    validate_options,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

# ----------------------------------------------------------------------
# Strategies: arbitrary well-formed requests
# ----------------------------------------------------------------------

NAMES = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,7}", fullmatch=True)

# Strings avoid quote characters so their repr stays single-quoted; floats
# are halves, which render and re-parse exactly.
SAFE_TEXT = st.text(
    alphabet=string.ascii_letters + string.digits + " _-", max_size=8
)
CONST_VALUES = st.one_of(
    SAFE_TEXT,
    st.integers(-999, 999),
    st.integers(-40, 40).map(lambda n: n / 2.0),
)

TERMS = st.one_of(
    st.just(WILDCARD),
    NAMES.map(Variable),
    CONST_VALUES.map(Constant),
)

P_ATOMS = st.builds(
    PAtom,
    relation=NAMES,
    session_terms=st.lists(TERMS, min_size=1, max_size=3).map(tuple),
    left=TERMS,
    right=TERMS,
)
O_ATOMS = st.builds(
    OAtom,
    relation=NAMES,
    terms=st.lists(TERMS, min_size=1, max_size=3).map(tuple),
)
COMPARISONS = st.builds(
    Comparison,
    variable=NAMES.map(Variable),
    op=st.sampled_from(COMPARISON_OPS),
    value=CONST_VALUES,
)

QUERIES = st.builds(
    ConjunctiveQuery,
    p_atoms=st.lists(P_ATOMS, min_size=1, max_size=3).map(tuple),
    o_atoms=st.lists(O_ATOMS, min_size=0, max_size=2).map(tuple),
    comparisons=st.lists(COMPARISONS, min_size=0, max_size=2).map(tuple),
)

# The grammar renders only the default top-k strategy/n_edges and the
# default aggregate n_worlds, so the round-trippable space fixes those.
REQUESTS = st.one_of(
    QUERIES.map(Probability),
    QUERIES.map(Count),
    st.builds(TopK, QUERIES, k=st.integers(1, 9)),
    st.builds(
        Aggregate,
        QUERIES,
        relation=NAMES,
        column=NAMES,
        statistic=st.sampled_from(AGGREGATE_STATISTICS),
    ),
)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(REQUESTS)
    def test_describe_parses_back_equal(self, request):
        text = request.describe()
        parsed = parse_request(text)
        assert parsed == request
        assert parsed.kind == request.kind
        # Idempotence: the rendered form is a fixed point of the grammar.
        assert parsed.describe() == text

    @settings(max_examples=100, deadline=None)
    @given(REQUESTS)
    def test_double_round_trip_of_typed_fields(self, request):
        parsed = parse_request(request.describe())
        if isinstance(request, TopK):
            assert parsed.k == request.k
        if isinstance(request, Aggregate):
            assert (parsed.relation, parsed.column, parsed.statistic) == (
                request.relation,
                request.column,
                request.statistic,
            )


# ----------------------------------------------------------------------
# Mutated invalid inputs: the caret lands on the mutation
# ----------------------------------------------------------------------


def _insertion_points(text: str) -> list[int]:
    """Positions where an illegal character must error exactly there.

    Inserting ``§`` mid-token (inside a number or a quoted string) shifts
    or swallows the error, so candidates sit right after a separator, in
    the query tail (``Q() <-`` onward — the COUNT/TOPK/AGG prefix regexes
    anchor their own errors elsewhere), and outside quoted spans.
    """
    head = text.index("Q() <-")
    points, in_quote = [], False
    for index, char in enumerate(text):
        if char == "'":
            in_quote = not in_quote
            continue
        if in_quote:
            continue
        if index + 1 >= head and char in " ,;()":
            points.append(index + 1)
    return points


class TestMutationCarets:
    @settings(max_examples=150, deadline=None)
    @given(REQUESTS, st.data())
    def test_error_offset_and_caret_anchor_the_mutation(self, request, data):
        text = request.describe()
        position = data.draw(st.sampled_from(_insertion_points(text)))
        mutated = text[:position] + "§" + text[position:]
        with pytest.raises(QuerySyntaxError) as caught:
            parse_request(mutated)
        error = caught.value
        assert error.offset == position
        assert error.source == mutated
        # The caret in the rendered excerpt sits under the mutated char.
        line, caret = caret_excerpt(error.source, error.offset).splitlines()
        column = caret.index("^")
        assert line[column] == "§"
        # The full rendered message carries the excerpt.
        assert "^" in str(error)

    def test_known_prefix_error_positions(self):
        with pytest.raises(QuerySyntaxError) as caught:
            parse_request("TOPK x P(_; 'a'; 'b')")
        assert caught.value.offset == len("TOPK ")
        with pytest.raises(QuerySyntaxError) as caught:
            parse_request("AGG median(V.age) P(_; 'a'; 'b')")
        assert "unsupported statistic" in str(caught.value)


# ----------------------------------------------------------------------
# The JSON protocol layer
# ----------------------------------------------------------------------


class TestDecodeRequest:
    def test_string_form(self):
        request, options = decode_request(
            {"request": "COUNT P(_; 'a'; 'b')", "method": "two_label"}
        )
        assert isinstance(request, Count)
        assert options == {"method": "two_label"}

    def test_bare_string(self):
        request, options = decode_request("TOPK 3 P(_; 'a'; 'b')")
        assert isinstance(request, TopK) and request.k == 3
        assert options == {}

    def test_typed_form(self):
        request, _ = decode_request(
            {
                "kind": "aggregate",
                "query": "P(v; 'a'; 'b')",
                "relation": "V",
                "column": "age",
                "statistic": "sum",
                "n_worlds": 500,
            }
        )
        assert isinstance(request, Aggregate)
        assert request.statistic == "sum" and request.n_worlds == 500

    def test_typed_topk_fields(self):
        request, _ = decode_request(
            {"kind": "top_k", "query": "P(_; 'a'; 'b')", "k": 4,
             "strategy": "naive"}
        )
        assert request.k == 4 and request.strategy == "naive"

    @pytest.mark.parametrize(
        "body",
        [
            17,
            ["P(_; 'a'; 'b')"],
            {},
            {"kind": "median", "query": "P(_; 'a'; 'b')"},
            {"kind": "count"},
            {"request": 42},
            {"kind": "top_k", "query": "P(_; 'a'; 'b')", "k": 0},
        ],
    )
    def test_malformed_bodies(self, body):
        with pytest.raises(ProtocolError):
            decode_request(body)

    def test_syntax_error_keeps_caret(self):
        with pytest.raises(ProtocolError) as caught:
            decode_request({"request": "P(v; 'a' 'b')"})
        assert "^" in str(caught.value)
        assert caught.value.status == 400


class TestValidateOptions:
    def test_auto_approx_without_budget_is_rejected(self):
        with pytest.raises(ProtocolError) as caught:
            validate_options({"method": "auto-approx"})
        assert "approx_budget" in str(caught.value)
        assert caught.value.status == 400

    def test_auto_approx_with_budget_passes(self):
        options = validate_options(
            {"method": "auto-approx", "approx_budget": 1e6}
        )
        assert options["approx_budget"] == 1e6

    @pytest.mark.parametrize(
        "options",
        [
            {"method": "magic"},
            {"approx_budget": -1},
            {"approx_budget": "many"},
            {"session_limit": 0},
            {"session_limit": 2.5},
            {"session_limit": True},
        ],
    )
    def test_bad_options(self, options):
        with pytest.raises(ProtocolError):
            validate_options(options)


class TestDecodeBatch:
    def test_mixed_forms(self):
        requests, options = decode_batch(
            {
                "requests": [
                    "P(_; 'a'; 'b')",
                    {"request": "COUNT P(_; 'a'; 'b')"},
                    {"kind": "top_k", "query": "P(_; 'a'; 'b')", "k": 2},
                ],
                "method": "auto",
            }
        )
        assert [request.kind for request in requests] == [
            "probability", "count", "top_k",
        ]
        assert options == {"method": "auto"}

    def test_item_errors_are_indexed(self):
        with pytest.raises(ProtocolError) as caught:
            decode_batch({"requests": ["P(_; 'a'; 'b')", "P(v; §"]})
        assert "requests[1]" in str(caught.value)

    def test_per_item_options_rejected(self):
        with pytest.raises(ProtocolError) as caught:
            decode_batch(
                {"requests": [{"request": "P(_; 'a'; 'b')",
                               "method": "two_label"}]}
            )
        assert "batch level" in str(caught.value)

    @pytest.mark.parametrize("body", [None, {}, {"requests": []},
                                      {"requests": "P(_; 'a'; 'b')"}])
    def test_malformed_batches(self, body):
        with pytest.raises(ProtocolError):
            decode_batch(body)


class TestEncoding:
    def test_jsonable_handles_numpy_and_tuples(self):
        np = pytest.importorskip("numpy")
        value = {
            "ranking": [(("Ann", "5/5"), np.float64(0.25))],
            "n": np.int64(3),
            "labels": frozenset({"A", "B"}),
        }
        encoded = jsonable(value)
        assert json.loads(json.dumps(encoded)) == {
            "ranking": [[["Ann", "5/5"], 0.25]],
            "n": 3,
            "labels": ["A", "B"],
        }

    def test_encode_answer_round_trips_through_json(self):
        answer = Answer(
            request=Count("P(_; 'a'; 'b')"),
            kind="count",
            value=1.5,
            methods=("two_label",),
            requested_method="auto",
            n_sessions=3,
            seconds=0.01,
            stats={"n_solver_calls": 2},
        )
        encoded = encode_answer(answer)
        assert json.loads(json.dumps(encoded))["value"] == 1.5
        assert encoded["request"].startswith("COUNT ")
        assert encoded["methods"] == ["two_label"]

    def test_batch_answer_carries_plan_counters(self):
        batch = BatchAnswer(
            answers=[], n_requests=0, n_sessions=0, n_distinct_solves=0,
            n_cache_hits=0, seconds=0.0,
        )
        assert batch.n_solves_planned == 0
        assert batch.n_solves_eliminated == 0
