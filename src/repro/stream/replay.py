"""Synthetic session traffic: seeded arrival/update/expiry schedules.

The replayer turns the CrowdRank-style corpus (:mod:`repro.datasets
.crowdrank`) into *live* traffic for the streaming layer: a seeded
schedule of sessions arriving (a pooled worker starts ranking), updating
(a worker's preference model drifts — re-assigned to another mixture
component, or replaced by a freshly drawn Mallows model), and expiring
(the worker leaves; their demographic row stays, so they can re-arrive
later).  Polls traffic has the same shape — sessions are ``(voter,
date)`` ballots arriving by date — so one generator covers both corpora
by schema convention: ``M`` (items), ``V`` (demographics for the whole
worker pool, arrivals included), ``P`` (the live sessions).

Everything is deterministic given ``seed``: the same replayer replays
the same deltas, which is what lets the benchmark assert bit-identical
materialized answers at every generation against a from-scratch
re-evaluation.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.datasets.crowdrank import AGES, DURATIONS, GENRES, SEXES
from repro.db.mutable import MutablePPDatabase, SessionDelta
from repro.db.schema import ORelation, PRelation, SessionKey
from repro.rankings.permutation import Ranking
from repro.rim.mallows import Mallows

#: Request-kind prefixes cycled by :meth:`TrafficReplayer.standing_requests`
#: — all four kinds of the unified grammar ride the same query families.
_KIND_PREFIXES = ("", "COUNT ", "TOPK {k} ", "AGG mean(V.age) ")

#: Overlapping CrowdRank-style query families (the ``batch_queries``
#: shape): near-identical standing queries whose solves collide across
#: registrations — the workload cross-query caching exists for.
_TEMPLATES = (
    "P(v; m1; m2), M(m1, '{genre}', _, _, _), M(m2, _, _, _, '{duration}')",
    "P(v; m1; m2), M(m1, _, '{sex}', _, _), M(m2, 'Thriller', _, _, _)",
    "P(v; m1; m2), V(v, sex, _), M(m1, _, sex, _, _), "
    "M(m2, _, _, _, '{duration}')",
)


class TrafficReplayer:
    """A seeded arrival/update/expiry schedule over a CrowdRank corpus.

    ``n_active`` sessions are live at generation 0; ``n_pool`` further
    workers wait to arrive (their ``V`` rows exist from the start — the
    population is registered, the *sessions* stream).  Each
    :meth:`step` applies ``arrivals`` + ``updates`` + ``expirations``
    deltas through the :class:`MutablePPDatabase` mutators, so every
    subscriber (the standing-query engine) sees them in generation
    order.  Expired workers return to the pool and may re-arrive with a
    freshly drawn model.
    """

    def __init__(
        self,
        n_active: int = 40,
        n_pool: int = 12,
        n_movies: int = 8,
        n_components: int = 5,
        arrivals: int = 1,
        updates: int = 2,
        expirations: int = 1,
        phi_range: tuple[float, float] = (0.2, 0.8),
        seed: int = 0,
    ) -> None:
        if n_active < 2:
            raise ValueError(f"n_active must be >= 2, got {n_active}")
        if min(n_pool, arrivals, updates, expirations) < 0:
            raise ValueError("schedule counts must be >= 0")
        self.n_movies = n_movies
        self.arrivals = arrivals
        self.updates = updates
        self.expirations = expirations
        self._phi_range = phi_range
        self._rng = np.random.default_rng(seed)
        self._movie_ids = list(range(1, n_movies + 1))
        self._components = [
            self._draw_model() for _ in range(n_components)
        ]
        self._home_component = {
            (sex, age): int(self._rng.integers(n_components))
            for sex in SEXES
            for age in AGES
        }
        self._workers = [
            f"worker{index:06d}" for index in range(n_active + n_pool)
        ]
        self._demographics = {
            worker: (
                SEXES[int(self._rng.integers(len(SEXES)))],
                int(AGES[int(self._rng.integers(len(AGES)))]),
            )
            for worker in self._workers
        }
        self._active = list(self._workers[:n_active])
        self._waiting = list(self._workers[n_active:])
        self.db = self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _draw_model(self) -> Mallows:
        """A fresh Mallows model: shuffled center, uniform dispersion."""
        center = list(self._movie_ids)
        self._rng.shuffle(center)
        low, high = self._phi_range
        return Mallows(Ranking(center), float(self._rng.uniform(low, high)))

    def _component_for(self, worker: str) -> Mallows:
        """The demographically-leaning component (20% random), as in
        :func:`repro.datasets.crowdrank.crowdrank_database`."""
        if self._rng.random() < 0.2:
            index = int(self._rng.integers(len(self._components)))
        else:
            index = self._home_component[self._demographics[worker]]
        return self._components[index]

    def _build(self) -> MutablePPDatabase:
        movie_rows = []
        for movie_id in self._movie_ids:
            if movie_id == 1:
                genre = GENRES[0]  # the one Thriller, as in crowdrank
            else:
                genre = GENRES[1 + int(self._rng.integers(len(GENRES) - 1))]
            duration = (
                DURATIONS[0] if self._rng.random() < 0.3 else DURATIONS[1]
            )
            movie_rows.append(
                (
                    movie_id,
                    genre,
                    SEXES[int(self._rng.integers(len(SEXES)))],
                    int(AGES[int(self._rng.integers(len(AGES)))]),
                    duration,
                )
            )
        movies = ORelation(
            "M",
            ["id", "genre", "lead_sex", "lead_age", "duration"],
            movie_rows,
        )
        # V covers the WHOLE pool: arrivals are registered users whose
        # session starts later, so demographic joins and AGG attribute
        # lookups never dangle.
        voters = ORelation(
            "V",
            ["voter", "sex", "age"],
            [
                (worker,) + self._demographics[worker]
                for worker in self._workers
            ],
        )
        sessions: dict[SessionKey, Any] = {
            (worker,): self._component_for(worker)
            for worker in self._active
        }
        return MutablePPDatabase(
            orelations=[movies, voters],
            prelations=[PRelation("P", ["voter"], sessions)],
        )

    # ------------------------------------------------------------------
    # The schedule
    # ------------------------------------------------------------------

    def _pick(self, population: list[str], count: int) -> list[str]:
        """``count`` distinct members, seeded, in stable order."""
        count = min(count, len(population))
        if count == 0:
            return []
        chosen = self._rng.choice(len(population), size=count, replace=False)
        return [population[index] for index in sorted(int(i) for i in chosen)]

    def step(self) -> list[SessionDelta]:
        """Apply one generation step: arrivals, updates, expirations.

        Updates split between component re-assignment (the cache may
        already hold the solves — zero fresh work) and freshly drawn
        models (genuinely new solve identities).  Expirations keep at
        least two sessions live so the relation never empties.
        """
        deltas: list[SessionDelta] = []
        arriving = self._waiting[: self.arrivals]
        self._waiting = self._waiting[self.arrivals:]
        for worker in arriving:
            model = (
                self._draw_model()
                if self._rng.random() < 0.5
                else self._component_for(worker)
            )
            deltas.append(self.db.add_session("P", (worker,), model))
            self._active.append(worker)
        for worker in self._pick(self._active, self.updates):
            model = (
                self._draw_model()
                if self._rng.random() < 0.5
                else self._component_for(worker)
            )
            deltas.append(self.db.update_session("P", (worker,), model))
        expirable = [w for w in self._active if w not in arriving]
        budget = max(0, min(self.expirations, len(self._active) - 2))
        for worker in self._pick(expirable, budget):
            deltas.append(self.db.expire_session("P", (worker,)))
            self._active.remove(worker)
            self._waiting.append(worker)
        return deltas

    def run(self, n_steps: int) -> list[list[SessionDelta]]:
        """``n_steps`` consecutive steps' deltas (mutating :attr:`db`)."""
        return [self.step() for _ in range(n_steps)]

    # ------------------------------------------------------------------
    # The standing workload
    # ------------------------------------------------------------------

    def standing_requests(self, n_requests: int, k: int = 3) -> list[str]:
        """``n_requests`` overlapping standing requests, all four kinds.

        Cycles the kind prefixes over the CrowdRank query families with
        rotating label parameters — the same overlapping shape as
        ``python -m repro batch``, so registrations share solves through
        the one engine cache.
        """
        requests: list[str] = []
        for index in range(n_requests):
            prefix = _KIND_PREFIXES[index % len(_KIND_PREFIXES)].format(k=k)
            template = _TEMPLATES[index % len(_TEMPLATES)]
            requests.append(
                prefix
                + template.format(
                    genre=GENRES[index % len(GENRES)],
                    sex=SEXES[index % len(SEXES)],
                    duration=DURATIONS[index % len(DURATIONS)],
                )
            )
        return requests

    def __repr__(self) -> str:
        return (
            f"TrafficReplayer(active={len(self._active)}, "
            f"waiting={len(self._waiting)}, movies={self.n_movies}, "
            f"generation={self.db.generation})"
        )
