"""Standing queries: materialized answers kept fresh by session deltas.

A :class:`StandingQuery` is a registered request whose :class:`~repro.api
.answer.Answer` is materialized and maintained as the underlying
:class:`~repro.db.mutable.MutablePPDatabase` evolves.  The maintenance
strategy exploits the architecture the earlier PRs built, instead of a
parallel incremental engine:

* **Content-addressed solve identities.**  Every per-session solve is
  named by its canonical ``session_cache_key`` — a function of the
  session's *model* (``freeze()``), labeling, and union, never of the
  session's identity.  A mutated session therefore freezes to a *new*
  key; cached entries can never go stale.  Incremental maintenance is
  simply: re-run the normal build -> optimize -> execute pipeline against
  the **shared warm cache** — unchanged sessions hit the cache, only the
  delta's solves run fresh, and the lazy top-k frontier re-ranks with
  cached confirmations (a delta re-enters the frontier in bound order).
* **Delta -> solve-identity mapping.**  Each refresh records the plan's
  ``session -> cache_key`` map from its terminals.  When a delta updates
  or expires a session, the session's *previous* key is retired from the
  cache via the targeted :meth:`~repro.service.cache.SolverCache
  .invalidate` — exactly those entries, counted, and only once no other
  registered standing query still references the key.  This keeps the
  warm tier's occupancy proportional to the live session population
  (invalidation is reclamation + bookkeeping; correctness never depends
  on it, which is what makes the scheme race-free).
* **Generations.**  Answers carry the database generation they were
  computed against (:attr:`~repro.api.answer.Answer.generation`);
  :meth:`StandingQueryEngine.stats` exports count / max staleness /
  invalidations for the server's ``/stats`` gauge.

See DESIGN.md Section 15.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.api.answer import Answer
from repro.api.evaluate import answer_with_plan
from repro.api.requests import QueryRequest, as_request
from repro.db.mutable import MutablePPDatabase, SessionDelta
from repro.db.schema import SessionKey
from repro.plan.methods import APPROXIMATE_METHODS
from repro.plan.nodes import QueryPlan
from repro.query.classify import analyze
from repro.service.cache import SolverCache


@dataclass
class StandingQuery:
    """One registered request with its materialized answer.

    ``generation`` is the database generation the materialized answer is
    *valid as of* — it advances without recomputation when deltas touch
    only sessions outside this query's p-relation.  ``solve_keys`` is the
    last refresh's ``session -> canonical cache key`` map, the index a
    delta-targeted invalidation consults.
    """

    query_id: int
    request: QueryRequest
    method: str
    options: dict[str, Any]
    p_relation: str
    answer: "Answer | None" = None
    generation: int = 0
    solve_keys: dict[SessionKey, Hashable] = field(default_factory=dict)
    #: Sessions touched since the last refresh (key -> last delta kind).
    pending: dict[SessionKey, str] = field(default_factory=dict)
    n_refreshes: int = 0
    n_fresh_solves: int = 0
    n_invalidations: int = 0

    @property
    def stale(self) -> bool:
        """True when a delta touched this query since its last refresh."""
        return bool(self.pending)

    @property
    def value(self) -> Any:
        """The materialized answer's principal value."""
        if self.answer is None:
            raise ValueError(
                f"standing query {self.query_id} is not materialized yet"
            )
        return self.answer.value


def answers_equal(left: "Answer | None", right: "Answer | None") -> bool:
    """Bit-identical comparison of two answers' observable results.

    The streaming acceptance bar: a materialized answer must equal a
    from-scratch evaluation on the mutated database *exactly* — same
    kind, same principal value (float equality, not tolerance), and the
    same per-session probability breakdown.  Timing, cache statistics,
    and generation stamps are execution artifacts and excluded.
    """
    if left is None or right is None:
        return left is right
    if left.kind != right.kind or left.value != right.value:
        return False
    left_sessions = [
        (evaluation.key, evaluation.probability)
        for evaluation in left.per_session
    ]
    right_sessions = [
        (evaluation.key, evaluation.probability)
        for evaluation in right.per_session
    ]
    return left_sessions == right_sessions


def terminal_solve_keys(plan: QueryPlan) -> dict[SessionKey, Hashable]:
    """The executed plan's ``session -> canonical cache key`` map.

    Read off the terminals' item lists: unsatisfiable sessions (no solve
    node) and non-canonical plans (no cache keys) contribute nothing.
    """
    keys: dict[SessionKey, Hashable] = {}
    for terminal in plan.aggregate_nodes():
        for session_key, solve_id in terminal.items:
            if solve_id is None:
                continue
            cache_key = getattr(plan.nodes[solve_id], "cache_key", None)
            if cache_key is not None:
                keys[session_key] = cache_key
    return keys


class StandingQueryEngine:
    """Registrations + the delta feed -> fresh materialized answers.

    The engine subscribes to the database's delta feed.  Each delta marks
    the standing queries over its p-relation stale; with ``auto_refresh``
    (the serving default) they are re-materialized immediately, otherwise
    :meth:`refresh` batches the recomputation — the replay benchmark
    applies a whole arrival/update/expiry step, then refreshes once.

    All registered queries share one :class:`SolverCache` (any tier —
    plain, persistent, or sharded), which is the entire incremental
    machinery: a refresh's unchanged sessions are cache hits, and
    overlapping standing queries share each other's warm solves exactly
    like a batch shares them at plan time.
    """

    def __init__(
        self,
        db: MutablePPDatabase,
        cache: "SolverCache | None" = None,
        method: str = "auto",
        auto_refresh: bool = True,
        session_limit: "int | None" = None,
        **solver_options: Any,
    ) -> None:
        if method in APPROXIMATE_METHODS:
            raise ValueError(
                f"standing queries need a cacheable method, not the "
                f"rng-driven {method!r} — incremental maintenance is "
                "cache reuse"
            )
        self.db = db
        self.cache = cache if cache is not None else SolverCache()
        self.method = method
        self.auto_refresh = auto_refresh
        self._session_limit = session_limit
        self._options = dict(solver_options)
        self._queries: dict[int, StandingQuery] = {}
        self._next_id = 0
        self._lock = threading.RLock()
        self._n_refreshes = 0
        self._n_fresh_solves = 0
        self._n_invalidations = 0
        self._unsubscribe = db.subscribe(self._on_delta)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        request: "QueryRequest | Any",
        method: "str | None" = None,
        **options: Any,
    ) -> StandingQuery:
        """Register a request (typed or text) and materialize its answer."""
        parsed = as_request(request)
        resolved_method = method if method is not None else self.method
        if resolved_method in APPROXIMATE_METHODS:
            raise ValueError(
                f"standing queries need a cacheable method, not the "
                f"rng-driven {resolved_method!r}"
            )
        analysis = analyze(parsed.query, self.db)
        with self._lock:
            query_id = self._next_id
            self._next_id += 1
            standing = StandingQuery(
                query_id=query_id,
                request=parsed,
                method=resolved_method,
                options={**self._options, **options},
                p_relation=analysis.p_relation,
            )
            self._queries[query_id] = standing
        self._refresh_one(standing)
        return standing

    def deregister(self, query_id: int) -> int:
        """Drop a registration, retiring its now-exclusive cache entries.

        Returns how many entries the targeted invalidation dropped (keys
        another standing query still references are kept warm).
        """
        with self._lock:
            standing = self._queries.pop(query_id, None)
            if standing is None:
                raise KeyError(f"no standing query {query_id}")
            mine = set(standing.solve_keys.values())
            for other in self._queries.values():
                mine.difference_update(other.solve_keys.values())
        dropped = (
            self.cache.invalidate(sorted(mine, key=repr)) if mine else 0
        )
        with self._lock:
            self._n_invalidations += dropped
        return dropped

    def standing_queries(self) -> list[StandingQuery]:
        """Current registrations, in registration order."""
        with self._lock:
            return [
                self._queries[query_id] for query_id in sorted(self._queries)
            ]

    def close(self) -> None:
        """Detach from the delta feed (registrations stay readable)."""
        self._unsubscribe()

    def __enter__(self) -> "StandingQueryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _on_delta(self, delta: SessionDelta) -> None:
        with self._lock:
            for standing in self._queries.values():
                if standing.p_relation == delta.relation:
                    standing.pending[delta.key] = delta.kind
        if self.auto_refresh:
            self.refresh()

    def refresh(self) -> list[StandingQuery]:
        """Bring every standing query up to the current generation.

        Stale queries (touched by a delta since their last refresh) are
        re-materialized through the shared cache; untouched queries just
        advance their valid-as-of generation.  Returns the queries that
        were re-materialized.
        """
        with self._lock:
            generation = self.db.generation
            stale = [
                self._queries[query_id]
                for query_id in sorted(self._queries)
                if self._queries[query_id].pending
            ]
            for standing in self._queries.values():
                if not standing.pending:
                    standing.generation = max(
                        standing.generation, generation
                    )
        for standing in stale:
            self._refresh_one(standing)
        return stale

    def _refresh_one(self, standing: StandingQuery) -> Answer:
        """Re-materialize one answer through the normal plan pipeline.

        The shared warm cache makes this incremental: only solves whose
        canonical key is new (the delta's sessions) run fresh, including
        the exclusive solves the lazy top-k frontier demands in bound
        order.  Afterwards, retire the previous keys of updated/expired
        sessions that no registration references anymore.
        """
        with self._lock:
            pending = dict(standing.pending)
            standing.pending.clear()
            previous_keys = dict(standing.solve_keys)
        generation = self.db.generation
        result, plan, execution = answer_with_plan(
            standing.request,
            self.db,
            method=standing.method,
            session_limit=self._session_limit,
            cache=self.cache,
            **standing.options,
        )
        solve_keys = terminal_solve_keys(plan)
        retired = self._retire(standing, pending, previous_keys, solve_keys)
        with self._lock:
            standing.answer = result
            standing.generation = generation
            standing.solve_keys = solve_keys
            standing.n_refreshes += 1
            standing.n_fresh_solves += execution.n_executed
            standing.n_invalidations += retired
            self._n_refreshes += 1
            self._n_fresh_solves += execution.n_executed
            self._n_invalidations += retired
        return result

    def _retire(
        self,
        standing: StandingQuery,
        pending: dict[SessionKey, str],
        previous_keys: dict[SessionKey, Hashable],
        new_keys: dict[SessionKey, Hashable],
    ) -> int:
        """Invalidate exactly the delta's now-unreferenced cache entries.

        Candidates are the previous keys of the refreshed query's updated
        or expired sessions (an ``add`` has no previous key).  A
        candidate survives if any registration — this one's new map, or
        any other standing query — still maps some session to it (shared
        component models make that common).
        """
        candidates = {
            previous_keys[key]
            for key, kind in pending.items()
            if kind != "add" and key in previous_keys
        }
        if not candidates:
            return 0
        with self._lock:
            candidates.difference_update(new_keys.values())
            for other in self._queries.values():
                if other.query_id != standing.query_id:
                    candidates.difference_update(other.solve_keys.values())
        if not candidates:
            return 0
        return self.cache.invalidate(sorted(candidates, key=repr))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """The ``standing_queries`` gauge for the server's ``/stats``."""
        with self._lock:
            generation = self.db.generation
            staleness = [
                generation - standing.generation
                for standing in self._queries.values()
            ]
            return {
                "count": len(self._queries),
                "generation": generation,
                "max_staleness": max(staleness, default=0),
                "refreshes": self._n_refreshes,
                "fresh_solves": self._n_fresh_solves,
                "invalidations_applied": self._n_invalidations,
            }
