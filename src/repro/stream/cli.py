"""``python -m repro replay`` — stream synthetic traffic through
standing queries.

Example::

    python -m repro replay --steps 8 --sessions 24 --queries 6
    python -m repro replay --steps 5 --shards 4 --verify

Each step applies one seeded arrival/update/expiry batch from the
:class:`~repro.stream.replay.TrafficReplayer`, refreshes the stale
standing queries through the shared warm cache, and prints what the
incremental maintenance actually did: how many registrations went stale,
how many solves ran fresh (vs. the full re-evaluation a snapshot system
would pay), and how many retired cache entries the targeted invalidation
reclaimed.  ``--verify`` re-answers every registration from scratch
after every step and asserts bit-identical materialized answers.
"""

from __future__ import annotations

import sys
import time


def add_replay_parser(subparsers) -> None:
    """Register the ``replay`` subcommand on the ``python -m repro`` parser."""
    parser = subparsers.add_parser(
        "replay",
        help="stream synthetic session traffic through standing queries",
    )
    parser.add_argument(
        "--steps", type=int, default=8,
        help="generation steps to replay (each: arrivals+updates+expiries)",
    )
    parser.add_argument(
        "--sessions", type=int, default=24,
        help="sessions live at generation 0",
    )
    parser.add_argument(
        "--pool", type=int, default=8,
        help="registered workers waiting to arrive",
    )
    parser.add_argument(
        "--movies", type=int, default=8, help="catalog size"
    )
    parser.add_argument(
        "--queries", type=int, default=6,
        help="standing queries to register (cycles all four kinds)",
    )
    parser.add_argument(
        "--arrivals", type=int, default=1, help="session arrivals per step"
    )
    parser.add_argument(
        "--updates", type=int, default=2, help="model updates per step"
    )
    parser.add_argument(
        "--expirations", type=int, default=1,
        help="session expirations per step",
    )
    parser.add_argument(
        "--method", default="auto",
        help="solver method (must be cacheable — approximate methods "
        "cannot maintain standing answers incrementally)",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="back the engine with a sharded cache tier "
        "(repro.service.shard) instead of the plain LRU",
    )
    parser.add_argument(
        "--capacity", type=int, default=4096, help="solver-cache capacity"
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="after every step, re-answer each registration from scratch "
        "and assert bit-identical materialized answers",
    )
    parser.add_argument("--seed", type=int, default=7)


def run_replay(args) -> int:
    """Drive a replay session and print the per-step maintenance table."""
    from repro.api import answer
    from repro.evaluation.harness import format_table
    from repro.service.cache import SolverCache
    from repro.service.shard import ShardedSolverCache
    from repro.stream.replay import TrafficReplayer
    from repro.stream.standing import StandingQueryEngine, answers_equal

    if args.steps < 1 or args.queries < 1:
        print("--steps and --queries must be >= 1", file=sys.stderr)
        return 2
    try:
        replayer = TrafficReplayer(
            n_active=args.sessions,
            n_pool=args.pool,
            n_movies=args.movies,
            arrivals=args.arrivals,
            updates=args.updates,
            expirations=args.expirations,
            seed=args.seed,
        )
        cache = (
            ShardedSolverCache(
                capacity=args.capacity, n_shards=args.shards
            )
            if args.shards is not None
            else SolverCache(capacity=args.capacity)
        )
        engine = StandingQueryEngine(
            replayer.db, cache=cache, method=args.method, auto_refresh=False
        )
    except ValueError as error:
        print(f"cannot build replay session: {error}", file=sys.stderr)
        return 2

    requests = replayer.standing_requests(args.queries)
    registered = [engine.register(text) for text in requests]
    cold = engine.stats()
    print(
        f"== replay: {args.queries} standing queries, "
        f"{args.sessions}+{args.pool} sessions, {args.steps} steps "
        f"(seed={args.seed}"
        + (f", shards={args.shards}" if args.shards is not None else "")
        + ") =="
    )
    print(
        f"registered: {int(cold['count'])} queries, "
        f"{int(cold['fresh_solves'])} cold solves"
    )

    rows = []
    verified = 0
    for step_index in range(1, args.steps + 1):
        deltas = replayer.step()
        before = engine.stats()
        started = time.perf_counter()
        refreshed = engine.refresh()
        seconds = time.perf_counter() - started
        after = engine.stats()
        kinds = [delta.kind for delta in deltas]
        rows.append(
            [
                step_index,
                replayer.db.generation,
                kinds.count("add"),
                kinds.count("update"),
                kinds.count("expire"),
                len(refreshed),
                int(after["fresh_solves"] - before["fresh_solves"]),
                int(
                    after["invalidations_applied"]
                    - before["invalidations_applied"]
                ),
                seconds,
            ]
        )
        if args.verify:
            for standing in registered:
                reference = answer(
                    standing.request, replayer.db, method=standing.method
                )
                if not answers_equal(standing.answer, reference):
                    print(
                        f"VERIFY FAILED at generation "
                        f"{replayer.db.generation}: standing query "
                        f"{standing.query_id} "
                        f"({standing.request.describe()}) diverged from "
                        "the from-scratch answer",
                        file=sys.stderr,
                    )
                    return 1
                verified += 1
    print(
        format_table(
            ["step", "generation", "adds", "updates", "expires",
             "refreshed", "fresh_solves", "invalidated", "seconds"],
            rows,
        )
    )
    final = engine.stats()
    cache_stats = cache.stats()
    print(
        f"steady state: {int(final['fresh_solves'] - cold['fresh_solves'])} "
        f"fresh solves over {args.steps} steps, "
        f"{int(final['invalidations_applied'])} cache entries retired, "
        f"max staleness {int(final['max_staleness'])}"
    )
    print(
        f"cache: hits={cache_stats.hits}, misses={cache_stats.misses}, "
        f"size={cache_stats.size}, invalidations={cache_stats.invalidations}"
    )
    if args.verify:
        print(
            f"verified: {verified} materialized answers bit-identical to "
            "from-scratch evaluation"
        )
    engine.close()
    if args.shards is not None:
        cache.close()
    return 0
