"""Streaming sessions: standing queries with incremental maintenance.

The online scenario of ROADMAP open item 4 — live traffic over live
data.  Sessions arrive, update, and expire through a
:class:`~repro.db.mutable.MutablePPDatabase` (typed
:class:`~repro.db.mutable.SessionDelta` events, monotonic generation
counter); a :class:`~repro.stream.standing.StandingQueryEngine` keeps
one materialized :class:`~repro.api.answer.Answer` per registered
request fresh by re-executing only the affected per-session terminal
work through the normal build -> optimize -> execute pipeline and the
shared warm cache, retiring obsolete entries with the targeted
``invalidate(keys)``; a :class:`~repro.stream.replay.TrafficReplayer`
generates seeded synthetic arrival/update/expiry schedules for the
``python -m repro replay`` CLI and ``benchmarks/bench_streaming.py``.

See DESIGN.md Section 15.
"""

from repro.db.mutable import MutablePPDatabase, MutablePRelation, SessionDelta
from repro.stream.replay import TrafficReplayer
from repro.stream.standing import (
    StandingQuery,
    StandingQueryEngine,
    answers_equal,
    terminal_solve_keys,
)

__all__ = [
    "MutablePPDatabase",
    "MutablePRelation",
    "SessionDelta",
    "StandingQuery",
    "StandingQueryEngine",
    "TrafficReplayer",
    "answers_equal",
    "terminal_solve_keys",
]
