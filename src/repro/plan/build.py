"""The plan builder: (requests, db) -> a logical :class:`QueryPlan` DAG.

The builder performs the *logical* phases of evaluation — session
selection, session-atom grounding, pattern-union compilation — through the
engine's existing primitives (:func:`repro.query.engine
.compile_session_work`), records what happened in provenance nodes, and
emits one :class:`~repro.plan.nodes.SolveNode` per satisfiable session:
the *planned* solves.  No probability is computed here; the optimizer
(:mod:`repro.plan.passes`) rewrites the solve frontier and the executor
(:mod:`repro.plan.execute`) runs it.

Inputs may be plain Boolean CQs (or query text), or any typed request of
the unified API (:mod:`repro.api.requests`): every request kind shares the
same logical pipeline and solve frontier and differs only in its terminal
node — :class:`~repro.plan.nodes.AggregateSessionsNode` for a Boolean
probability, :class:`~repro.plan.nodes.CountSessionsNode` for
``count(Q)``, :class:`~repro.plan.nodes.TopKSessionsNode` for
``top(Q, k)``, :class:`~repro.plan.nodes.AttributeAggregateNode` for the
Section-7 attribute aggregates (whose attribute values are joined here, at
build time, so a missing row fails before any solve runs).

Labelings are computed once per distinct union object and shared by every
session (and every solve node) that references the union, exactly as the
pre-plan engine memoized them.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.patterns.labels import Labeling
from repro.patterns.union import PatternUnion
from repro.plan.nodes import (
    AggregateSessionsNode,
    AttributeAggregateNode,
    CombineQueriesNode,
    CompileUnionNode,
    CountSessionsNode,
    GroundSessionsNode,
    QueryPlan,
    SelectSessionsNode,
    SolveNode,
    TerminalNode,
    TopKSessionsNode,
)
from repro.query.ast import ConjunctiveQuery
from repro.query.classify import analyze
from repro.query.compile import labeling_for_patterns
from repro.query.engine import compile_session_work


def _normalize_requests(queries) -> list:
    """Any accepted input shape -> a list of typed requests."""
    # Deferred: repro.api builds on this package.
    from repro.api.requests import QueryRequest, as_request

    if isinstance(queries, (ConjunctiveQuery, str, QueryRequest)):
        queries = [queries]
    return [as_request(item) for item in queries]


def build_plan(
    queries: "ConjunctiveQuery | str | Any | Sequence",
    db,
    method: str = "auto",
    options: "dict[str, Any] | None" = None,
    group_sessions: bool = True,
    session_limit: int | None = None,
) -> QueryPlan:
    """Build the logical plan of one request or a batch.

    ``queries`` accepts a single item or a sequence of items, each a
    :class:`~repro.query.ast.ConjunctiveQuery`, request text (plain or
    prefixed — ``COUNT`` / ``TOPK k`` / ``AGG stat(R.col)``), or a typed
    request object.  The other parameters mirror
    :func:`repro.query.engine.evaluate`; ``group_sessions=False`` marks the
    plan as non-groupable (the optimizer then skips common-solve
    elimination, reproducing the naive baseline).
    """
    plan = QueryPlan(
        db,
        _normalize_requests(queries),
        method=method,
        options=options,
        group_sessions=group_sessions,
        session_limit=session_limit,
    )
    for query_index, request in enumerate(plan.requests):
        _build_request(plan, query_index, request)
    if plan.n_queries > 1:
        combine = CombineQueriesNode(
            node_id=plan.new_id(),
            inputs=tuple(plan.aggregates),
            n_queries=plan.n_queries,
        )
        plan.add(combine)
        plan.combine = combine.node_id
    return plan


def _terminal_for(plan: QueryPlan, request, query_index: int) -> TerminalNode:
    """An (unregistered) terminal node of the request's kind."""
    common = dict(
        node_id=plan.new_id(),
        query_index=query_index,
        query=request.query,
    )
    if request.kind == "probability":
        return AggregateSessionsNode(**common)
    if request.kind == "count":
        return CountSessionsNode(**common)
    if request.kind == "top_k":
        return TopKSessionsNode(
            k=request.k,
            strategy=request.strategy,
            n_edges=request.n_edges,
            **common,
        )
    if request.kind == "aggregate":
        return AttributeAggregateNode(
            relation=request.relation,
            column=request.column,
            statistic=request.statistic,
            n_worlds=request.n_worlds,
            **common,
        )
    raise ValueError(f"unknown request kind {request.kind!r}")


def _build_request(plan: QueryPlan, query_index: int, request) -> None:
    query = request.query
    analysis = analyze(query, plan.db)
    prelation = plan.db.prelation(analysis.p_relation)
    works = compile_session_work(
        query, plan.db, analysis=analysis, session_limit=plan.session_limit
    )

    select = plan.add(
        SelectSessionsNode(
            node_id=plan.new_id(),
            query_index=query_index,
            p_relation=analysis.p_relation,
            n_candidates=len(list(prelation.session_keys())),
            n_selected=len(works),
        )
    )
    ground = plan.add(
        GroundSessionsNode(
            node_id=plan.new_id(),
            inputs=(select.node_id,),
            query_index=query_index,
            n_satisfiable=sum(1 for work in works if work.union is not None),
            n_unsatisfiable=sum(1 for work in works if work.union is None),
        )
    )

    # One CompileUnion node per distinct union object (compile_session_work
    # already shares union objects across sessions with equal bindings) and
    # one labeling per union, shared by all of its solve nodes.
    union_nodes: dict[int, CompileUnionNode] = {}
    labelings: dict[int, Labeling] = {}
    items = prelation.items

    def union_node_of(union: PatternUnion) -> CompileUnionNode:
        found = union_nodes.get(id(union))
        if found is None:
            found = plan.add(
                CompileUnionNode(
                    node_id=plan.new_id(),
                    inputs=(ground.node_id,),
                    query_index=query_index,
                    union=union,
                )
            )
            union_nodes[id(union)] = found
            labelings[id(union)] = labeling_for_patterns(
                union.patterns, items, plan.db
            )
        return found

    terminal_items: list[tuple] = []
    for work in works:
        if work.union is None:
            terminal_items.append((work.key, None))
            continue
        compile_node = union_node_of(work.union)
        compile_node.n_sessions += 1
        solve = plan.add(
            SolveNode(
                node_id=plan.new_id(),
                inputs=(compile_node.node_id,),
                model=work.model,
                labeling=labelings[id(work.union)],
                union=work.union,
                requested_method=plan.method,
                options=plan.options,
                sessions=[(query_index, work.key)],
            )
        )
        plan.solve_order.append(solve.node_id)
        plan.n_solves_planned += 1
        terminal_items.append((work.key, solve.node_id))

    terminal = _terminal_for(plan, request, query_index)
    terminal.inputs = tuple(
        solve_id for _, solve_id in terminal_items if solve_id is not None
    )
    terminal.items = terminal_items
    if isinstance(terminal, AttributeAggregateNode):
        _join_attribute_values(plan, terminal)
    plan.add(terminal)
    plan.aggregates.append(terminal.node_id)


def _join_attribute_values(
    plan: QueryPlan, terminal: AttributeAggregateNode
) -> None:
    """Join ``relation.column`` for every selected session, at build time.

    Mirrors the historical post-evaluation join of
    ``aggregate_session_attribute`` — including its error on a session
    with no attribute row — but runs before any solve, so a malformed
    aggregate request fails fast.
    """
    attribute_relation = plan.db.orelation(terminal.relation)
    column_index = attribute_relation.column_index(terminal.column)
    for key, _ in terminal.items:
        row = attribute_relation.first_row_where({0: key[0]})
        if row is None:
            raise KeyError(
                f"session {key!r} has no row in {terminal.relation}"
            )
        terminal.values[key] = float(row[column_index])
