"""The plan builder: (queries, db) -> a logical :class:`QueryPlan` DAG.

The builder performs the *logical* phases of evaluation — session
selection, session-atom grounding, pattern-union compilation — through the
engine's existing primitives (:func:`repro.query.engine
.compile_session_work`), records what happened in provenance nodes, and
emits one :class:`~repro.plan.nodes.SolveNode` per satisfiable session:
the *planned* solves.  No probability is computed here; the optimizer
(:mod:`repro.plan.passes`) rewrites the solve frontier and the executor
(:mod:`repro.plan.execute`) runs it.

Labelings are computed once per distinct union object and shared by every
session (and every solve node) that references the union, exactly as the
pre-plan engine memoized them.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.patterns.labels import Labeling
from repro.patterns.union import PatternUnion
from repro.query.ast import ConjunctiveQuery
from repro.query.classify import analyze
from repro.query.compile import labeling_for_patterns
from repro.query.engine import compile_session_work
from repro.plan.nodes import (
    AggregateSessionsNode,
    CombineQueriesNode,
    CompileUnionNode,
    GroundSessionsNode,
    QueryPlan,
    SelectSessionsNode,
    SolveNode,
)


def build_plan(
    queries: "ConjunctiveQuery | Sequence[ConjunctiveQuery]",
    db,
    method: str = "auto",
    options: "dict[str, Any] | None" = None,
    group_sessions: bool = True,
    session_limit: int | None = None,
) -> QueryPlan:
    """Build the logical plan of one query or a batch.

    Parameters mirror :func:`repro.query.engine.evaluate`;
    ``group_sessions=False`` marks the plan as non-groupable (the optimizer
    then skips common-solve elimination, reproducing the naive baseline).
    """
    if isinstance(queries, ConjunctiveQuery):
        queries = [queries]
    plan = QueryPlan(
        db,
        list(queries),
        method=method,
        options=options,
        group_sessions=group_sessions,
        session_limit=session_limit,
    )
    for query_index, query in enumerate(plan.queries):
        _build_query(plan, query_index, query)
    if plan.n_queries > 1:
        combine = CombineQueriesNode(
            node_id=plan.new_id(),
            inputs=tuple(plan.aggregates),
            n_queries=plan.n_queries,
        )
        plan.add(combine)
        plan.combine = combine.node_id
    return plan


def _build_query(plan: QueryPlan, query_index: int, query: ConjunctiveQuery) -> None:
    analysis = analyze(query, plan.db)
    prelation = plan.db.prelation(analysis.p_relation)
    works = compile_session_work(
        query, plan.db, analysis=analysis, session_limit=plan.session_limit
    )

    select = plan.add(
        SelectSessionsNode(
            node_id=plan.new_id(),
            query_index=query_index,
            p_relation=analysis.p_relation,
            n_candidates=len(list(prelation.session_keys())),
            n_selected=len(works),
        )
    )
    ground = plan.add(
        GroundSessionsNode(
            node_id=plan.new_id(),
            inputs=(select.node_id,),
            query_index=query_index,
            n_satisfiable=sum(1 for work in works if work.union is not None),
            n_unsatisfiable=sum(1 for work in works if work.union is None),
        )
    )

    # One CompileUnion node per distinct union object (compile_session_work
    # already shares union objects across sessions with equal bindings) and
    # one labeling per union, shared by all of its solve nodes.
    union_nodes: dict[int, CompileUnionNode] = {}
    labelings: dict[int, Labeling] = {}
    items = prelation.items

    def union_node_of(union: PatternUnion) -> CompileUnionNode:
        found = union_nodes.get(id(union))
        if found is None:
            found = plan.add(
                CompileUnionNode(
                    node_id=plan.new_id(),
                    inputs=(ground.node_id,),
                    query_index=query_index,
                    union=union,
                )
            )
            union_nodes[id(union)] = found
            labelings[id(union)] = labeling_for_patterns(
                union.patterns, items, plan.db
            )
        return found

    aggregate_items: list[tuple] = []
    for work in works:
        if work.union is None:
            aggregate_items.append((work.key, None))
            continue
        compile_node = union_node_of(work.union)
        compile_node.n_sessions += 1
        solve = plan.add(
            SolveNode(
                node_id=plan.new_id(),
                inputs=(compile_node.node_id,),
                model=work.model,
                labeling=labelings[id(work.union)],
                union=work.union,
                requested_method=plan.method,
                options=plan.options,
                sessions=[(query_index, work.key)],
            )
        )
        plan.solve_order.append(solve.node_id)
        plan.n_solves_planned += 1
        aggregate_items.append((work.key, solve.node_id))

    aggregate = plan.add(
        AggregateSessionsNode(
            node_id=plan.new_id(),
            inputs=tuple(
                solve_id for _, solve_id in aggregate_items if solve_id is not None
            ),
            query_index=query_index,
            query=query,
            items=aggregate_items,
        )
    )
    plan.aggregates.append(aggregate.node_id)
