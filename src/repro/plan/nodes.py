"""The plan IR: a typed DAG of logical/physical query-plan nodes.

Evaluating a Boolean CQ over a RIM-PPD decomposes into a fixed logical
shape (Section 3.1 of the paper):

    SelectSessions -> GroundSessions -> CompileUnion -> Solve -> AggregateSessions

with a ``CombineQueries`` root when a batch of queries is planned together.
Classic probabilistic-database engines (Dalvi & Suciu's safe plans, Li &
Deshpande's consensus answers) get their leverage from making that shape an
explicit, rewritable object; this module is that object for this engine.

The nodes split into two layers:

* **provenance nodes** (``SelectSessionsNode``, ``GroundSessionsNode``,
  ``CompileUnionNode``) record what the builder did — how many sessions a
  query selected, how the session-atom joins grounded, which pattern unions
  compilation produced — so ``explain()`` can show the whole pipeline;
* **physical nodes** (``SolveNode``, the :class:`TerminalNode` family,
  ``CombineQueriesNode``) are what the optimizer rewrites and the executor
  runs.  A ``SolveNode`` starts as one *planned* solve per satisfiable
  session; the optimizer passes (:mod:`repro.plan.passes`) resolve its
  method, annotate its cost, and merge identical nodes, so the executor
  (:mod:`repro.plan.execute`) only ever runs the surviving frontier.

Since the unified query API (:mod:`repro.api`), every request kind ends in
its own *terminal* node over the shared solve frontier:
``AggregateSessionsNode`` (Boolean probability, Section 3.1),
``CountSessionsNode`` (``E[count(Q)]``, Section 3.2),
``TopKSessionsNode`` (``top(Q, k)`` with the upper-bound pruning of
Section 4.3.2 — its exclusive solves are *lazy*: demanded in bound order
and skipped entirely once the k-th best confirmed probability dominates
the remaining bounds), and ``AttributeAggregateNode`` (the Section 7
attribute aggregates).  Terminals of different kinds over the same query
consume the *same* solve nodes, which is what makes mixed-kind batches
share solver work.

The IR deliberately reuses the engine's value types (models, labelings,
:class:`~repro.patterns.union.PatternUnion`) rather than re-encoding them:
a plan is a *schedule over existing work units*, and executing it through
the unchanged solver/cache stack is what keeps results bit-identical to the
pre-plan evaluate path.  See DESIGN.md, "The query planner".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Hashable, Sequence, TYPE_CHECKING, cast

from repro.patterns.labels import Labeling
from repro.patterns.union import PatternUnion
from repro.plan.methods import (
    APPROXIMATE_METHODS,
    APPROX_BUDGET_OPTION,
    DEFAULT_APPROX_BUDGET,
)
from repro.query.ast import ConjunctiveQuery
from repro.query.engine import SessionKey

if TYPE_CHECKING:
    from repro.api.requests import QueryRequest


@dataclass
class PlanNode:
    """Base of every plan node: an id, input edges, and free annotations."""

    node_id: int
    inputs: tuple[int, ...] = ()
    #: Free-form annotations written by optimizer passes (costs, hints,
    #: eliminated counts); rendered verbatim by ``explain()``.
    annotations: dict[str, Any] = field(default_factory=dict)

    kind: ClassVar[str] = "node"


@dataclass
class SelectSessionsNode(PlanNode):
    """Session selection of one query against its p-relation."""

    query_index: int = 0
    p_relation: str = ""
    n_candidates: int = 0
    n_selected: int = 0

    kind: ClassVar[str] = "select_sessions"


@dataclass
class GroundSessionsNode(PlanNode):
    """Per-session binding + V+(Q) grounding (Algorithm 2) of one query."""

    query_index: int = 0
    n_satisfiable: int = 0
    n_unsatisfiable: int = 0

    kind: ClassVar[str] = "ground_sessions"


@dataclass
class CompileUnionNode(PlanNode):
    """One distinct compiled pattern union of a query (shared by sessions)."""

    query_index: int = 0
    union: PatternUnion | None = None
    n_sessions: int = 0

    kind: ClassVar[str] = "compile_union"

    @property
    def z(self) -> int:
        return self.union.z if self.union is not None else 0


@dataclass
class SolveNode(PlanNode):
    """One session solve: the unit the optimizer rewrites and merges.

    Built as one node per satisfiable session; after common-solve
    elimination a node may carry many ``sessions`` (the consumers that will
    read its probability).  ``method`` starts as the *requested* method and
    is rewritten to a concrete solver name by the method-resolution pass;
    ``cost`` is the planner's DP state-count estimate; ``cache_key`` is the
    canonical key used both for elimination and for the shared
    :class:`~repro.service.cache.SolverCache` (None when the plan groups by
    object identity, matching the engine's cacheless behavior).
    """

    model: Any = None
    labeling: Labeling | None = None
    union: PatternUnion | None = None
    requested_method: str = "auto"
    method: str | None = None
    options: dict[str, Any] = field(default_factory=dict)
    #: (query_index, session_key) pairs consuming this solve, in plan order.
    sessions: list[tuple[int, SessionKey]] = field(default_factory=list)
    cost: float | None = None
    cache_key: Hashable | None = None
    #: (labeling_form, union_form, method, options) — memoized canonical
    #: request fingerprint, shared with cache keys and SolveTask transport.
    fingerprint: tuple[Any, ...] | None = None

    kind: ClassVar[str] = "solve"

    @property
    def identity_key(self) -> Hashable:
        """The engine's cacheless grouping key: same objects, same solve."""
        return (id(self.model), self.union)

    @property
    def group_key(self) -> Hashable:
        """The key elimination and result counters group this node by."""
        return self.cache_key if self.cache_key is not None else self.identity_key

    @property
    def cacheable(self) -> bool:
        """True when the resolved solve may consult/populate a SolverCache."""
        return (
            self.cache_key is not None
            and (self.method or self.requested_method) not in APPROXIMATE_METHODS
        )


@dataclass
class TerminalNode(PlanNode):
    """Base of the per-request terminal nodes.

    ``items`` lists the request's sessions in selection order, each
    pointing at the :class:`SolveNode` that produces its probability — or
    ``None`` for sessions where the query is unsatisfiable (probability 0).
    The optimizer's elimination pass repoints ``items`` when solve nodes
    merge, uniformly for every terminal kind.
    """

    query_index: int = 0
    query: ConjunctiveQuery | None = None
    #: (session_key, solve node id | None), in session-selection order.
    items: list[tuple[SessionKey, int | None]] = field(default_factory=list)

    kind: ClassVar[str] = "terminal"

    def solve_ids(self) -> list[int]:
        """Distinct solve-node ids this request consumes, first-use order."""
        seen: list[int] = []
        for _, solve_id in self.items:
            if solve_id is not None and solve_id not in seen:
                seen.append(solve_id)
        return seen

    @property
    def lazy(self) -> bool:
        """True when this terminal demand-solves instead of running eagerly."""
        return False


@dataclass
class AggregateSessionsNode(TerminalNode):
    """Independent-session aggregation of one Boolean query:
    ``Pr(Q | D) = 1 - prod_i (1 - Pr(Q | s_i))``."""

    kind: ClassVar[str] = "aggregate_sessions"


@dataclass
class CountSessionsNode(TerminalNode):
    """Count-Session terminal: ``E[count(Q)] = sum_i Pr(Q | s_i)``."""

    kind: ClassVar[str] = "count_sessions"


@dataclass
class TopKSessionsNode(TerminalNode):
    """Most-Probable-Session terminal: the ``k`` best-supported sessions.

    With ``strategy="upper_bound"`` the terminal owns an *adaptive*
    frontier: its exclusive solve nodes are lazy (excluded from the eager
    frontier) and demanded in descending upper-bound order until the k-th
    best confirmed probability dominates every remaining bound — solves
    past that point never run.  A solve shared with any non-lazy terminal
    (e.g. a Count of the same query in the batch) stays eager, and the
    top-k loop consumes its already-resolved probability for free.
    """

    k: int = 1
    strategy: str = "upper_bound"
    n_edges: int = 1

    kind: ClassVar[str] = "top_k_sessions"

    @property
    def lazy(self) -> bool:
        return self.strategy == "upper_bound"


@dataclass
class AttributeAggregateNode(TerminalNode):
    """Attribute-aggregate terminal (Section 7): a statistic of a session
    attribute over the satisfying sessions, estimated from ``n_worlds``
    Bernoulli possible-world draws over the per-session probabilities.

    ``values`` holds the attribute value of every selected session, joined
    from ``relation.column`` at build time (so a missing attribute row
    fails at plan construction, before any solve runs).
    """

    relation: str = ""
    column: str = ""
    statistic: str = "mean"
    n_worlds: int = 10_000
    #: session key -> attribute value, for every key in ``items``.
    values: dict[SessionKey, float] = field(default_factory=dict)

    kind: ClassVar[str] = "attribute_aggregate"


@dataclass
class CombineQueriesNode(PlanNode):
    """The batch root: per-query aggregates combined into one BatchResult."""

    n_queries: int = 0

    kind: ClassVar[str] = "combine_queries"


class QueryPlan:
    """A buildable, rewritable, executable plan for one request or a batch.

    The plan owns its nodes (``nodes[node_id]``), an explicit execution
    order over the surviving solve frontier (``solve_order``), one
    :class:`TerminalNode` per request (``terminals`` — an
    :class:`AggregateSessionsNode` for Boolean queries, the aggregate-aware
    kinds for the rest), and the counters the optimizer passes maintain
    (``n_solves_planned``, ``n_solves_eliminated``, ``passes_applied``).
    ``optimize`` / ``execute`` / ``explain`` live in their own modules
    (:mod:`repro.plan.passes`, :mod:`repro.plan.execute`,
    :mod:`repro.plan.explain`); the convenience methods here delegate.

    ``requests`` holds the typed request objects the plan was built from
    (:mod:`repro.api.requests`); ``queries`` their underlying Boolean CQs,
    in request order.
    """

    def __init__(
        self,
        db: Any,
        requests: list[QueryRequest],
        method: str = "auto",
        options: dict[str, Any] | None = None,
        group_sessions: bool = True,
        session_limit: int | None = None,
    ) -> None:
        self.db = db
        self.requests = requests
        self.queries: list[ConjunctiveQuery] = [
            request.query for request in requests
        ]
        self.method = method
        self.options = dict(options or {})
        self.group_sessions = group_sessions
        self.session_limit = session_limit
        #: The auto-approx state-count budget is plan-level configuration,
        #: not a solver option: it is popped *unconditionally* so it never
        #: reaches a solver signature or perturbs a cache key, whatever
        #: method the plan was built with (it only takes effect under
        #: ``"auto-approx"``).
        budget = self.options.pop(APPROX_BUDGET_OPTION, DEFAULT_APPROX_BUDGET)
        self.approx_budget: float | None = (
            float(budget) if method == "auto-approx" else None
        )

        self.nodes: dict[int, PlanNode] = {}
        #: Solve-node ids in execution order (rewritten by the passes).
        self.solve_order: list[int] = []
        #: Per-request terminal node ids, in request order.  (Named for the
        #: historical Boolean-only shape, where every terminal was an
        #: AggregateSessionsNode; kept as the stable attribute name.)
        self.aggregates: list[int] = []
        self.combine: int | None = None

        self.passes_applied: list[str] = []
        self.n_solves_planned = 0
        self.n_solves_eliminated = 0
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction helpers (used by the builder and the passes)
    # ------------------------------------------------------------------

    def add(self, node: PlanNode) -> PlanNode:
        """Register a node built with a fresh id from :meth:`new_id`."""
        self.nodes[node.node_id] = node
        return node

    def new_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def solves(self) -> list[SolveNode]:
        """The surviving solve frontier, in execution order."""
        return [cast(SolveNode, self.nodes[node_id]) for node_id in self.solve_order]

    def aggregate_nodes(self) -> list[TerminalNode]:
        """The per-request terminal nodes, in request order."""
        return [cast(TerminalNode, self.nodes[node_id]) for node_id in self.aggregates]

    #: Alias reflecting the unified-API vocabulary.
    terminal_nodes = aggregate_nodes

    def stats(self) -> dict[str, int]:
        """The plan-level counters the serving layer reports."""
        return {
            "n_solves_planned": self.n_solves_planned,
            "n_solves_eliminated": self.n_solves_eliminated,
            "n_passes_applied": len(self.passes_applied),
        }

    # ------------------------------------------------------------------
    # Delegating conveniences
    # ------------------------------------------------------------------

    def optimize(
        self, passes: Sequence[Any] | None = None, canonical: bool | None = None
    ) -> "QueryPlan":
        """Apply the default (or given) pass pipeline in place."""
        from repro.plan.passes import optimize_plan

        optimized: QueryPlan = optimize_plan(self, passes=passes, canonical=canonical)
        return optimized

    def execute(self, **kwargs: Any) -> Any:
        """Run the plan; see :func:`repro.plan.execute.execute_plan`."""
        from repro.plan.execute import execute_plan

        return execute_plan(self, **kwargs)

    def explain(self, execution: Any = None) -> str:
        """Render the plan DAG with per-node cost annotations."""
        from repro.plan.explain import explain_plan

        rendered: str = explain_plan(self, execution=execution)
        return rendered

    def __repr__(self) -> str:
        return (
            f"QueryPlan(queries={self.n_queries}, solves={len(self.solve_order)}, "
            f"planned={self.n_solves_planned}, "
            f"eliminated={self.n_solves_eliminated}, "
            f"passes={self.passes_applied})"
        )
