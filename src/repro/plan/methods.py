"""The single method-resolution path shared by every layer.

Before the planner existed, ``"auto"`` was resolved in three places — the
solver dispatch, the query engine, and the cache-key module — which meant a
bug in any one of them could make an auto request and its explicit twin
disagree on cache keys or solver attribution.  This module is now the one
resolution point: the plan's method-resolution pass calls
:func:`resolve_solve_method` per solve node, and the legacy entry points
(:func:`repro.solvers.dispatch.resolve_method`,
:mod:`repro.service.keys`) delegate here.

Resolution is *cost-based*: for ``"auto"`` the applicable exact solvers are
ranked by the planner's DP state-count estimate
(:func:`repro.service.planner.estimate_solve_states`), ties broken by the
paper's specialization order (two-label < bipartite < general).  For the
solver classes' cost formulas this selection provably coincides with the
paper's structural dichotomy — the two-label and bipartite estimates share
one formula, and the general estimate dominates both (``prod(1+c_g) - 1 >=
sum(c_g)``) — so resolved methods, solver attributions, and cache keys are
bit-identical to the pre-planner behavior.  The lifted solver is annotated
(``lifted_hint``) when its estimate undercuts the general solver's, but is
never auto-picked: it remains an explicit request, keeping attributions
stable.

``"auto-approx"`` is the opt-in escape hatch for solves whose estimated
state count exceeds a budget (the ``approx_budget`` solver option,
default :data:`DEFAULT_APPROX_BUDGET`): such solves fall back to the
MIS-AMP adaptive estimator instead of grinding through an exact DP.  The
fallback is rng-driven, so auto-approx requires an ``rng`` whenever it
actually triggers, and fallen-back solves bypass the solver cache.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.patterns.union import PatternUnion

#: Methods whose solves draw from an rng.
APPROXIMATE_METHODS = ("mis_amp_lite", "mis_amp_adaptive", "rejection")

#: Method names the planner resolves itself (everything else is explicit).
AUTO_METHODS = ("auto", "auto-approx")

#: Exact solver names, in the paper's specialization (= efficiency) order.
EXACT_METHODS = ("two_label", "bipartite", "general", "lifted", "brute")

#: State-count budget above which ``"auto-approx"`` falls back to MIS-AMP.
#: Calibrated against the array-compiled DP engines (kernels/dp.py, see
#: BENCH_dp.json): at 10-24x the scalar throughput, exact DPs stay cheaper
#: than a converged MIS-AMP run up to an order of magnitude more states
#: than the original 5e6 setting.
DEFAULT_APPROX_BUDGET = 50_000_000.0

#: The approximate method ``"auto-approx"`` falls back to.
AUTO_APPROX_FALLBACK = "mis_amp_adaptive"

#: Solver-option key carrying a per-request auto-approx budget.  Consumed
#: by the planner (popped before options reach a solver).
APPROX_BUDGET_OPTION = "approx_budget"


def classic_choice(union: PatternUnion) -> str:
    """The paper's structural dichotomy: the most specialized applicable solver."""
    if union.is_two_label():
        return "two_label"
    if union.is_bipartite():
        return "bipartite"
    return "general"


def _candidate_costs(
    union: PatternUnion,
    labeling,
    model,
    options: Mapping[str, Any] | None,
) -> dict[str, float]:
    """State-count estimates of the applicable exact auto candidates."""
    # Deferred: service.planner imports the solver dispatch, which defers
    # back into this module for resolution.
    from repro.service.planner import estimate_solve_states

    candidates = []
    if union.is_two_label():
        candidates.append("two_label")
    if union.is_bipartite():
        candidates.append("bipartite")
    candidates.extend(["general", "lifted"])
    return {
        name: estimate_solve_states(
            model, labeling, union, name, dict(options or {})
        ).states
        for name in candidates
    }


def cost_based_choice(
    union: PatternUnion,
    labeling,
    model,
    options: Mapping[str, Any] | None = None,
) -> tuple[str, dict[str, float]]:
    """``"auto"`` resolved by comparing candidate cost estimates.

    Returns the chosen method plus the per-candidate estimates (attached to
    the solve node's annotations for ``explain``).  The lifted solver is
    costed but excluded from selection — see the module docstring.
    """
    costs = _candidate_costs(union, labeling, model, options)
    selectable = [name for name in costs if name != "lifted"]
    rank = {name: index for index, name in enumerate(EXACT_METHODS)}
    chosen = min(selectable, key=lambda name: (costs[name], rank[name]))
    return chosen, costs


def resolve_solve_method(
    union: PatternUnion,
    method: str = "auto",
    labeling=None,
    model=None,
    options: Mapping[str, Any] | None = None,
    approx_budget: float | None = None,
) -> str:
    """``method`` with the auto modes resolved to a concrete solver name.

    Explicit methods (exact or approximate) pass through unchanged.  With
    ``labeling`` and ``model`` available (the plan pass always provides
    them) ``"auto"`` resolves cost-based; without them it falls back to the
    structural dichotomy — the two agree by construction, so the cheap path
    is safe for callers that only hold a union
    (:mod:`repro.service.keys`, :func:`repro.solvers.dispatch.solve`).
    """
    if method == "auto":
        if labeling is None or model is None:
            return classic_choice(union)
        chosen, _ = cost_based_choice(union, labeling, model, options)
        return chosen
    if method == "auto-approx":
        exact = resolve_solve_method(union, "auto", labeling, model, options)
        if labeling is None or model is None:
            # Without a cost there is nothing to budget against; the plan
            # pass is the caller that decides the fallback.
            return exact
        from repro.service.planner import estimate_solve_states

        if approx_budget is None:
            approx_budget = float(
                (options or {}).get(APPROX_BUDGET_OPTION, DEFAULT_APPROX_BUDGET)
            )
        clean = {
            k: v for k, v in dict(options or {}).items()
            if k != APPROX_BUDGET_OPTION
        }
        states = estimate_solve_states(model, labeling, union, exact, clean).states
        return AUTO_APPROX_FALLBACK if states > approx_budget else exact
    return method
