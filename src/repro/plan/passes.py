"""The optimizer: a pass pipeline rewriting a :class:`QueryPlan` in place.

Five passes, applied in order by :func:`optimize_plan`:

1. :func:`simplify_unions` — flatten each solve's pattern union and drop
   canonically duplicate disjuncts (idempotent under union; duplicates
   inflate ``z`` and, for the general solver, double the
   inclusion–exclusion subsets).  :class:`~repro.patterns.union
   .PatternUnion` already dedups at construction, so this pass is the
   plan-level invariant check; it rewrites and annotates if anything
   slipped through (e.g. unions assembled by external code).
2. :func:`resolve_methods` — resolve every solve's method through the one
   shared path (:mod:`repro.plan.methods`): cost-based for ``"auto"``
   (provably the paper's dichotomy), budgeted MIS-AMP fallback for
   ``"auto-approx"``.
3. :func:`annotate_costs` — annotate every solve node with the planner's
   DP state-count estimate (:func:`repro.service.planner
   .estimate_solve_states`); consumed by the ordering pass, ``explain()``,
   and the LPT schedule of the execution backends.
4. :func:`eliminate_common_solves` — merge solve nodes that are the same
   request: by canonical cache key (``canonical=True``, subsuming the
   engine's Section 6.4 grouping *and* the service's batch-wide dedup
   dicts, across queries) or by object identity (``canonical=False``,
   the engine's cacheless behavior).  Merged nodes disappear from the
   frontier; their sessions repoint to the surviving representative.
   The repoint sweep is terminal-kind agnostic: a Count and a Probability
   (or TopK, or attribute Aggregate) of the same query share one merged
   solve, which is what makes mixed-kind batches of the unified API
   (:mod:`repro.api`) no more expensive than their hardest member.
5. :func:`order_solves` — reorder the surviving frontier largest-first
   (LPT): big solves start immediately on a worker pool instead of
   straggling.  Skipped when any solve is rng-driven — sampling results
   must consume the rng in first-occurrence session order to stay
   bit-identical to the sequential engine.

Every pass records itself in ``plan.passes_applied``; the elimination pass
also maintains ``plan.n_solves_eliminated``.  Optimized and unoptimized
plans produce bit-identical probabilities — the per-pass equivalence tests
pin exactly that.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.patterns.union import PatternUnion
from repro.plan.methods import (
    APPROXIMATE_METHODS,
    cost_based_choice,
    resolve_solve_method,
)
from repro.plan.nodes import CompileUnionNode, QueryPlan
from repro.service.keys import request_fingerprint, session_cache_key
from repro.service.planner import estimate_solve_states, largest_first_order

PlanPass = Callable[[QueryPlan], QueryPlan]


def simplify_union(union: PatternUnion) -> PatternUnion:
    """``union`` with canonically duplicate disjuncts dropped.

    Returns the same object when nothing changes, so downstream id-keyed
    memos (labelings, fingerprints) stay valid.
    """
    if union.z < 2:
        return union  # a single disjunct cannot hide a duplicate
    seen: set[tuple] = set()
    kept = []
    for pattern in union.patterns:
        form = pattern.canonical_form()
        if form in seen:
            continue
        seen.add(form)
        kept.append(pattern)
    if len(kept) == len(union.patterns):
        return union
    return PatternUnion(kept)


def simplify_unions(plan: QueryPlan) -> QueryPlan:
    """Pass 1: flatten + dedup identical disjuncts of every solve's union."""
    simplified: dict[int, PatternUnion] = {}
    n_dropped = 0
    for node in plan.solves():
        result = simplified.get(id(node.union))
        if result is None:
            result = simplify_union(node.union)
            simplified[id(node.union)] = result
        if result is not node.union:
            dropped = node.union.z - result.z
            node.annotations["n_disjuncts_dropped"] = dropped
            n_dropped += dropped
            node.union = result
    if n_dropped:
        for compile_node in plan.nodes.values():
            if isinstance(compile_node, CompileUnionNode):
                result = simplified.get(id(compile_node.union))
                if result is not None and result is not compile_node.union:
                    compile_node.annotations["n_disjuncts_dropped"] = (
                        compile_node.union.z - result.z
                    )
                    compile_node.union = result
    plan.passes_applied.append("simplify_unions")
    return plan


def resolve_methods(plan: QueryPlan) -> QueryPlan:
    """Pass 2: every solve's method through the single resolution path."""
    # Cost-based "auto" selection is model-independent for a fixed union
    # (the model multiplies every candidate's estimate equally), so the
    # choice memoizes per union object; "auto-approx" budgets per node
    # because mixtures multiply the state count by their component count.
    auto_memo: dict[int, tuple[str, dict[str, float]]] = {}
    for node in plan.solves():
        requested = node.requested_method
        if requested == "auto":
            memoized = auto_memo.get(id(node.union))
            if memoized is None:
                memoized = cost_based_choice(
                    node.union, node.labeling, node.model, node.options
                )
                auto_memo[id(node.union)] = memoized
            node.method, costs = memoized
            node.annotations["candidate_costs"] = costs
            if costs.get("lifted", float("inf")) < costs.get(
                "general", float("inf")
            ) and node.method == "general":
                node.annotations["lifted_hint"] = costs["lifted"]
        elif requested == "auto-approx":
            node.method = resolve_solve_method(
                node.union,
                "auto-approx",
                node.labeling,
                node.model,
                node.options,
                approx_budget=plan.approx_budget,
            )
            node.annotations["approx_budget"] = plan.approx_budget
        else:
            node.method = resolve_solve_method(node.union, requested)
    plan.passes_applied.append("resolve_methods")
    return plan


def annotate_costs(plan: QueryPlan) -> QueryPlan:
    """Pass 3: annotate every solve node with its DP state-count estimate."""
    for node in plan.solves():
        estimate = estimate_solve_states(
            node.model,
            node.labeling,
            node.union,
            node.method or node.requested_method,
            node.options,
        )
        node.cost = estimate.states
        node.annotations["cost"] = estimate.states
    plan.passes_applied.append("annotate_costs")
    return plan


def eliminate_common_solves(
    plan: QueryPlan, canonical: bool = True
) -> QueryPlan:
    """Pass 4: merge solve nodes that are the same request.

    ``canonical=True`` groups by the canonical session cache key — the key
    the shared :class:`~repro.service.cache.SolverCache` uses, so
    equal-content requests merge across sessions *and* across queries of a
    batch; ``canonical=False`` groups by object identity, matching the
    engine's cacheless grouping exactly (solver attributions included:
    identity grouping never conflates a plain model with its canonically
    equal single-component mixture).
    """
    if canonical:
        # The model-independent fingerprint is the expensive half of the
        # key; memoize it per (union object, resolved method).
        fingerprints: dict[tuple[int, str | None], tuple] = {}
        for node in plan.solves():
            memo_key = (id(node.union), node.method)
            fingerprint = fingerprints.get(memo_key)
            if fingerprint is None:
                fingerprint = request_fingerprint(
                    node.labeling,
                    node.union,
                    node.method or node.requested_method,
                    node.options,
                )
                fingerprints[memo_key] = fingerprint
            node.fingerprint = fingerprint
            node.cache_key = session_cache_key(
                node.model,
                node.labeling,
                node.union,
                node.method or node.requested_method,
                node.options,
                fingerprint=fingerprint,
            )

    representatives: dict = {}
    remap: dict[int, int] = {}
    surviving: list[int] = []
    for node in plan.solves():
        key = node.group_key
        keeper = representatives.get(key)
        if keeper is None:
            representatives[key] = node
            surviving.append(node.node_id)
            continue
        keeper.sessions.extend(node.sessions)
        keeper.annotations["n_merged"] = keeper.annotations.get("n_merged", 0) + 1
        remap[node.node_id] = keeper.node_id
        del plan.nodes[node.node_id]
    if remap:
        # One repoint sweep for all merges (per-merge sweeps are quadratic
        # in the session count of a large batch).
        for aggregate in plan.aggregate_nodes():
            aggregate.items = [
                (key, remap.get(solve_id, solve_id))
                for key, solve_id in aggregate.items
            ]
            aggregate.inputs = tuple(
                dict.fromkeys(
                    remap.get(node_id, node_id) for node_id in aggregate.inputs
                )
            )
    plan.solve_order = surviving
    plan.n_solves_eliminated += len(remap)
    plan.passes_applied.append("eliminate_common_solves")
    return plan


def order_solves(plan: QueryPlan) -> QueryPlan:
    """Pass 5: LPT-order the frontier by annotated cost (exact solves only).

    Sampling solves consume the rng in plan order, so any frontier with an
    rng-driven node keeps first-occurrence order — reordering would change
    which draws each solve receives and break bit-identical equivalence
    with the sequential engine.
    """
    solves = plan.solves()
    if any(
        (node.method or node.requested_method) in APPROXIMATE_METHODS
        for node in solves
    ):
        plan.passes_applied.append("order_solves(skipped:rng)")
        return plan
    costs = [node.cost if node.cost is not None else 0.0 for node in solves]
    plan.solve_order = [
        plan.solve_order[index] for index in largest_first_order(costs)
    ]
    plan.passes_applied.append("order_solves")
    return plan


def default_passes(
    plan: QueryPlan, canonical: bool = False
) -> list[PlanPass]:
    """The default pipeline for this plan's configuration."""
    passes: list[PlanPass] = [simplify_unions, resolve_methods, annotate_costs]
    if plan.group_sessions:
        passes.append(
            lambda p, _canonical=canonical: eliminate_common_solves(
                p, canonical=_canonical
            )
        )
    passes.append(order_solves)
    return passes


def optimize_plan(
    plan: QueryPlan,
    passes: "Iterable[PlanPass] | None" = None,
    canonical: bool | None = None,
) -> QueryPlan:
    """Apply the default (or an explicit) pass pipeline to ``plan``.

    ``canonical`` selects the grouping mode of common-solve elimination
    (see :func:`eliminate_common_solves`); it defaults to ``False``, the
    engine's cacheless behavior — the serving layer passes ``True``.
    """
    if passes is None:
        passes = default_passes(plan, canonical=bool(canonical))
    for plan_pass in passes:
        plan = plan_pass(plan)
    return plan
