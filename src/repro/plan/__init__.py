"""The query planner: an explicit plan IR with cost-based optimization.

Evaluation used to be a monolithic path inside :func:`repro.query.engine
.evaluate`, with the serving layer re-deriving its own dedup and ordering.
This package makes the plan explicit (the seam classic probabilistic-
database engines optimize through — Dalvi & Suciu's safe plans, Li &
Deshpande's consensus answers both rewrite plans, not evaluators):

* :mod:`repro.plan.nodes` — the typed DAG
  (``SelectSessions -> GroundSessions -> CompileUnion -> Solve ->
  AggregateSessions``, plus ``CombineQueries`` for batches);
* :mod:`repro.plan.build` — the logical builder, (queries, db) -> plan;
* :mod:`repro.plan.methods` — the single method-resolution path (cost-based
  ``"auto"``, budgeted ``"auto-approx"``);
* :mod:`repro.plan.passes` — the optimizer pipeline (union simplification,
  method resolution, cost annotation, common-solve elimination, LPT
  ordering);
* :mod:`repro.plan.execute` — the executor running the frontier through
  the unchanged solver/cache stack, bit-identical to the pre-plan engine;
* :mod:`repro.plan.explain` — the ``explain()`` renderer behind
  ``python -m repro explain``.

Typical use::

    from repro.plan import build_plan, optimize_plan, execute_plan

    plan = build_plan(queries, db).optimize(canonical=True)
    print(plan.explain())
    execution = plan.execute(cache=cache, backend=backend)

See DESIGN.md, "The query planner".
"""

from repro.plan.build import build_plan
from repro.plan.execute import (
    AttributeOutcome,
    PlanExecution,
    TopKOutcome,
    assemble_query_result,
    assemble_results,
    execute_plan,
    session_upper_bound,
)
from repro.plan.explain import explain_plan
from repro.plan.methods import (
    APPROX_BUDGET_OPTION,
    AUTO_APPROX_FALLBACK,
    DEFAULT_APPROX_BUDGET,
    classic_choice,
    cost_based_choice,
    resolve_solve_method,
)
from repro.plan.nodes import (
    AggregateSessionsNode,
    AttributeAggregateNode,
    CombineQueriesNode,
    CompileUnionNode,
    CountSessionsNode,
    GroundSessionsNode,
    PlanNode,
    QueryPlan,
    SelectSessionsNode,
    SolveNode,
    TerminalNode,
    TopKSessionsNode,
)
from repro.plan.passes import (
    annotate_costs,
    default_passes,
    eliminate_common_solves,
    optimize_plan,
    order_solves,
    resolve_methods,
    simplify_union,
    simplify_unions,
)

__all__ = [
    "APPROX_BUDGET_OPTION",
    "AUTO_APPROX_FALLBACK",
    "DEFAULT_APPROX_BUDGET",
    "AggregateSessionsNode",
    "AttributeAggregateNode",
    "AttributeOutcome",
    "CombineQueriesNode",
    "CompileUnionNode",
    "CountSessionsNode",
    "GroundSessionsNode",
    "PlanExecution",
    "PlanNode",
    "QueryPlan",
    "SelectSessionsNode",
    "SolveNode",
    "TerminalNode",
    "TopKOutcome",
    "TopKSessionsNode",
    "annotate_costs",
    "assemble_query_result",
    "assemble_results",
    "build_plan",
    "session_upper_bound",
    "classic_choice",
    "cost_based_choice",
    "default_passes",
    "eliminate_common_solves",
    "execute_plan",
    "explain_plan",
    "optimize_plan",
    "order_solves",
    "resolve_methods",
    "resolve_solve_method",
    "simplify_union",
    "simplify_unions",
]
