"""The plan executor: run a (optimized) :class:`QueryPlan` to results.

Execution is deliberately thin — all the intelligence is in the plan.  The
executor walks the surviving solve frontier in plan order, consults the
shared :class:`~repro.service.cache.SolverCache` for cacheable nodes, runs
what remains, and assembles per-query :class:`~repro.query.engine
.QueryResult` objects through the engine's own aggregation
(:func:`repro.query.engine.aggregate_sessions`) — which is what keeps plan
execution bit-identical to the pre-plan evaluate path.

Two modes:

* **in-process** (``backend=None``) — each solve runs through
  :func:`repro.query.engine.solve_session` on the live model/labeling/union
  objects, with the caller's rng; this is the engine's single-query path;
* **backend** (``backend=`` an :class:`~repro.service.executors
  .ExecutionBackend`) — exact solves are frozen into picklable
  :class:`~repro.service.executors.SolveTask` descriptors (reusing the
  memoized canonical fingerprints) and shipped to the ``serial`` /
  ``thread`` / ``process`` pool in the plan's LPT order; rng-driven solves
  (the ``auto-approx`` fallback) stay in-process, in plan order, so their
  draws are deterministic given the rng.  This is the serving layer's
  batch path.

Aggregate-aware terminals (the unified query API, :mod:`repro.api`) add a
third phase after the eager frontier: :class:`~repro.plan.nodes
.TopKSessionsNode` terminals with the upper-bound strategy own *lazy*
solves — excluded from the eager frontier, demanded in descending
upper-bound order, and skipped entirely once the k-th best confirmed
probability dominates every remaining bound (the paper's top-k pruning) —
and :class:`~repro.plan.nodes.AttributeAggregateNode` terminals draw their
Bernoulli possible-world sample.  Terminals run in request order, so rng
consumption is deterministic.  A lazy solve shared with any eager terminal
(a Count and a TopK of the same query in one batch) stays eager and the
top-k loop reads its probability for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.plan.methods import (
    APPROXIMATE_METHODS,
    AUTO_METHODS,
    resolve_solve_method,
)
from repro.plan.nodes import (
    AttributeAggregateNode,
    QueryPlan,
    SolveNode,
    TerminalNode,
    TopKSessionsNode,
)
from repro.query.engine import (
    QueryResult,
    SessionEvaluation,
    aggregate_sessions,
    solve_session,
)
from repro.rim.mixture import MallowsMixture
from repro.service.cache import SolverCache
from repro.service.executors import ExecutionBackend, make_solve_task
from repro.solvers.upper_bound import upper_bound_probability


@dataclass
class TopKOutcome:
    """What a top-k terminal's adaptive frontier actually did."""

    #: (session_key, probability), sorted best-first (full confirmed set).
    confirmed: list[tuple] = field(default_factory=list)
    #: (session_key, solve node id | None) in exact-evaluation order.
    evaluated: list[tuple] = field(default_factory=list)
    n_exact: int = 0
    n_upper_bound: int = 0
    upper_bound_seconds: float = 0.0
    exact_seconds: float = 0.0


@dataclass
class AttributeOutcome:
    """The possible-world estimates of one attribute-aggregate terminal."""

    expectation: float = 0.0
    probability_any: float = 0.0
    weighted_average: float = 0.0


@dataclass
class PlanExecution:
    """The raw outcome of executing a plan's solve frontier."""

    #: solve node id -> (probability, solver name)
    resolved: dict[int, tuple[float, str]] = field(default_factory=dict)
    #: measured wall seconds per freshly executed solve node
    seconds_by_solve: dict[int, float] = field(default_factory=dict)
    #: node ids actually solved in this run (not served by the cache)
    fresh: set[int] = field(default_factory=set)
    #: node ids served by the shared SolverCache
    cache_served: set[int] = field(default_factory=set)
    #: solve node ids excluded from the eager frontier (top-k demand pool)
    lazy: set[int] = field(default_factory=set)
    #: top-k terminal node id -> its adaptive-frontier outcome
    topk: dict[int, TopKOutcome] = field(default_factory=dict)
    #: attribute-aggregate terminal node id -> its estimates
    attribute: dict[int, AttributeOutcome] = field(default_factory=dict)
    #: name of the execution backend ("" for the in-process mode)
    backend: str = ""
    seconds: float = 0.0

    @property
    def n_executed(self) -> int:
        return len(self.fresh)

    @property
    def n_cache_hits(self) -> int:
        return len(self.cache_served)


def _node_method(plan: QueryPlan, node: SolveNode) -> str:
    """The node's concrete method, resolving lazily on unoptimized plans.

    Lazy resolution must see the plan-level ``approx_budget`` (the builder
    pops it out of the solver options), or an unoptimized ``auto-approx``
    plan would silently budget against the default instead of the caller's
    value and diverge from its optimized twin.
    """
    if node.method is not None:
        return node.method
    if node.requested_method in AUTO_METHODS:
        return resolve_solve_method(
            node.union,
            node.requested_method,
            node.labeling,
            node.model,
            node.options,
            approx_budget=plan.approx_budget,
        )
    return node.requested_method


def _lazy_solve_ids(plan: QueryPlan) -> set[int]:
    """Solve ids demanded only by lazy (upper-bound top-k) terminals."""
    lazy: set[int] = set()
    eager: set[int] = set()
    for terminal in plan.aggregate_nodes():
        target = lazy if terminal.lazy else eager
        target.update(terminal.solve_ids())
    return lazy - eager


def execute_plan(
    plan: QueryPlan,
    cache: SolverCache | None = None,
    rng: "np.random.Generator | None" = None,
    backend: "ExecutionBackend | None" = None,
) -> PlanExecution:
    """Run the plan's solve frontier; see the module docstring for modes."""
    started = time.perf_counter()
    execution = PlanExecution(backend=backend.name if backend else "")
    execution.lazy = _lazy_solve_ids(plan)
    pending: list[SolveNode] = []
    for node in plan.solves():
        if node.node_id in execution.lazy:
            continue
        if cache is not None and node.cacheable:
            cached = cache.get(node.cache_key)
            if cached is not None:
                execution.resolved[node.node_id] = cached
                execution.cache_served.add(node.node_id)
                continue
        pending.append(node)

    if backend is None:
        _run_in_process(plan, pending, execution, cache, rng)
    else:
        _run_on_backend(plan, pending, execution, backend, cache, rng)

    _run_terminals(plan, execution, cache, rng)

    execution.seconds = time.perf_counter() - started
    return execution


def _run_in_process(
    plan: QueryPlan,
    pending: list[SolveNode],
    execution: PlanExecution,
    cache: SolverCache | None,
    rng,
) -> None:
    for node in pending:
        _demand_solve(plan, node, execution, cache, rng)


def _serve_from_tier(
    node: SolveNode, execution: PlanExecution, value
) -> float:
    """Record a shared-tier answer as a cache-served node."""
    pair = (float(value[0]), value[1])
    execution.resolved[node.node_id] = pair
    execution.cache_served.add(node.node_id)
    return pair[0]


def _demand_solve(
    plan: QueryPlan,
    node: SolveNode,
    execution: PlanExecution,
    cache: SolverCache | None,
    rng,
) -> float:
    """The node's probability — already-resolved, cache-served, or fresh."""
    resolved = execution.resolved.get(node.node_id)
    if resolved is not None:
        return resolved[0]
    owns_flight = False
    if cache is not None and node.cacheable:
        cached = cache.get(node.cache_key)
        if cached is not None:
            execution.resolved[node.node_id] = cached
            execution.cache_served.add(node.node_id)
            return cached[0]
        # A shared-tier cache (repro.service.shard) supports fleet-wide
        # single-flight: claim the key, or wait out another worker's
        # in-flight solve instead of duplicating it.  Plain caches don't
        # have the surface and solve immediately, as before.
        claim = getattr(cache, "claim", None)
        if claim is not None:
            status, value = claim(node.cache_key)
            if status == "value":
                return _serve_from_tier(node, execution, value)
            if status == "wait":
                waited = cache.wait_flight(node.cache_key)
                if waited is not None:
                    return _serve_from_tier(node, execution, waited)
                # The owner abandoned the flight; fall through and solve
                # locally (no claim held — the publish below still lands).
            owns_flight = status == "claimed"
    solve_started = time.perf_counter()
    try:
        probability, solver_name = solve_session(
            node.model,
            node.labeling,
            node.union,
            method=_node_method(plan, node),
            rng=rng,
            **node.options,
        )
    except BaseException:
        if owns_flight:
            cache.release_flight(node.cache_key)
        raise
    execution.seconds_by_solve[node.node_id] = (
        time.perf_counter() - solve_started
    )
    execution.resolved[node.node_id] = (probability, solver_name)
    execution.fresh.add(node.node_id)
    if cache is not None and node.cacheable:
        cache.put(node.cache_key, (probability, solver_name))
    return probability


def _run_on_backend(
    plan: QueryPlan,
    pending: list[SolveNode],
    execution: PlanExecution,
    backend: ExecutionBackend,
    cache: SolverCache | None,
    rng,
) -> None:
    exact = [
        n for n in pending if _node_method(plan, n) not in APPROXIMATE_METHODS
    ]
    sampled = [
        n for n in pending if _node_method(plan, n) in APPROXIMATE_METHODS
    ]

    # Fleet-wide single-flight (shared-tier caches only): claim every
    # cacheable exact node up front.  Keys another fleet member is already
    # solving drop out of this worker's task list; after our own tasks
    # land we collect their published answers instead of recomputing.
    claim = getattr(cache, "claim", None) if cache is not None else None
    waiting: list[SolveNode] = []
    if claim is not None:
        owned: list[SolveNode] = []
        for node in exact:
            if not node.cacheable:
                owned.append(node)
                continue
            status, value = claim(node.cache_key)
            if status == "value":
                _serve_from_tier(node, execution, value)
            elif status == "wait":
                waiting.append(node)
            else:
                owned.append(node)
        exact = owned

    tasks = [
        make_solve_task(
            node.model,
            node.labeling,
            node.union,
            _node_method(plan, node),
            node.options,
            cost=node.cost or 0.0,
            # The memoized fingerprint already holds the canonical labeling
            # and union forms; don't re-freeze the expensive half.
            labeling_form=node.fingerprint[0] if node.fingerprint else None,
            union_form=node.fingerprint[1] if node.fingerprint else None,
        )
        for node in exact
    ]
    try:
        outcomes = backend.run(tasks)
    except BaseException:
        if claim is not None:
            # Don't strand fleet waiters on claims we will never publish.
            for node in exact:
                if node.cacheable:
                    cache.release_flight(node.cache_key)
        raise
    fresh_pairs: list[tuple[Hashable, tuple[float, str]]] = []
    for node, outcome in zip(exact, outcomes):
        execution.resolved[node.node_id] = outcome.value
        execution.seconds_by_solve[node.node_id] = outcome.seconds
        execution.fresh.add(node.node_id)
        if cache is not None and node.cacheable:
            fresh_pairs.append((node.cache_key, outcome.value))
    if cache is not None and fresh_pairs:
        # One call so a persistent tier can flush the batch in a single
        # transaction instead of one commit per solve (and a shared tier
        # publishes the claimed flights, waking fleet waiters).
        cache.put_many(fresh_pairs)

    # Collect answers another fleet member was solving when we claimed.
    # An abandoned flight (its owner died) degrades to a local solve.
    for node in waiting:
        waited = cache.wait_flight(node.cache_key)
        if waited is not None:
            _serve_from_tier(node, execution, waited)
        else:
            _demand_solve(plan, node, execution, cache, rng)

    # rng-driven fallbacks (auto-approx) run in-process, in plan order.
    _run_in_process(plan, sampled, execution, cache=None, rng=rng)


# ----------------------------------------------------------------------
# Aggregate-aware terminals
# ----------------------------------------------------------------------


def session_upper_bound(model, labeling, union, n_edges: int) -> float:
    """Upper bound of ``Pr(Q | s)``; mixtures marginalize per component."""
    if isinstance(model, MallowsMixture):
        bounds = [
            upper_bound_probability(
                component, labeling, union, n_edges=n_edges
            ).probability
            for component in model.components
        ]
        return model.marginalize(bounds)
    return upper_bound_probability(
        model, labeling, union, n_edges=n_edges
    ).probability


def _run_terminals(
    plan: QueryPlan,
    execution: PlanExecution,
    cache: SolverCache | None,
    rng,
) -> None:
    """Run the adaptive/rng-consuming terminals, in request order."""
    for terminal in plan.aggregate_nodes():
        if isinstance(terminal, TopKSessionsNode):
            execution.topk[terminal.node_id] = _run_topk(
                plan, terminal, execution, cache, rng
            )
        elif isinstance(terminal, AttributeAggregateNode):
            execution.attribute[terminal.node_id] = _run_attribute(
                terminal, execution, rng
            )


def _run_topk(
    plan: QueryPlan,
    terminal: TopKSessionsNode,
    execution: PlanExecution,
    cache: SolverCache | None,
    rng,
) -> TopKOutcome:
    outcome = TopKOutcome()

    def probability_of(solve_id: "int | None") -> float:
        if solve_id is None:
            return 0.0
        return _demand_solve(
            plan, plan.nodes[solve_id], execution, cache, rng
        )

    if terminal.strategy == "naive":
        # Every solve is eager in this strategy; score all sessions.
        exact_started = time.perf_counter()
        for key, solve_id in terminal.items:
            outcome.confirmed.append((key, probability_of(solve_id)))
            outcome.evaluated.append((key, solve_id))
        outcome.exact_seconds = time.perf_counter() - exact_started
        outcome.n_exact = len(terminal.items)
        outcome.confirmed.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return outcome

    # --- upper-bound strategy: the paper's top-k pruning ---------------
    ub_started = time.perf_counter()
    bound_memo: dict[int, float] = {}
    bounded: list[tuple[float, tuple, "int | None"]] = []
    for key, solve_id in terminal.items:
        if solve_id is None:
            bounded.append((0.0, key, None))
            continue
        bound = bound_memo.get(solve_id)
        if bound is None:
            node = plan.nodes[solve_id]
            bound = session_upper_bound(
                node.model, node.labeling, node.union, terminal.n_edges
            )
            bound_memo[solve_id] = bound
        bounded.append((bound, key, solve_id))
    outcome.upper_bound_seconds = time.perf_counter() - ub_started
    outcome.n_upper_bound = len(bounded)
    bounded.sort(key=lambda triple: (-triple[0], repr(triple[1])))

    exact_started = time.perf_counter()
    confirmed = outcome.confirmed
    k = terminal.k
    for bound, key, solve_id in bounded:
        if len(confirmed) >= k:
            kth_best = sorted((p for _, p in confirmed), reverse=True)[k - 1]
            if kth_best >= bound:
                break  # no remaining session can beat the current top-k
        confirmed.append((key, probability_of(solve_id)))
        outcome.evaluated.append((key, solve_id))
        outcome.n_exact += 1
    outcome.exact_seconds = time.perf_counter() - exact_started
    confirmed.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return outcome


def _run_attribute(
    terminal: AttributeAggregateNode,
    execution: PlanExecution,
    rng,
) -> AttributeOutcome:
    """The Section-7 possible-world estimate over resolved probabilities.

    Reproduces the historical ``aggregate_session_attribute`` computation
    exactly — array shapes, clamping, and rng consumption included — so the
    legacy envelope stays bit-identical.  Without a caller rng the draws
    come from a fresh ``default_rng(0)`` per terminal, matching the old
    per-call default.
    """
    probabilities = np.array(
        [
            execution.resolved[solve_id][0] if solve_id is not None else 0.0
            for _, solve_id in terminal.items
        ]
    )
    values = np.array([terminal.values[key] for key, _ in terminal.items])
    weighted_total = float(probabilities @ values)
    probability_mass = float(probabilities.sum())
    weighted_average = (
        weighted_total / probability_mass if probability_mass > 0 else 0.0
    )

    local_rng = rng if rng is not None else np.random.default_rng(0)
    draws = (
        local_rng.random((terminal.n_worlds, len(terminal.items)))
        < probabilities
    )
    any_satisfied = draws.any(axis=1)
    if terminal.statistic == "mean":
        counts = draws.sum(axis=1)
        sums = draws @ values
        with np.errstate(invalid="ignore"):
            world_values = np.where(
                counts > 0, sums / np.maximum(counts, 1), 0.0
            )
        satisfied_values = world_values[any_satisfied]
    else:
        satisfied_values = (draws @ values)[any_satisfied]
    expectation = (
        float(satisfied_values.mean()) if len(satisfied_values) else 0.0
    )
    return AttributeOutcome(
        expectation=expectation,
        probability_any=float(any_satisfied.mean()),
        weighted_average=weighted_average,
    )


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------


def classify_executed_items(
    plan: QueryPlan,
    execution: PlanExecution,
    items,
) -> tuple[list[SessionEvaluation], set, set[int], set[int]]:
    """Fold ``(session_key, solve_id | None)`` pairs into result bookkeeping.

    Returns ``(per_session, group_keys, fresh_ids, served_ids)`` — the one
    classification both the Boolean assembly and the unified API's
    per-kind assembly (:mod:`repro.api.evaluate`) share, so the counter
    semantics cannot drift between kinds.  A solve id that was never
    executed (pruned by a lazy top-k terminal) raises a descriptive error:
    such plans must be assembled per kind, from the terminal outcomes.
    """
    per_session: list[SessionEvaluation] = []
    group_keys: set[Hashable] = set()
    fresh_ids: set[int] = set()
    served_ids: set[int] = set()
    for session_key, solve_id in items:
        if solve_id is None:
            per_session.append(
                SessionEvaluation(session_key, 0.0, "unsatisfiable")
            )
            continue
        resolved = execution.resolved.get(solve_id)
        if resolved is None:
            raise ValueError(
                f"solve #{solve_id} was never executed — it was pruned by "
                "an upper-bound top-k terminal; assemble such plans with "
                "repro.api.assemble_answers, which reads the terminal "
                "outcomes instead of the solve frontier"
            )
        probability, solver_name = resolved
        group_keys.add(plan.nodes[solve_id].group_key)
        if solve_id in execution.fresh:
            fresh_ids.add(solve_id)
        elif solve_id in execution.cache_served:
            served_ids.add(solve_id)
        per_session.append(
            SessionEvaluation(session_key, probability, solver_name)
        )
    return per_session, group_keys, fresh_ids, served_ids


def fresh_solve_seconds(execution: PlanExecution, fresh_ids) -> float:
    """Wall time of the fresh solves a terminal consumed (batch path)."""
    return sum(
        execution.seconds_by_solve.get(node_id, 0.0) for node_id in fresh_ids
    )


def assemble_query_result(
    plan: QueryPlan,
    execution: PlanExecution,
    terminal: TerminalNode,
    batched: bool = False,
    with_cache: bool = False,
) -> QueryResult:
    """One terminal's sessions folded into the engine's QueryResult shape.

    The counters reproduce the pre-plan semantics exactly: per query,
    ``n_solver_calls`` counts the solves executed fresh for it,
    ``n_groups`` the distinct solve groups it references, and
    ``stats["cache_hits"]`` the groups served by the shared cache (plus
    batch-shared solves in the batch path); in the batch path ``seconds``
    is the measured wall time of the fresh solves the query consumed.
    """
    per_session, group_keys, fresh_ids, served_ids = classify_executed_items(
        plan, execution, terminal.items
    )
    if batched:
        stats = {
            "batched": True,
            "cache_hits": len(group_keys) - len(fresh_ids),
        }
        seconds = fresh_solve_seconds(execution, fresh_ids)
    else:
        stats = {"cache_hits": len(served_ids)} if with_cache else {}
        seconds = execution.seconds
    return QueryResult(
        probability=aggregate_sessions(per_session),
        per_session=per_session,
        n_sessions=len(per_session),
        n_solver_calls=len(fresh_ids),
        n_groups=len(group_keys),
        grouped=True if batched else plan.group_sessions,
        method=plan.method,
        seconds=seconds,
        stats=stats,
    )


def assemble_results(
    plan: QueryPlan,
    execution: PlanExecution,
    batched: bool = False,
    with_cache: bool = False,
) -> list[QueryResult]:
    """Per-query results via the engine's shared aggregation.

    Boolean-plan assembly: every terminal folds into a
    :class:`~repro.query.engine.QueryResult` (probability and count
    terminals share the session shape).  The unified API assembles the
    kind-specific envelopes on top — see
    :func:`repro.api.evaluate.assemble_answers`.
    """
    return [
        assemble_query_result(
            plan, execution, terminal, batched=batched, with_cache=with_cache
        )
        for terminal in plan.aggregate_nodes()
    ]
