"""The plan executor: run a (optimized) :class:`QueryPlan` to results.

Execution is deliberately thin — all the intelligence is in the plan.  The
executor walks the surviving solve frontier in plan order, consults the
shared :class:`~repro.service.cache.SolverCache` for cacheable nodes, runs
what remains, and assembles per-query :class:`~repro.query.engine
.QueryResult` objects through the engine's own aggregation
(:func:`repro.query.engine.aggregate_sessions`) — which is what keeps plan
execution bit-identical to the pre-plan evaluate path.

Two modes:

* **in-process** (``backend=None``) — each solve runs through
  :func:`repro.query.engine.solve_session` on the live model/labeling/union
  objects, with the caller's rng; this is the engine's single-query path;
* **backend** (``backend=`` an :class:`~repro.service.executors
  .ExecutionBackend`) — exact solves are frozen into picklable
  :class:`~repro.service.executors.SolveTask` descriptors (reusing the
  memoized canonical fingerprints) and shipped to the ``serial`` /
  ``thread`` / ``process`` pool in the plan's LPT order; rng-driven solves
  (the ``auto-approx`` fallback) stay in-process, in plan order, so their
  draws are deterministic given the rng.  This is the serving layer's
  batch path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.plan.methods import (
    APPROXIMATE_METHODS,
    AUTO_METHODS,
    resolve_solve_method,
)
from repro.plan.nodes import QueryPlan, SolveNode
from repro.query.engine import (
    QueryResult,
    SessionEvaluation,
    aggregate_sessions,
    solve_session,
)
from repro.service.cache import SolverCache
from repro.service.executors import ExecutionBackend, make_solve_task


@dataclass
class PlanExecution:
    """The raw outcome of executing a plan's solve frontier."""

    #: solve node id -> (probability, solver name)
    resolved: dict[int, tuple[float, str]] = field(default_factory=dict)
    #: measured wall seconds per freshly executed solve node
    seconds_by_solve: dict[int, float] = field(default_factory=dict)
    #: node ids actually solved in this run (not served by the cache)
    fresh: set[int] = field(default_factory=set)
    #: node ids served by the shared SolverCache
    cache_served: set[int] = field(default_factory=set)
    #: name of the execution backend ("" for the in-process mode)
    backend: str = ""
    seconds: float = 0.0

    @property
    def n_executed(self) -> int:
        return len(self.fresh)

    @property
    def n_cache_hits(self) -> int:
        return len(self.cache_served)


def _node_method(plan: QueryPlan, node: SolveNode) -> str:
    """The node's concrete method, resolving lazily on unoptimized plans.

    Lazy resolution must see the plan-level ``approx_budget`` (the builder
    pops it out of the solver options), or an unoptimized ``auto-approx``
    plan would silently budget against the default instead of the caller's
    value and diverge from its optimized twin.
    """
    if node.method is not None:
        return node.method
    if node.requested_method in AUTO_METHODS:
        return resolve_solve_method(
            node.union,
            node.requested_method,
            node.labeling,
            node.model,
            node.options,
            approx_budget=plan.approx_budget,
        )
    return node.requested_method


def execute_plan(
    plan: QueryPlan,
    cache: SolverCache | None = None,
    rng: "np.random.Generator | None" = None,
    backend: "ExecutionBackend | None" = None,
) -> PlanExecution:
    """Run the plan's solve frontier; see the module docstring for modes."""
    started = time.perf_counter()
    execution = PlanExecution(backend=backend.name if backend else "")
    pending: list[SolveNode] = []
    for node in plan.solves():
        if cache is not None and node.cacheable:
            cached = cache.get(node.cache_key)
            if cached is not None:
                execution.resolved[node.node_id] = cached
                execution.cache_served.add(node.node_id)
                continue
        pending.append(node)

    if backend is None:
        _run_in_process(plan, pending, execution, cache, rng)
    else:
        _run_on_backend(plan, pending, execution, backend, cache, rng)

    execution.seconds = time.perf_counter() - started
    return execution


def _run_in_process(
    plan: QueryPlan,
    pending: list[SolveNode],
    execution: PlanExecution,
    cache: SolverCache | None,
    rng,
) -> None:
    for node in pending:
        solve_started = time.perf_counter()
        probability, solver_name = solve_session(
            node.model,
            node.labeling,
            node.union,
            method=_node_method(plan, node),
            rng=rng,
            **node.options,
        )
        execution.seconds_by_solve[node.node_id] = (
            time.perf_counter() - solve_started
        )
        execution.resolved[node.node_id] = (probability, solver_name)
        execution.fresh.add(node.node_id)
        if cache is not None and node.cacheable:
            cache.put(node.cache_key, (probability, solver_name))


def _run_on_backend(
    plan: QueryPlan,
    pending: list[SolveNode],
    execution: PlanExecution,
    backend: ExecutionBackend,
    cache: SolverCache | None,
    rng,
) -> None:
    exact = [
        n for n in pending if _node_method(plan, n) not in APPROXIMATE_METHODS
    ]
    sampled = [
        n for n in pending if _node_method(plan, n) in APPROXIMATE_METHODS
    ]

    tasks = [
        make_solve_task(
            node.model,
            node.labeling,
            node.union,
            _node_method(plan, node),
            node.options,
            cost=node.cost or 0.0,
            # The memoized fingerprint already holds the canonical labeling
            # and union forms; don't re-freeze the expensive half.
            labeling_form=node.fingerprint[0] if node.fingerprint else None,
            union_form=node.fingerprint[1] if node.fingerprint else None,
        )
        for node in exact
    ]
    outcomes = backend.run(tasks)
    fresh_pairs: list[tuple[Hashable, tuple[float, str]]] = []
    for node, outcome in zip(exact, outcomes):
        execution.resolved[node.node_id] = outcome.value
        execution.seconds_by_solve[node.node_id] = outcome.seconds
        execution.fresh.add(node.node_id)
        if cache is not None and node.cacheable:
            fresh_pairs.append((node.cache_key, outcome.value))
    if cache is not None and fresh_pairs:
        # One call so a persistent tier can flush the batch in a single
        # transaction instead of one commit per solve.
        cache.put_many(fresh_pairs)

    # rng-driven fallbacks (auto-approx) run in-process, in plan order.
    _run_in_process(plan, sampled, execution, cache=None, rng=rng)


def assemble_results(
    plan: QueryPlan,
    execution: PlanExecution,
    batched: bool = False,
    with_cache: bool = False,
) -> list[QueryResult]:
    """Per-query results via the engine's shared aggregation.

    The counters reproduce the pre-plan semantics exactly: per query,
    ``n_solver_calls`` counts the solves executed fresh for it,
    ``n_groups`` the distinct solve groups it references, and
    ``stats["cache_hits"]`` the groups served by the shared cache (plus
    batch-shared solves in the batch path); in the batch path ``seconds``
    is the measured wall time of the fresh solves the query consumed.
    """
    results: list[QueryResult] = []
    for aggregate in plan.aggregate_nodes():
        per_session: list[SessionEvaluation] = []
        group_keys: set[Hashable] = set()
        fresh_ids: set[int] = set()
        served_ids: set[int] = set()
        for session_key, solve_id in aggregate.items:
            if solve_id is None:
                per_session.append(
                    SessionEvaluation(session_key, 0.0, "unsatisfiable")
                )
                continue
            node = plan.nodes[solve_id]
            probability, solver_name = execution.resolved[solve_id]
            group_keys.add(node.group_key)
            if solve_id in execution.fresh:
                fresh_ids.add(solve_id)
            elif solve_id in execution.cache_served:
                served_ids.add(solve_id)
            per_session.append(
                SessionEvaluation(session_key, probability, solver_name)
            )
        if batched:
            stats = {
                "batched": True,
                "cache_hits": len(group_keys) - len(fresh_ids),
            }
            seconds = sum(
                execution.seconds_by_solve.get(node_id, 0.0)
                for node_id in fresh_ids
            )
        else:
            stats = {"cache_hits": len(served_ids)} if with_cache else {}
            seconds = execution.seconds
        results.append(
            QueryResult(
                probability=aggregate_sessions(per_session),
                per_session=per_session,
                n_sessions=len(per_session),
                n_solver_calls=len(fresh_ids),
                n_groups=len(group_keys),
                grouped=True if batched else plan.group_sessions,
                method=plan.method,
                seconds=seconds,
                stats=stats,
            )
        )
    return results
