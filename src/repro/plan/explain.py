"""``plan.explain()``: render the optimized DAG with per-node costs.

The renderer is deliberately plain text (stable across runs for the golden
test): one section per query showing the logical pipeline top-down, the
surviving solve frontier with resolved methods, state-count estimates and
session fan-in, and a footer with the applied passes and the planned /
eliminated / frontier counters.  Costs print in engineering notation
(``~1.2e+03``) so the output is deterministic across platforms.
"""

from __future__ import annotations

from repro.plan.nodes import (
    AttributeAggregateNode,
    CompileUnionNode,
    CountSessionsNode,
    GroundSessionsNode,
    QueryPlan,
    SelectSessionsNode,
    SolveNode,
    TerminalNode,
    TopKSessionsNode,
)


def _cost(value: "float | None") -> str:
    if value is None:
        return "?"
    return f"~{value:.1e}"


def _query_text(plan: QueryPlan, query_index: int) -> str:
    request = plan.requests[query_index]
    # Prefixed request kinds render their grammar form (COUNT ..., TOPK k
    # ..., AGG stat(R.col) ...); a plain probability stays the bare query.
    return request.describe()


def explain_plan(plan: QueryPlan, execution=None) -> str:
    """Render ``plan`` (optionally with execution outcomes) as text."""
    lines: list[str] = []
    n = plan.n_queries
    lines.append(
        f"== query plan: {n} quer{'y' if n == 1 else 'ies'}, "
        f"method={plan.method}, "
        f"group_sessions={'on' if plan.group_sessions else 'off'} =="
    )

    selects = {
        node.query_index: node
        for node in plan.nodes.values()
        if isinstance(node, SelectSessionsNode)
    }
    grounds = {
        node.query_index: node
        for node in plan.nodes.values()
        if isinstance(node, GroundSessionsNode)
    }
    compiles: dict[int, list[CompileUnionNode]] = {}
    for node in plan.nodes.values():
        if isinstance(node, CompileUnionNode):
            compiles.setdefault(node.query_index, []).append(node)

    described: set[int] = set()
    for aggregate in plan.aggregate_nodes():
        query_index = aggregate.query_index
        lines.append(f"q{query_index}: {_query_text(plan, query_index)}")
        select = selects.get(query_index)
        if select is not None:
            lines.append(
                f"  SelectSessions[{select.p_relation}]"
                f"  sessions {select.n_candidates} -> {select.n_selected}"
            )
        ground = grounds.get(query_index)
        if ground is not None:
            lines.append(
                f"  GroundSessions  satisfiable={ground.n_satisfiable}"
                f" unsatisfiable={ground.n_unsatisfiable}"
            )
        for compile_node in sorted(
            compiles.get(query_index, ()), key=lambda c: c.node_id
        ):
            dropped = compile_node.annotations.get("n_disjuncts_dropped")
            extra = f" ({dropped} duplicate disjuncts dropped)" if dropped else ""
            lines.append(
                f"  CompileUnion #{compile_node.node_id}"
                f"  z={compile_node.z} sessions={compile_node.n_sessions}{extra}"
            )
        lines.extend(_solve_lines(plan, aggregate, described, execution))
        lines.append(_terminal_line(aggregate, execution))
    if plan.combine is not None:
        lines.append(f"CombineQueries  {plan.n_queries} queries")

    lines.append(
        "passes: "
        + (", ".join(plan.passes_applied) if plan.passes_applied else "(none)")
    )
    lines.append(
        f"solves: planned={plan.n_solves_planned}"
        f" eliminated={plan.n_solves_eliminated}"
        f" frontier={len(plan.solve_order)}"
    )
    if execution is not None:
        lines.append(
            f"executed: {execution.n_executed} fresh,"
            f" {execution.n_cache_hits} cache-served"
            + (f", backend={execution.backend}" if execution.backend else "")
        )
    return "\n".join(lines)


def _terminal_line(terminal: TerminalNode, execution) -> str:
    """Render the per-request terminal node, by kind."""
    n_sessions = len(terminal.items)
    if isinstance(terminal, CountSessionsNode):
        return (
            "  CountSessions  E[count(Q)] = sum(p_s)"
            f" over {n_sessions} sessions"
        )
    if isinstance(terminal, TopKSessionsNode):
        line = (
            f"  TopKSessions  k={terminal.k} strategy={terminal.strategy}"
            f" n_edges={terminal.n_edges} over {n_sessions} sessions"
        )
        outcome = (
            execution.topk.get(terminal.node_id)
            if execution is not None
            else None
        )
        if outcome is not None:
            line += (
                f"  [exact={outcome.n_exact}"
                f" pruned={n_sessions - outcome.n_exact}]"
            )
        return line
    if isinstance(terminal, AttributeAggregateNode):
        return (
            f"  AttributeAggregate  E[{terminal.statistic}"
            f"({terminal.relation}.{terminal.column}) | count(Q) > 0]"
            f" n_worlds={terminal.n_worlds} over {n_sessions} sessions"
        )
    return (
        "  AggregateSessions  Pr(Q|D) = 1 - prod(1 - p_s)"
        f" over {n_sessions} sessions"
    )


def _solve_lines(
    plan: QueryPlan,
    aggregate: AggregateSessionsNode,
    described: set[int],
    execution,
) -> list[str]:
    lines: list[str] = []
    for solve_id in aggregate.solve_ids():
        node = plan.nodes[solve_id]
        assert isinstance(node, SolveNode)
        if solve_id in described:
            lines.append(f"  Solve #{solve_id}  (shared; see above)")
            continue
        described.add(solve_id)
        method = node.method or node.requested_method
        query_indices = sorted({index for index, _ in node.sessions})
        shared = (
            "  shared_by=" + ",".join(f"q{index}" for index in query_indices)
            if len(query_indices) > 1
            else ""
        )
        outcome = ""
        if execution is not None:
            if solve_id in execution.cache_served:
                outcome = "  [cache]"
            elif solve_id in execution.fresh:
                _, solver_name = execution.resolved[solve_id]
                outcome = f"  [solved: {solver_name}]"
            elif solve_id not in execution.resolved:
                # A lazy top-k solve the bound pruning never demanded.
                outcome = "  [pruned]"
        hint = (
            "  (lifted estimated cheaper)"
            if "lifted_hint" in node.annotations
            else ""
        )
        lines.append(
            f"  Solve #{solve_id}  method={method}"
            f" cost{_cost(node.cost)} sessions={len(node.sessions)}"
            f"{shared}{outcome}{hint}"
        )
    return lines
