"""A small asyncio HTTP/1.1 layer over :class:`~repro.server.app.ServerApp`.

Deliberately minimal and dependency-free (the toolchain bakes in no HTTP
framework): request line + headers + ``Content-Length`` body, JSON in and
out, keep-alive honored.  Everything interesting — coalescing, admission,
metrics, the error contract — lives in the app; this module only parses
bytes and writes them back.

Graceful shutdown (:meth:`HTTPServer.stop`) follows the drain contract of
DESIGN.md Section 11: stop accepting connections, flush and finish every
in-flight coalescing window and batch (accepted requests still get their
answers), then close lingering idle connections.
"""

from __future__ import annotations

import asyncio
import json

from repro.server.app import ServerApp
from repro.server.config import ServerConfig

#: Reason phrases for the statuses the app emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Refuse request bodies beyond this size (a batch of ~10k requests).
MAX_BODY_BYTES = 8 * 1024 * 1024


class HTTPServer:
    """One listening socket serving a :class:`ServerApp`."""

    def __init__(self, app: ServerApp, host: str, port: int):
        self.app = app
        self.host = host
        self.port = port
        self._server: "asyncio.Server | None" = None
        self._connections: "set[asyncio.Task]" = set()

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` becomes the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        """Stop accepting, drain in-flight work, close idle connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Finish every accepted request: open windows flush, in-flight
        # batches run to completion, waiters get their responses written.
        await self.app.shutdown()
        if self._connections:
            # What remains is idle keep-alive readers; give completed
            # handlers a beat to flush their responses, then close.
            done, pending = await asyncio.wait(self._connections, timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _on_connection(self, reader, writer) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        peer_id = peer[0] if peer else "unknown"
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, parse_error, body = request
                client_id = headers.get("x-client-id", peer_id)
                if parse_error is not None:
                    status, payload, extra = 400, parse_error, {}
                else:
                    status, payload, extra = await self.app.handle(
                        method, path, body, client_id
                    )
                keep_alive = (
                    parse_error is None
                    and headers.get("connection", "").lower() != "close"
                )
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # the client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader):
        """Parse one request; None on EOF, an error body on bad syntax."""
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return "GET", "/", {}, {"error": "malformed request line",
                                    "status": 400}, None
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        path = target.split("?", 1)[0]
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return method, path, headers, {
                "error": "invalid Content-Length", "status": 400}, None
        if length > MAX_BODY_BYTES:
            return method, path, headers, {
                "error": f"request body over {MAX_BODY_BYTES} bytes",
                "status": 413}, None
        raw = await reader.readexactly(length) if length else b""
        if not raw:
            return method, path, headers, None, None
        try:
            return method, path, headers, None, json.loads(raw)
        except json.JSONDecodeError as error:
            return method, path, headers, {
                "error": f"invalid JSON body: {error}", "status": 400}, None

    async def _write_response(
        self, writer, status: int, payload: dict, extra: dict,
        keep_alive: bool,
    ) -> None:
        # Payloads are protocol-encoded (jsonable/encode_*) before here.
        # repro: allow[wire-purity] single transport serialization point
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
        )
        for name, value in extra.items():
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()


async def run_server(
    config: ServerConfig, ready=None, app: "ServerApp | None" = None
) -> None:
    """Start a server, run until shutdown is requested, drain, exit.

    ``ready`` (if given) is called with the started :class:`HTTPServer`
    once the socket is bound — the CLI prints the address there, tests
    grab the ephemeral port.  Shutdown comes from ``POST /shutdown`` or a
    signal handler setting ``app.shutdown_requested``.
    """
    if app is None:
        app = ServerApp(config)
    server = HTTPServer(app, config.host, config.port)
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await app.shutdown_requested.wait()
    finally:
        await server.stop()
