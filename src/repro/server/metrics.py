"""Latency and coalescing metrics of the serving front-end.

The registry keeps two kinds of state:

* **latency reservoir** — the most recent ``sample_size`` request
  latencies (seconds, measured admission-to-response on the event loop);
  percentiles (p50/p95/p99) are computed nearest-rank over the sample on
  demand, so ``/stats`` is cheap and the memory bound is fixed;
* **counters** — requests by kind and outcome (answered / rejected /
  failed), coalesced batches with their planned/eliminated solve counts,
  and per-window coalescing effect;
* **gauges** — registered providers evaluated at snapshot time, used by
  the app to surface state owned elsewhere (the service's cache-tier
  depth: disk hits/misses, per-shard hit/occupancy counters) without the
  registry holding a reference cycle or a stale copy.

The headline derived number is the **coalesce ratio**: coalesced requests
per planned batch.  Ratio 1.0 means every request was planned alone
(request-at-a-time serving); anything above 1.0 is traffic the window
merged, and ``n_solves_eliminated`` counts the solves the planner's
common-solve elimination then removed from live traffic.  See DESIGN.md
Section 11 for the metric definitions.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable


def percentile(sample: "list[float]", fraction: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0.0 when empty)."""
    if not sample:
        return 0.0
    ordered = sorted(sample)
    rank = max(0, min(len(ordered) - 1, round(fraction * len(ordered)) - 1))
    return ordered[rank]


class MetricsRegistry:
    """Thread-safe counters + latency reservoir behind ``/stats``."""

    def __init__(self, sample_size: int = 4096):
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=sample_size)
        self._n_requests = 0
        self._n_answered = 0
        self._n_rejected = 0
        self._n_failed = 0
        self._by_kind: dict[str, int] = {}
        self._n_batches = 0
        self._n_coalesced_requests = 0
        self._largest_batch = 0
        self._n_distinct_solves = 0
        self._n_solves_planned = 0
        self._n_solves_eliminated = 0
        self._batch_seconds = 0.0
        self._gauges: dict[str, Callable[[], object]] = {}

    def register_gauge(
        self, name: str, provider: "Callable[[], object]"
    ) -> None:
        """Attach a named provider evaluated on every :meth:`snapshot`.

        The provider returns any JSON-safe value (scalars or nested
        dicts); it is called *outside* the registry lock, so it may take
        its own locks (the cache tiers do).  A provider that raises is
        reported as ``{"error": ...}`` instead of breaking ``/stats``.
        """
        with self._lock:
            self._gauges[name] = provider

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------

    def observe_request(self, kind: str) -> None:
        """A request was admitted (before its outcome is known)."""
        with self._lock:
            self._n_requests += 1
            self._by_kind[kind] = self._by_kind.get(kind, 0) + 1

    def observe_answer(self, seconds: float) -> None:
        """A request was answered after ``seconds`` on the server."""
        with self._lock:
            self._n_answered += 1
            self._latencies.append(seconds)

    def observe_rejection(self) -> None:
        """A request was turned away by admission control (429)."""
        with self._lock:
            self._n_rejected += 1

    def observe_failure(self) -> None:
        """A request failed with an evaluation or protocol error."""
        with self._lock:
            self._n_failed += 1

    def observe_batch(
        self,
        n_requests: int,
        n_distinct_solves: int,
        n_solves_planned: int,
        n_solves_eliminated: int,
        seconds: float,
    ) -> None:
        """One coalesced window was planned and executed as a batch."""
        with self._lock:
            self._n_batches += 1
            self._n_coalesced_requests += n_requests
            self._largest_batch = max(self._largest_batch, n_requests)
            self._n_distinct_solves += n_distinct_solves
            self._n_solves_planned += n_solves_planned
            self._n_solves_eliminated += n_solves_eliminated
            self._batch_seconds += seconds

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def coalesce_ratio(self) -> float:
        """Coalesced requests per batch (1.0 = request-at-a-time)."""
        with self._lock:
            if not self._n_batches:
                return 0.0
            return self._n_coalesced_requests / self._n_batches

    def snapshot(self) -> dict:
        """The JSON-safe ``/stats`` payload of this registry."""
        with self._lock:
            gauges = dict(self._gauges)
            sample = list(self._latencies)
            ratio = (
                self._n_coalesced_requests / self._n_batches
                if self._n_batches
                else 0.0
            )
            payload = {
                "requests": {
                    "total": self._n_requests,
                    "answered": self._n_answered,
                    "rejected": self._n_rejected,
                    "failed": self._n_failed,
                    "by_kind": dict(self._by_kind),
                },
                "latency_seconds": {
                    "count": len(sample),
                    "p50": percentile(sample, 0.50),
                    "p95": percentile(sample, 0.95),
                    "p99": percentile(sample, 0.99),
                    "mean": sum(sample) / len(sample) if sample else 0.0,
                    "max": max(sample) if sample else 0.0,
                },
                "coalescing": {
                    "n_batches": self._n_batches,
                    "n_coalesced_requests": self._n_coalesced_requests,
                    "coalesce_ratio": ratio,
                    "largest_batch": self._largest_batch,
                    "n_distinct_solves": self._n_distinct_solves,
                    "n_solves_planned": self._n_solves_planned,
                    "n_solves_eliminated": self._n_solves_eliminated,
                    "batch_seconds": self._batch_seconds,
                },
            }
        # Providers run outside the lock: they may take their own (cache
        # tier) locks, and a slow one must not block the counters.
        for name, provider in gauges.items():
            try:
                payload[name] = provider()
            except Exception as error:
                payload[name] = {"error": f"{type(error).__name__}: {error}"}
        return payload
