"""The serving application: routes -> coalescer/service, errors -> status.

:class:`ServerApp` is the transport-independent core of the front-end: it
owns the database, the :class:`~repro.service.service.PreferenceService`,
the :class:`~repro.server.coalescer.RequestCoalescer`, admission control,
and metrics, and maps each route to them.  The HTTP layer
(:mod:`repro.server.http`) only parses/serializes; tests can drive the
app directly with plain dicts.

Routes:

* ``POST /answer`` — one request (string or typed form); coalesced with
  concurrent requests into one planned batch;
* ``POST /answer_many`` — a pre-assembled batch; planned as-is, off the
  event loop, sharing the cache with coalesced traffic;
* ``POST /explain`` — the cost-annotated optimized plan, not executed;
* ``GET /stats`` — latency percentiles, coalescing effect, admission and
  cache counters;
* ``GET /healthz`` — liveness;
* ``POST /shutdown`` — begin graceful shutdown (drain, then exit).

Error contract: protocol and evaluation errors are 400 with the parser's
caret excerpt where applicable; admission overflow is 429 with
``Retry-After``; submissions during drain are 503; anything unexpected is
a 500 that never leaks a stack trace over the wire.
"""

from __future__ import annotations

import asyncio
import time

from repro.query.classify import UnsupportedQueryError
from repro.server.admission import AdmissionController, AdmissionRejected
from repro.server.coalescer import CoalescerClosed, RequestCoalescer
from repro.server.config import ServerConfig
from repro.server.metrics import MetricsRegistry
from repro.server.protocol import (
    ProtocolError,
    decode_batch,
    decode_request,
    encode_answer,
    encode_batch,
    error_body,
    validate_options,
)

#: (status, payload, extra headers) — what every handler returns.
Response = tuple[int, dict, dict]


class ServerApp:
    """The transport-independent serving front-end."""

    def __init__(
        self, config: ServerConfig, db=None, service=None, stream=None
    ):
        if (
            config.method == "auto-approx"
            and config.solver_options.get("approx_budget") is None
        ):
            raise ValueError(
                "a server with method 'auto-approx' needs an explicit "
                "approx_budget in its solver options"
            )
        self.config = config
        self.db = db if db is not None else config.build_database()
        self.service = (
            service if service is not None else config.build_service()
        )
        self.metrics = MetricsRegistry(config.latency_sample_size)
        self.admission = AdmissionController(
            max_pending_per_client=config.max_pending_per_client,
            max_pending_total=config.max_pending_total,
            retry_after_seconds=max(1.0, 2 * config.window_seconds),
        )
        self.coalescer = RequestCoalescer(
            self.service,
            self.db,
            window_seconds=config.window_seconds,
            max_batch=config.max_batch,
            metrics=self.metrics,
            seed=config.seed,
        )
        # Cache-tier depth (disk hits/misses, per-shard hit/occupancy)
        # reaches /stats as a registered gauge: the service owns the
        # tiers, the registry evaluates them at snapshot time.  Guarded
        # so injected stand-in services without the surface still serve.
        tier_depth = getattr(self.service, "tier_depth", None)
        if tier_depth is not None:
            self.metrics.register_gauge("cache_tiers", tier_depth)
        # A deployment maintaining standing queries over a mutable
        # database (repro.stream) surfaces the same way: count, max
        # staleness in generations, and invalidations applied.
        self.stream = stream
        if stream is not None:
            self.metrics.register_gauge("standing_queries", stream.stats)
        self.shutdown_requested = asyncio.Event()
        self._started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def handle(
        self, method: str, path: str, body, client_id: str
    ) -> Response:
        """Dispatch one parsed request; never raises."""
        try:
            if method == "POST" and path == "/answer":
                return await self.handle_answer(body, client_id)
            if method == "POST" and path == "/answer_many":
                return await self.handle_answer_many(body, client_id)
            if method == "POST" and path == "/explain":
                return await self.handle_explain(body)
            if method == "GET" and path == "/stats":
                return 200, self.handle_stats(), {}
            if method == "GET" and path == "/healthz":
                return 200, {"status": "ok"}, {}
            if method == "POST" and path == "/shutdown":
                self.shutdown_requested.set()
                return 200, {"draining": True}, {}
            return 404, error_body(f"no route {method} {path}", 404), {}
        except AdmissionRejected as error:
            self.metrics.observe_rejection()
            retry_after = str(int(error.retry_after))
            return (
                429,
                error_body(str(error), 429, retry_after=error.retry_after),
                {"Retry-After": retry_after},
            )
        except ProtocolError as error:
            self.metrics.observe_failure()
            return error.status, error_body(str(error), error.status), {}
        except CoalescerClosed as error:
            return 503, error_body(str(error), 503), {}
        except (UnsupportedQueryError, ValueError, KeyError) as error:
            # KeyError: e.g. an AGG request over a missing relation/column
            # fails at plan-build time (the attribute join).
            self.metrics.observe_failure()
            return (
                400,
                error_body(f"cannot evaluate request: {error}", 400),
                {},
            )
        except Exception as error:  # the wire never sees a stack trace
            self.metrics.observe_failure()
            return (
                500,
                error_body(
                    f"internal error: {type(error).__name__}: {error}", 500
                ),
                {},
            )

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    async def handle_answer(self, body, client_id: str) -> Response:
        """One request through admission, the coalescing window, and out."""
        request, options = decode_request(body)
        self.admission.acquire(client_id)
        started = time.monotonic()
        try:
            self.metrics.observe_request(request.kind)
            answer = await self.coalescer.submit(
                request, method=options.pop("method", None), **options
            )
            self.metrics.observe_answer(time.monotonic() - started)
            return 200, encode_answer(answer), {}
        finally:
            self.admission.release(client_id)

    async def handle_answer_many(self, body, client_id: str) -> Response:
        """A pre-assembled batch, planned as one DAG off the event loop."""
        requests, options = decode_batch(body)
        self.admission.acquire(client_id)
        started = time.monotonic()
        try:
            for request in requests:
                self.metrics.observe_request(request.kind)
            batch = await self.coalescer.execute_many(
                requests, method=options.pop("method", None), **options
            )
            self.metrics.observe_answer(time.monotonic() - started)
            return 200, encode_batch(batch), {}
        finally:
            self.admission.release(client_id)

    async def handle_explain(self, body) -> Response:
        """The cost-annotated optimized plan, rendered but not executed."""
        if isinstance(body, dict) and isinstance(body.get("requests"), list):
            requests, options = decode_batch(body)
        else:
            request, options = decode_request(body)
            requests = [request]
        method = options.pop("method", None)
        validate_options({"method": method} if method else {})

        def build():
            from repro.plan import build_plan, optimize_plan

            plan = build_plan(
                requests,
                self.db,
                method=method if method is not None else self.service.method,
                options=dict(options),
            )
            optimize_plan(plan, canonical=True)
            return plan.explain()

        loop = asyncio.get_running_loop()
        text = await loop.run_in_executor(None, build)
        return (
            200,
            {
                "explain": text,
                "requests": [request.describe() for request in requests],
            },
            {},
        )

    def handle_stats(self) -> dict:
        """The ``/stats`` payload: metrics + admission + coalescer + cache."""
        payload = self.metrics.snapshot()
        payload["admission"] = self.admission.snapshot()
        payload["coalescer"] = self.coalescer.snapshot()
        payload["cache"] = {
            name: float(value)
            for name, value in self.service.stats().items()
        }
        payload["server"] = {
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "dataset": self.config.dataset,
            "method": self.config.method,
            "backend": self.config.backend,
            "window_seconds": self.config.window_seconds,
            "max_batch": self.config.max_batch,
        }
        return payload

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def shutdown(self) -> None:
        """Drain in-flight windows and batches, then release the worker."""
        await self.coalescer.drain()
        self.coalescer.close()
