"""Per-client admission control: bounded queues, explicit backpressure.

Every request holds one admission slot from arrival to response.  Slots
are bounded twice — per client and server-wide — and overflow is answered
immediately with :class:`AdmissionRejected` (the HTTP layer renders it as
429 with a ``Retry-After`` hint) instead of queueing without bound: under
a traffic spike the server keeps answering what it admitted at its normal
latency and sheds the rest, rather than growing an invisible queue whose
every entry times out.

Clients are identified by the ``X-Client-Id`` header when present, else
by peer address (:func:`repro.server.http` passes it down).  The
controller is synchronous and lock-guarded — admission decisions happen
on the event loop and must never block.
"""

from __future__ import annotations

import math
import threading


class AdmissionRejected(Exception):
    """The request was shed; ``retry_after`` is the client's backoff hint."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionController:
    """Bounded per-client and total in-flight request slots.

    ``retry_after_seconds`` is the backoff hint attached to rejections; the
    app wires it to a couple of coalescing windows, the time by which the
    current batch has drained in the common case.
    """

    def __init__(
        self,
        max_pending_per_client: int = 32,
        max_pending_total: int = 256,
        retry_after_seconds: float = 1.0,
    ):
        self.max_pending_per_client = max_pending_per_client
        self.max_pending_total = max_pending_total
        self.retry_after_seconds = retry_after_seconds
        self._lock = threading.Lock()
        self._pending: dict[str, int] = {}
        self._total = 0

    def acquire(self, client_id: str) -> None:
        """Take one slot for ``client_id`` or raise :class:`AdmissionRejected`."""
        with self._lock:
            if self._total >= self.max_pending_total:
                raise AdmissionRejected(
                    f"server at capacity ({self._total} requests in flight); "
                    f"retry after {self._retry_after():g}s",
                    retry_after=self._retry_after(),
                )
            pending = self._pending.get(client_id, 0)
            if pending >= self.max_pending_per_client:
                raise AdmissionRejected(
                    f"client {client_id!r} at capacity ({pending} requests "
                    f"in flight); retry after {self._retry_after():g}s",
                    retry_after=self._retry_after(),
                )
            self._pending[client_id] = pending + 1
            self._total += 1

    def release(self, client_id: str) -> None:
        """Return the slot taken by :meth:`acquire` (response sent)."""
        with self._lock:
            pending = self._pending.get(client_id, 0)
            if pending <= 1:
                self._pending.pop(client_id, None)
            else:
                self._pending[client_id] = pending - 1
            self._total = max(0, self._total - 1)

    def _retry_after(self) -> float:
        # Whole seconds (HTTP Retry-After is integral), at least one.
        return float(max(1, math.ceil(self.retry_after_seconds)))

    def pending(self, client_id: "str | None" = None) -> int:
        """In-flight count for one client (or server-wide with ``None``)."""
        with self._lock:
            if client_id is None:
                return self._total
            return self._pending.get(client_id, 0)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "in_flight": self._total,
                "clients": len(self._pending),
                "max_pending_per_client": self.max_pending_per_client,
                "max_pending_total": self.max_pending_total,
            }
