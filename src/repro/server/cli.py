"""``python -m repro serve`` — run the coalescing HTTP front-end.

Example::

    python -m repro serve --port 8642 --sessions 100 --window-ms 10
    curl -s -X POST http://127.0.0.1:8642/answer \\
        -d '{"request": "COUNT P(v; m1; m2), M(m1, 'Comedy', _, _, _)"}'
    curl -s http://127.0.0.1:8642/stats
    curl -s -X POST http://127.0.0.1:8642/shutdown

``--port 0`` binds an ephemeral port; the bound address is printed (and
flushed) as the first output line, so scripted callers — the CI smoke,
the benchmark — can parse it.  SIGINT/SIGTERM trigger the same graceful
drain as ``POST /shutdown``.
"""

from __future__ import annotations

import asyncio
import signal
import sys


def add_serve_parser(subparsers) -> None:
    """Register the ``serve`` subcommand on the ``python -m repro`` parser."""
    parser = subparsers.add_parser(
        "serve",
        help="run the asyncio HTTP front-end with request coalescing",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8642,
        help="listening port (0 = ephemeral; the bound address is printed)",
    )
    parser.add_argument(
        "--dataset", choices=("crowdrank", "polls"), default="crowdrank",
        help="database to serve (default: a seeded CrowdRank)",
    )
    parser.add_argument(
        "--sessions", type=int, default=50, help="CrowdRank sessions"
    )
    parser.add_argument(
        "--movies", type=int, default=8, help="CrowdRank catalog size"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--method", default="auto",
        help="default solver method (requests may override per call)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default="thread",
        help="execution backend for each batch's distinct solves",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for distinct solves "
        "(default: min(8, cpu_count); 1 = serial)",
    )
    parser.add_argument(
        "--window-ms", type=float, default=10.0, metavar="MS",
        help="coalescing window in milliseconds (0 = request-at-a-time)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="flush a window early at this many coalesced requests",
    )
    parser.add_argument(
        "--max-pending-per-client", type=int, default=32,
        help="admission bound per client (429 + Retry-After on overflow)",
    )
    parser.add_argument(
        "--max-pending-total", type=int, default=256,
        help="server-wide admission bound",
    )
    parser.add_argument(
        "--capacity", type=int, default=4096, help="solver-cache capacity"
    )
    parser.add_argument(
        "--cache-db", default=None, metavar="PATH",
        help="SQLite file for the persistent cache tier (with "
        "--cache-shards: the stem of the per-shard files)",
    )
    parser.add_argument(
        "--cache-shards", type=int, default=None, metavar="N",
        help="shard the warm cache tier N ways (repro.service.shard)",
    )
    parser.add_argument(
        "--shard-address", default=None, metavar="HOST:PORT",
        help="join a running ShardCacheServer as one worker of a fleet "
        "(excludes --cache-db/--cache-shards)",
    )
    parser.add_argument(
        "--approx-budget", type=float, default=None, metavar="STATES",
        help="state-count budget, required when --method auto-approx",
    )


def config_from_args(args):
    """Build the :class:`~repro.server.config.ServerConfig` of the flags."""
    from repro.server.config import ServerConfig

    solver_options = {}
    if args.approx_budget is not None:
        solver_options["approx_budget"] = args.approx_budget
    return ServerConfig(
        host=args.host,
        port=args.port,
        dataset=args.dataset,
        sessions=args.sessions,
        movies=args.movies,
        seed=args.seed,
        method=args.method,
        backend=args.backend,
        max_workers=args.workers,
        cache_capacity=args.capacity,
        cache_db=args.cache_db,
        cache_shards=args.cache_shards,
        shard_address=args.shard_address,
        solver_options=solver_options,
        window_seconds=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        max_pending_per_client=args.max_pending_per_client,
        max_pending_total=args.max_pending_total,
    )


def run_serve(args) -> int:
    """Entry point of the ``serve`` subcommand."""
    from repro.server.app import ServerApp
    from repro.server.http import run_server

    try:
        config = config_from_args(args)
        app = ServerApp(config)
    except ValueError as error:
        print(f"cannot start server: {error}", file=sys.stderr)
        return 2

    def ready(server):
        print(f"serving on {server.address}", flush=True)
        print(
            f"dataset={config.dataset} sessions={config.sessions} "
            f"method={config.method} backend={config.backend} "
            f"window={config.window_seconds * 1000:g}ms "
            f"max_batch={config.max_batch}",
            flush=True,
        )

    async def main():
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, app.shutdown_requested.set
                )
            except NotImplementedError:  # platforms without signal support
                pass
        await run_server(config, ready=ready, app=app)

    asyncio.run(main())
    print("server drained and stopped", flush=True)
    return 0
