"""The JSON wire protocol of the serving front-end.

Requests arrive as JSON bodies in either of two shapes:

* **string form** — ``{"request": "COUNT P(v; m1; m2), ..."}``: the
  extended request grammar of :mod:`repro.api.requests`, exactly what the
  ``python -m repro query`` CLI accepts;
* **typed form** — ``{"kind": "top_k", "query": "P(v; m1; m2)", "k": 3}``:
  one field per request-dataclass attribute (``k``/``strategy``/
  ``n_edges`` for top-k, ``relation``/``column``/``statistic``/
  ``n_worlds`` for aggregates).

Either shape may carry evaluation options (``method``, ``approx_budget``,
``session_limit``).  Malformed bodies raise :class:`ProtocolError`, which
the HTTP layer renders as a 400 with the parser's caret excerpt intact —
a syntax error over the wire looks exactly like one at the CLI.

Answers are encoded losslessly but JSON-safely: tuples (session keys,
rankings) become lists, NumPy scalars become Python numbers.  Values
round-trip through ``json.dumps`` without a custom encoder.
"""

from __future__ import annotations

from typing import Any

from repro.api.requests import (
    Aggregate,
    Count,
    Probability,
    QueryRequest,
    TopK,
    parse_request,
)
from repro.query.parser import QuerySyntaxError, parse_query

#: Evaluation options a request body may carry next to the request itself.
OPTION_FIELDS = ("method", "approx_budget", "session_limit")

#: Typed-form fields, per kind, beyond the common ``query``.
KIND_FIELDS: dict[str, tuple[str, ...]] = {
    "probability": (),
    "count": (),
    "top_k": ("k", "strategy", "n_edges"),
    "aggregate": ("relation", "column", "statistic", "n_worlds"),
}

_KIND_CLASSES: dict[str, type[QueryRequest]] = {
    "probability": Probability,
    "count": Count,
    "top_k": TopK,
    "aggregate": Aggregate,
}


class ProtocolError(ValueError):
    """A malformed or rejected request body, rendered as an HTTP 4xx."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def known_methods() -> tuple[str, ...]:
    """Every method name a request may ask for."""
    from repro.plan.methods import APPROXIMATE_METHODS, AUTO_METHODS
    from repro.solvers.dispatch import available_methods

    return tuple(AUTO_METHODS) + tuple(available_methods()) + tuple(
        APPROXIMATE_METHODS
    )


def validate_options(options: dict[str, Any]) -> dict[str, Any]:
    """Check the evaluation options of a body; returns them normalized.

    ``method="auto-approx"`` without an explicit ``approx_budget`` is
    rejected here with a 400: the budgeted fallback is rng-driven and the
    server has no per-request seed to attribute its draws to, so an
    unbudgeted auto-approx would either silently behave like ``auto`` or
    blow up mid-batch with a stack trace.  Clients must state the budget
    they want.
    """
    method = options.get("method")
    if method is not None:
        if not isinstance(method, str) or method not in known_methods():
            raise ProtocolError(
                f"unknown method {method!r}; "
                f"available: {', '.join(known_methods())}"
            )
        if method == "auto-approx" and options.get("approx_budget") is None:
            raise ProtocolError(
                "method 'auto-approx' requires an explicit approx_budget "
                "(the state-count threshold of the MIS-AMP fallback)"
            )
    budget = options.get("approx_budget")
    if budget is not None:
        if not isinstance(budget, (int, float)) or budget <= 0:
            raise ProtocolError(
                f"approx_budget must be a positive number, got {budget!r}"
            )
    limit = options.get("session_limit")
    if limit is not None:
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise ProtocolError(
                f"session_limit must be a positive integer, got {limit!r}"
            )
    return options


def _extract_options(body: dict[str, Any]) -> dict[str, Any]:
    return validate_options(
        {
            name: body[name]
            for name in OPTION_FIELDS
            if body.get(name) is not None
        }
    )


def decode_request(body: Any) -> tuple[QueryRequest, dict[str, Any]]:
    """A JSON body -> (typed request, evaluation options).

    Accepts the string form (``{"request": ...}``), the typed form
    (``{"kind": ..., "query": ...}``), or a bare string.  Raises
    :class:`ProtocolError` on anything else; query syntax errors keep
    their caret excerpt.
    """
    if isinstance(body, str):
        body = {"request": body}
    if not isinstance(body, dict):
        raise ProtocolError(
            "expected a JSON object request body, got "
            f"{type(body).__name__}"
        )
    options = _extract_options(body)

    if "request" in body:
        text = body["request"]
        if not isinstance(text, str):
            raise ProtocolError(
                "'request' must be request text, got "
                f"{type(text).__name__}"
            )
        try:
            return parse_request(text), options
        except QuerySyntaxError as error:
            raise ProtocolError(f"invalid request text: {error}") from error

    if "kind" in body:
        kind = body["kind"]
        if kind not in _KIND_CLASSES:
            raise ProtocolError(
                f"unknown request kind {kind!r}; "
                f"expected one of {', '.join(sorted(_KIND_CLASSES))}"
            )
        query = body.get("query")
        if not isinstance(query, str):
            raise ProtocolError(
                f"a typed {kind!r} request needs query text in 'query'"
            )
        fields = {
            name: body[name]
            for name in KIND_FIELDS[kind]
            if body.get(name) is not None
        }
        try:
            parsed = parse_query(query)
        except QuerySyntaxError as error:
            raise ProtocolError(f"invalid query text: {error}") from error
        try:
            return _KIND_CLASSES[kind](parsed, **fields), options
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"invalid {kind!r} request: {error}") from error

    raise ProtocolError(
        "a request body needs either 'request' (request text) or "
        "'kind' + 'query' (typed form)"
    )


def decode_batch(body: Any) -> tuple[list[QueryRequest], dict[str, Any]]:
    """An ``answer_many`` body -> (requests, batch-level options)."""
    if not isinstance(body, dict) or not isinstance(
        body.get("requests"), list
    ):
        raise ProtocolError(
            "an answer_many body needs a 'requests' list "
            "(request texts or typed objects)"
        )
    if not body["requests"]:
        raise ProtocolError("'requests' must not be empty")
    options = _extract_options(body)
    requests: list[QueryRequest] = []
    for index, item in enumerate(body["requests"]):
        try:
            request, item_options = decode_request(item)
        except ProtocolError as error:
            raise ProtocolError(f"requests[{index}]: {error}") from error
        if item_options:
            raise ProtocolError(
                f"requests[{index}]: per-item options are not supported in "
                "a batch; pass method/approx_budget/session_limit at the "
                "batch level"
            )
        requests.append(request)
    return requests, options


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def jsonable(value: Any) -> Any:
    """Recursively convert a result value into JSON-encodable primitives."""
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (frozenset, set)):
        return sorted((jsonable(item) for item in value), key=repr)
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # NumPy scalars
        return value.item()
    return repr(value)


def encode_answer(answer: Any) -> dict[str, Any]:
    """One :class:`~repro.api.answer.Answer` -> a JSON-safe dict."""
    return {
        "kind": answer.kind,
        "request": answer.request.describe(),
        "value": jsonable(answer.value),
        "n_sessions": answer.n_sessions,
        "methods": list(answer.methods),
        "requested_method": answer.requested_method,
        "seconds": answer.seconds,
        "stats": jsonable(answer.stats),
    }


def encode_batch(batch: Any) -> dict[str, Any]:
    """A :class:`~repro.api.answer.BatchAnswer` -> a JSON-safe dict."""
    return {
        "answers": [encode_answer(answer) for answer in batch.answers],
        "n_requests": batch.n_requests,
        "n_sessions": batch.n_sessions,
        "n_distinct_solves": batch.n_distinct_solves,
        "n_cache_hits": batch.n_cache_hits,
        "n_solves_planned": batch.n_solves_planned,
        "n_solves_eliminated": batch.n_solves_eliminated,
        "backend": batch.backend,
        "seconds": batch.seconds,
    }


def error_body(message: str, status: int, **extra: Any) -> dict[str, Any]:
    """The uniform error envelope every non-2xx response carries."""
    return {"error": message, "status": status, **extra}
