"""The time-windowed request coalescer: live traffic -> planned batches.

The planner's common-solve elimination (DESIGN.md Section 9; 51.9x fewer
distinct solves on an overlapping 50-query workload per
``BENCH_planner.json``) only pays off when queries are planned *together*.
Offline, ``answer_many`` batches arrive pre-assembled; online, requests
arrive one at a time.  The coalescer closes that gap: the first request
opens a **window**, concurrent requests arriving within ``window_seconds``
join it, and the whole window is planned and executed as one
:meth:`~repro.service.service.PreferenceService.answer_many` batch — so
mixed-kind dedup and cross-query elimination run on live traffic.

Semantics (the contract DESIGN.md Section 11 documents):

* windows are keyed by ``(method, options)`` — requests only coalesce when
  they can share one plan;
* a window flushes when its timer fires **or** it reaches ``max_batch``,
  whichever is first; ``window_seconds=0`` degenerates to
  request-at-a-time serving (the benchmark baseline);
* batches execute on a dedicated single worker thread **off the event
  loop** (the service's own backend parallelizes the solves *inside* a
  batch), so the loop keeps accepting and coalescing while a batch runs;
* a waiter cancelled before its window flushes is dropped from the batch;
  cancelled later, its slot still computes but the response is discarded —
  either way every live waiter gets exactly one answer and no answer is
  delivered twice;
* :meth:`drain` (graceful shutdown) flushes every open window, refuses new
  submissions, and waits for in-flight batches to finish, so accepted
  requests are answered even while the listener is already closed.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any

from repro.api.answer import Answer
from repro.plan.methods import APPROXIMATE_METHODS


class CoalescerClosed(RuntimeError):
    """Raised by :meth:`RequestCoalescer.submit` after shutdown began."""


class _Window:
    """One open coalescing window: its waiters and its flush timer."""

    __slots__ = ("items", "timer")

    def __init__(self):
        self.items: "list[tuple[Any, asyncio.Future]]" = []
        self.timer: "asyncio.TimerHandle | None" = None


class RequestCoalescer:
    """Merge concurrent requests into planned ``answer_many`` batches.

    All bookkeeping runs on the event loop (no locks); only the planned
    batch itself runs on the worker thread.  ``seed`` seeds a fresh rng
    per batch for rng-driven methods (approximate and budgeted
    auto-approx), which are legal but never bit-reproducible across
    different coalescing outcomes — exact methods are.
    """

    def __init__(
        self,
        service,
        db,
        window_seconds: float = 0.010,
        max_batch: int = 64,
        metrics=None,
        seed: int = 0,
    ):
        self._service = service
        self._db = db
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._metrics = metrics
        self._seed = seed
        self._windows: "dict[tuple, _Window]" = {}
        self._inflight: "set[asyncio.Task]" = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-coalescer"
        )
        self._closing = False
        self.n_submitted = 0
        self.n_batches = 0
        self.n_full_flushes = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def submit(
        self, request, method: "str | None" = None, **options
    ) -> Answer:
        """Queue one request into the current window; await its answer."""
        if self._closing:
            raise CoalescerClosed("the coalescer is draining; no new requests")
        loop = asyncio.get_running_loop()
        key = (method, tuple(sorted(options.items())))
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = _Window()
            if self.window_seconds > 0:
                window.timer = loop.call_later(
                    self.window_seconds, self._flush, key
                )
        future: asyncio.Future = loop.create_future()
        window.items.append((request, future))
        self.n_submitted += 1
        if len(window.items) >= self.max_batch:
            self.n_full_flushes += 1
            self._flush(key)
        elif self.window_seconds <= 0:
            self._flush(key)
        return await future

    async def execute_many(
        self, requests, method: "str | None" = None, **options
    ):
        """Run a pre-assembled batch on the worker thread, off the loop.

        The ``answer_many`` endpoint's path: the batch is already grouped,
        so it skips the window and is planned as-is — on the same single
        worker (serialized with coalesced batches, sharing their cache)
        and tracked so :meth:`drain` waits for it.  Not counted in the
        coalescing metrics: those measure what the window merged.
        """
        if self._closing:
            raise CoalescerClosed("the coalescer is draining; no new requests")
        loop = asyncio.get_running_loop()
        session_limit = options.pop("session_limit", None)
        call = partial(
            self._service.answer_many,
            list(requests),
            self._db,
            method=method,
            rng=self._batch_rng(method, options),
            session_limit=session_limit,
            **options,
        )
        task = asyncio.ensure_future(
            loop.run_in_executor(self._executor, call)
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)
        return await task

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def _flush(self, key) -> None:
        window = self._windows.pop(key, None)
        if window is None:
            return
        if window.timer is not None:
            window.timer.cancel()
        # Waiters cancelled while the window was open leave the batch
        # before it is planned; their slots cost nothing.
        live = [(req, fut) for req, fut in window.items if not fut.done()]
        if not live:
            return
        method, options = key
        task = asyncio.get_running_loop().create_task(
            self._run_batch(live, method, dict(options))
        )
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    def _batch_rng(self, method: "str | None", options: dict):
        """A fresh per-batch rng for the rng-driven methods, else None."""
        effective = method if method is not None else self._service.method
        if effective in APPROXIMATE_METHODS or effective == "auto-approx":
            import numpy as np

            return np.random.default_rng(self._seed)
        return None

    async def _run_batch(self, live, method, options) -> None:
        loop = asyncio.get_running_loop()
        requests = [request for request, _ in live]
        session_limit = options.pop("session_limit", None)
        call = partial(
            self._service.answer_many,
            requests,
            self._db,
            method=method,
            rng=self._batch_rng(method, options),
            session_limit=session_limit,
            **options,
        )
        started = loop.time()
        try:
            batch = await loop.run_in_executor(self._executor, call)
        except Exception as error:  # delivered per-waiter, not raised here
            for _, future in live:
                if not future.done():
                    future.set_exception(error)
            return
        self.n_batches += 1
        if self._metrics is not None:
            self._metrics.observe_batch(
                n_requests=len(live),
                n_distinct_solves=batch.n_distinct_solves,
                n_solves_planned=batch.n_solves_planned,
                n_solves_eliminated=batch.n_solves_eliminated,
                seconds=loop.time() - started,
            )
        for (_, future), answer in zip(live, batch.answers):
            if not future.done():
                future.set_result(answer)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    async def drain(self) -> None:
        """Flush every open window and wait out the in-flight batches."""
        self._closing = True
        for key in list(self._windows):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def close(self) -> None:
        """Release the worker thread (call after :meth:`drain`)."""
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "n_submitted": self.n_submitted,
            "n_batches": self.n_batches,
            "n_full_flushes": self.n_full_flushes,
            "open_windows": len(self._windows),
            "in_flight_batches": len(self._inflight),
            "window_seconds": self.window_seconds,
            "max_batch": self.max_batch,
            "draining": self._closing,
        }
