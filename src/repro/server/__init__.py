"""The asyncio serving front-end: live traffic over the plan pipeline.

This package is ROADMAP item 1's traffic surface — the gateway between
network clients and the offline stack (planner, unified API, backends,
cache tiers).  Its core is the **request coalescer**
(:mod:`repro.server.coalescer`): concurrent requests landing within one
time window are planned and executed as a single
:meth:`~repro.service.service.PreferenceService.answer_many` batch, so
the planner's mixed-kind dedup and cross-query common-solve elimination
(51.9x on overlapping workloads, ``BENCH_planner.json``) pay off on live
traffic, not just offline batches.  Around it: the JSON wire protocol
(:mod:`repro.server.protocol`), per-client admission control with
explicit backpressure (:mod:`repro.server.admission`), a latency/
coalescing metrics registry (:mod:`repro.server.metrics`), the
transport-independent application (:mod:`repro.server.app`), the asyncio
HTTP layer (:mod:`repro.server.http`), and the ``python -m repro serve``
CLI (:mod:`repro.server.cli`).  See DESIGN.md Section 11 for the window
semantics, the backpressure contract, and the metric definitions.
"""

from repro.server.admission import AdmissionController, AdmissionRejected
from repro.server.app import ServerApp
from repro.server.coalescer import CoalescerClosed, RequestCoalescer
from repro.server.config import ServerConfig
from repro.server.http import HTTPServer, run_server
from repro.server.metrics import MetricsRegistry
from repro.server.protocol import (
    ProtocolError,
    decode_batch,
    decode_request,
    encode_answer,
    encode_batch,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "CoalescerClosed",
    "HTTPServer",
    "MetricsRegistry",
    "ProtocolError",
    "RequestCoalescer",
    "ServerApp",
    "ServerConfig",
    "decode_batch",
    "decode_request",
    "encode_answer",
    "encode_batch",
    "run_server",
]
