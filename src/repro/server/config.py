"""Configuration of the serving front-end.

One :class:`ServerConfig` describes everything the server needs: the
dataset it answers over, the :class:`~repro.service.service
.PreferenceService` it evaluates through (method, backend, workers, cache
tiers), the coalescing window, and the admission limits.  The CLI
(:mod:`repro.server.cli`) builds one from flags; tests build them
directly with small windows and tiny datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ServerConfig:
    """Everything ``python -m repro serve`` (and the tests) configure.

    ``window_seconds`` is the coalescing window: the first request opening
    a window waits at most this long for companions before the batch is
    planned (see DESIGN.md Section 11 for the window semantics).
    ``max_batch`` flushes a window early once that many requests have
    joined it.  ``max_pending_per_client`` / ``max_pending_total`` bound
    the admission queues; overflow is answered with 429 + Retry-After
    rather than queued without bound.
    """

    host: str = "127.0.0.1"
    port: int = 8642
    # --- dataset -------------------------------------------------------
    dataset: str = "crowdrank"
    sessions: int = 50
    movies: int = 8
    seed: int = 7
    # --- evaluation ----------------------------------------------------
    method: str = "auto"
    backend: str = "thread"
    max_workers: "int | None" = None
    cache_capacity: int = 4096
    cache_db: "str | None" = None
    #: Shard the warm cache tier (repro.service.shard) this many ways;
    #: with cache_db the shards get per-shard write-back files.
    cache_shards: "int | None" = None
    #: host:port of a running ShardCacheServer this server joins as one
    #: worker of a fleet (excludes cache_db/cache_shards — the shard
    #: server owns topology and persistence).
    shard_address: "str | None" = None
    solver_options: dict = field(default_factory=dict)
    # --- coalescing ----------------------------------------------------
    window_seconds: float = 0.010
    max_batch: int = 64
    # --- admission -----------------------------------------------------
    max_pending_per_client: int = 32
    max_pending_total: int = 256
    # --- metrics -------------------------------------------------------
    latency_sample_size: int = 4096

    def __post_init__(self):
        if self.window_seconds < 0:
            raise ValueError("window_seconds must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_pending_per_client < 1 or self.max_pending_total < 1:
            raise ValueError("admission limits must be >= 1")
        if self.cache_shards is not None and self.cache_shards < 1:
            raise ValueError("cache_shards must be >= 1")
        if self.shard_address is not None and (
            self.cache_db is not None or self.cache_shards is not None
        ):
            raise ValueError(
                "shard_address excludes cache_db/cache_shards; the shard "
                "server owns topology and persistence"
            )
        if self.dataset not in ("crowdrank", "polls"):
            raise ValueError(
                f"unknown dataset {self.dataset!r}; "
                "expected 'crowdrank' or 'polls'"
            )

    def build_database(self):
        """The database every request of this server answers over."""
        if self.dataset == "polls":
            from repro.db.examples import polling_example

            return polling_example()
        from repro.datasets.crowdrank import crowdrank_database

        return crowdrank_database(
            n_workers=self.sessions, n_movies=self.movies, seed=self.seed
        )

    def build_service(self):
        """The PreferenceService the coalesced batches evaluate through.

        The server's configured backend/max_workers become the service
        defaults, so the approximate-route parallelism warning of
        :func:`repro.api.evaluate.parallelism_requested` fires for
        server-configured parallelism exactly as it does for directly
        constructed services.
        """
        from repro.service.service import PreferenceService

        return PreferenceService(
            cache_capacity=self.cache_capacity,
            method=self.method,
            max_workers=self.max_workers,
            backend=self.backend,
            cache_db=self.cache_db,
            cache_shards=self.cache_shards,
            shard_address=self.shard_address,
            **self.solver_options,
        )
