"""Convenience marginals over RIM models.

Small, frequently needed marginal probabilities computed exactly through
the pattern-union machinery: pairwise preference marginals
``Pr(a > b)``, top-rank marginals ``Pr(rank(a) = 1)``, and rank
distributions.  These are the building blocks preference analysts reach
for before writing full conjunctive queries.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, PatternNode
from repro.solvers.two_label import two_label_probability

Item = Hashable


def _identity_instance(model, a: Item, b: Item):
    labeling = Labeling({a: {("item", a)}, b: {("item", b)}})
    pattern = LabelPattern(
        [
            (
                PatternNode("a", frozenset({("item", a)})),
                PatternNode("b", frozenset({("item", b)})),
            )
        ]
    )
    return labeling, pattern


def pairwise_marginal(model, a: Item, b: Item) -> float:
    """Exact ``Pr(a > b)`` under the model.

    Uses the two-label solver with identity labels; polynomial in ``m``.

    >>> from repro.rim.mallows import Mallows
    >>> round(pairwise_marginal(Mallows(["x", "y"], 1.0), "x", "y"), 3)
    0.5
    """
    if a == b:
        raise ValueError("pairwise marginal of an item with itself")
    if a not in model.items or b not in model.items:
        raise KeyError(f"items {a!r}, {b!r} must both be ranked by the model")
    labeling, pattern = _identity_instance(model, a, b)
    return two_label_probability(model, labeling, pattern).probability


def pairwise_marginal_matrix(model) -> dict[tuple[Item, Item], float]:
    """All ``Pr(a > b)`` marginals as a dict over ordered item pairs."""
    marginals: dict[tuple[Item, Item], float] = {}
    items = list(model.items)
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            p = pairwise_marginal(model, a, b)
            marginals[(a, b)] = p
            marginals[(b, a)] = 1.0 - p
    return marginals


def rank_distribution(model, item: Item, n_samples: int = 0, rng=None) -> list[float]:
    """The distribution of ``rank(item)`` (1-based), exactly or sampled.

    For ``n_samples == 0`` the distribution is computed exactly by dynamic
    programming over RIM insertions, tracking only the position of ``item``
    — O(m^2) states.  Otherwise it is estimated from ``n_samples`` draws.
    """
    items = list(model.items)
    if item not in items:
        raise KeyError(f"item {item!r} not ranked by the model")
    m = model.m
    if n_samples > 0:
        if rng is None:
            raise ValueError("sampling a rank distribution requires an rng")
        if hasattr(model, "sample_positions"):
            # Batched draw through the kernel layer; the per-item ranks are
            # a column of the position matrix, so the histogram is one
            # bincount.
            positions = model.sample_positions(n_samples, rng)
            counts = np.bincount(
                positions[:, items.index(item)] - 1, minlength=m
            )
            return [int(c) / n_samples for c in counts]
        # Models exposing only sample() (mixtures, Plackett-Luce).
        tallies = [0] * m
        for _ in range(n_samples):
            tallies[model.sample(rng).rank_of(item) - 1] += 1
        return [c / n_samples for c in tallies]

    pi = model.pi
    target_step = items.index(item) + 1
    # distribution[j - 1] = Pr(position of `item` is j) after each step.
    distribution: list[float] = []
    for step in range(1, m + 1):
        row = pi[step - 1]
        if step < target_step:
            continue
        if step == target_step:
            distribution = [float(row[j]) for j in range(step)]
            continue
        # A later item inserted at position <= j pushes the target down.
        updated = [0.0] * step
        for j, mass in enumerate(distribution):  # j is 0-based position
            if mass == 0.0:
                continue
            shift_mass = float(row[: j + 1].sum())  # inserted at/above target
            stay_mass = float(row[j + 1 : step].sum())
            updated[j + 1] += mass * shift_mass
            updated[j] += mass * stay_mass
        distribution = updated
    return distribution


def expected_rank(model, item: Item) -> float:
    """The exact expectation of the 1-based rank of ``item``."""
    distribution = rank_distribution(model, item)
    return sum((j + 1) * p for j, p in enumerate(distribution))
