"""Monte-Carlo estimation utilities: rejection sampling and friends.

Rejection sampling (RS) estimates ``Pr(G)`` as the fraction of model samples
satisfying ``G``.  Section 5.1 of the paper notes that RS is practical for
likely events but needs exponentially many samples for rare ones — the
comparison reproduced by the Figure 9 benchmark via
:func:`rejection_until_within`.

Both estimators run **batched** by default: samples are drawn as position
matrices through the kernel layer (:mod:`repro.kernels.sampling`) and the
predicate is evaluated on the whole batch in one array pass, provided the
predicate exposes a vectorized ``many(model, positions)`` method (see
:func:`repro.patterns.matching.union_predicate` and
:func:`repro.kernels.predicates.subranking_satisfied_many`).  The scalar
per-:class:`Ranking` path remains the reference implementation
(``vectorized=False``); both paths consume the RNG identically, so fixed
seeds produce identical estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.rankings.permutation import Ranking

#: Samples drawn per kernel call by the batched estimator paths.
DEFAULT_BATCH_SIZE = 8192


@dataclass(frozen=True)
class EstimateResult:
    """A Monte-Carlo estimate with its sampling effort."""

    estimate: float
    n_samples: int
    n_hits: int

    @property
    def hit_rate(self) -> float:
        return self.n_hits / self.n_samples if self.n_samples else 0.0


def _supports_batched(model, predicate) -> bool:
    return hasattr(predicate, "many") and hasattr(model, "sample_positions")


def _resolve_vectorized(model, predicate, vectorized: bool | None) -> bool:
    """Auto-detect (None) or validate (True) the batched estimation path."""
    if vectorized is None:
        return _supports_batched(model, predicate)
    if vectorized and not _supports_batched(model, predicate):
        raise TypeError(
            "vectorized estimation requires a predicate with a "
            "many(model, positions) method and a model with sample_positions"
        )
    return vectorized


def empirical_probability(
    model,
    predicate: Callable[[Ranking], bool],
    n_samples: int,
    rng: np.random.Generator,
    *,
    vectorized: bool | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> EstimateResult:
    """Plain rejection-sampling estimate of ``Pr(predicate)`` under ``model``.

    ``vectorized=None`` (the default) auto-selects the batched kernel path
    when the predicate supports it; ``False`` forces the scalar reference
    loop.  Fixed seeds yield identical estimates on both paths.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    vectorized = _resolve_vectorized(model, predicate, vectorized)
    hits = 0
    if vectorized:
        drawn = 0
        while drawn < n_samples:
            batch = min(batch_size, n_samples - drawn)
            positions = model.sample_positions(batch, rng)
            hits += int(np.count_nonzero(predicate.many(model, positions)))
            drawn += batch
    else:
        for _ in range(n_samples):
            if predicate(model.sample(rng)):
                hits += 1
    return EstimateResult(hits / n_samples, n_samples, hits)


def rejection_estimate(
    model,
    predicate: Callable[[Ranking], bool],
    n_samples: int,
    rng: np.random.Generator,
    **kwargs,
) -> EstimateResult:
    """Alias of :func:`empirical_probability`, named for the paper's RS solver."""
    return empirical_probability(model, predicate, n_samples, rng, **kwargs)


def rejection_until_within(
    model,
    predicate: Callable[[Ranking], bool],
    exact_value: float,
    relative_tolerance: float,
    rng: np.random.Generator,
    max_samples: int = 10_000_000,
    check_every: int = 100,
    *,
    vectorized: bool | None = None,
) -> EstimateResult:
    """Run RS until the running estimate is within ``relative_tolerance`` of truth.

    This reproduces the paper's *optimistic* stopping rule for the Figure 9
    experiment: RS stops as soon as its estimate is within 1% relative error
    of a pre-computed exact value — a lower bound on the real cost of RS,
    since a real deployment could not detect convergence this way.

    The estimate is checked every ``check_every`` samples; the batched path
    draws exactly one ``check_every``-sized batch per check, so scalar and
    vectorized runs stop at the same sample count for a fixed seed.

    An ``exact_value`` of zero short-circuits at the first check: the only
    estimate within any relative tolerance of zero is zero itself, so the
    run stops as soon as the estimate is exactly right (no hits) — or, if a
    hit has occurred, as soon as convergence has become impossible — instead
    of silently burning all ``max_samples``.
    """
    if exact_value < 0:
        raise ValueError("exact_value must be non-negative")
    vectorized = _resolve_vectorized(model, predicate, vectorized)

    def outcome(hits: int, n: int) -> EstimateResult | None:
        """The stopping decision at a ``check_every`` boundary."""
        if exact_value == 0.0:
            # Converged when the estimate is exactly zero; doomed otherwise
            # (a positive estimate can never re-enter any relative
            # tolerance of zero).  Either way, stop.
            return EstimateResult(hits / n, n, hits)
        if hits > 0:
            estimate = hits / n
            if abs(estimate - exact_value) / exact_value <= relative_tolerance:
                return EstimateResult(estimate, n, hits)
        return None

    hits = 0
    if vectorized:
        drawn = 0
        while drawn < max_samples:
            batch = min(check_every, max_samples - drawn)
            positions = model.sample_positions(batch, rng)
            hits += int(np.count_nonzero(predicate.many(model, positions)))
            drawn += batch
            if drawn % check_every == 0:
                result = outcome(hits, drawn)
                if result is not None:
                    return result
    else:
        for n in range(1, max_samples + 1):
            if predicate(model.sample(rng)):
                hits += 1
            if n % check_every == 0:
                result = outcome(hits, n)
                if result is not None:
                    return result
    return EstimateResult(hits / max_samples, max_samples, hits)
