"""Monte-Carlo estimation utilities: rejection sampling and friends.

Rejection sampling (RS) estimates ``Pr(G)`` as the fraction of model samples
satisfying ``G``.  Section 5.1 of the paper notes that RS is practical for
likely events but needs exponentially many samples for rare ones — the
comparison reproduced by the Figure 9 benchmark via
:func:`rejection_until_within`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.rankings.permutation import Ranking


@dataclass(frozen=True)
class EstimateResult:
    """A Monte-Carlo estimate with its sampling effort."""

    estimate: float
    n_samples: int
    n_hits: int

    @property
    def hit_rate(self) -> float:
        return self.n_hits / self.n_samples if self.n_samples else 0.0


def empirical_probability(
    model,
    predicate: Callable[[Ranking], bool],
    n_samples: int,
    rng: np.random.Generator,
) -> EstimateResult:
    """Plain rejection-sampling estimate of ``Pr(predicate)`` under ``model``."""
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    hits = 0
    for _ in range(n_samples):
        if predicate(model.sample(rng)):
            hits += 1
    return EstimateResult(hits / n_samples, n_samples, hits)


def rejection_estimate(
    model,
    predicate: Callable[[Ranking], bool],
    n_samples: int,
    rng: np.random.Generator,
) -> EstimateResult:
    """Alias of :func:`empirical_probability`, named for the paper's RS solver."""
    return empirical_probability(model, predicate, n_samples, rng)


def rejection_until_within(
    model,
    predicate: Callable[[Ranking], bool],
    exact_value: float,
    relative_tolerance: float,
    rng: np.random.Generator,
    max_samples: int = 10_000_000,
    check_every: int = 100,
) -> EstimateResult:
    """Run RS until the running estimate is within ``relative_tolerance`` of truth.

    This reproduces the paper's *optimistic* stopping rule for the Figure 9
    experiment: RS stops as soon as its estimate is within 1% relative error
    of a pre-computed exact value — a lower bound on the real cost of RS,
    since a real deployment could not detect convergence this way.
    """
    if exact_value < 0:
        raise ValueError("exact_value must be non-negative")
    hits = 0
    for n in range(1, max_samples + 1):
        if predicate(model.sample(rng)):
            hits += 1
        if n % check_every == 0 and hits > 0:
            estimate = hits / n
            if exact_value == 0.0:
                continue
            if abs(estimate - exact_value) / exact_value <= relative_tolerance:
                return EstimateResult(estimate, n, hits)
    return EstimateResult(hits / max_samples, max_samples, hits)
