"""Mixtures of Mallows models.

The MovieLens and CrowdRank experiments of the paper attach *mixtures* of
Mallows models to preference-relation tuples (learned with the tool of
Stoyanovich et al.; here the mixtures are synthesized — see DESIGN.md).
Query evaluation over a mixture marginalizes over components:

    Pr(G | mixture) = sum_c w_c * Pr(G | component_c)

so the solvers only ever see plain RIM/Mallows models; the query engine
(:mod:`repro.query.engine`) performs the weighted combination.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

from repro.rankings.permutation import Ranking
from repro.rim.mallows import Mallows

Item = Hashable


class MallowsMixture:
    """A finite mixture of Mallows models over a shared item universe."""

    def __init__(self, components: Sequence[Mallows], weights: Sequence[float]):
        if len(components) != len(weights):
            raise ValueError("one weight per component required")
        if not components:
            raise ValueError("mixture needs at least one component")
        total = float(sum(weights))
        if total <= 0.0 or any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative with positive sum")
        universe = set(components[0].items)
        for component in components[1:]:
            if set(component.items) != universe:
                raise ValueError("all components must share the same item set")
        self._components = tuple(components)
        self._weights = tuple(float(w) / total for w in weights)

    @property
    def components(self) -> tuple[Mallows, ...]:
        return self._components

    @property
    def weights(self) -> tuple[float, ...]:
        """Normalized component weights."""
        return self._weights

    @property
    def items(self) -> tuple[Item, ...]:
        return self._components[0].items

    @property
    def m(self) -> int:
        return self._components[0].m

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return (
            f"MallowsMixture(k={len(self._components)}, m={self.m}, "
            f"weights={[round(w, 4) for w in self._weights]!r})"
        )

    def freeze(self) -> tuple:
        """Canonical cache-key form, invariant to component order.

        Components are frozen individually, duplicates are merged by
        summing their weights, zero-weight components are dropped, and the
        result is sorted — so mixtures that differ only in component
        bookkeeping collide in the cross-query solver cache
        (:mod:`repro.service.keys`).  A mixture that reduces to a single
        full-weight component freezes as that component.
        """
        merged: dict[tuple, float] = {}
        for component, weight in zip(self._components, self._weights):
            if weight == 0.0:
                continue
            key = component.freeze()
            merged[key] = merged.get(key, 0.0) + weight
        entries = sorted(merged.items(), key=lambda kv: repr(kv[0]))
        if len(entries) == 1 and entries[0][1] == 1.0:
            return entries[0][0]
        return ("mixture", tuple(entries))

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> Ranking:
        """Draw a ranking: choose a component by weight, then sample it."""
        index = int(rng.choice(len(self._components), p=self._weights))
        return self._components[index].sample(rng)

    def probability(self, tau: Ranking) -> float:
        """Mixture density of a complete ranking."""
        return sum(
            w * c.probability(tau)
            for w, c in zip(self._weights, self._components)
        )

    def log_probability(self, tau: Ranking) -> float:
        p = self.probability(tau)
        return -math.inf if p == 0.0 else math.log(p)

    def marginalize(self, per_component_probabilities: Sequence[float]) -> float:
        """Combine per-component event probabilities into the mixture marginal.

        Used by the query engine: solvers compute ``Pr(G | component_c)``;
        this returns ``sum_c w_c * p_c``.
        """
        if len(per_component_probabilities) != len(self._components):
            raise ValueError("one probability per component required")
        return float(
            sum(w * p for w, p in zip(self._weights, per_component_probabilities))
        )
