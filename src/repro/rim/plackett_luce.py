"""Plackett-Luce: a ranking model beyond RIM (the paper's future work).

The paper's conclusion names "incorporating probabilistic preference
models beyond RIM" as future work.  Plackett-Luce (PL) is the canonical
such model: each item has a positive skill ``w``, and a ranking is built
top-down by repeatedly choosing the next item with probability
proportional to its skill among the remaining items:

    Pr(tau | w) = prod_{i=1..m} w(tau_i) / sum_{j >= i} w(tau_j)

PL is *not* a RIM — its insertion probabilities are position- and
history-dependent — so the exact pattern-union solvers do not apply.  It
plugs into the Monte-Carlo layer instead: it offers ``sample`` and
``probability``, which is all rejection sampling and possible-world
evaluation need.  A PL session in a p-relation is therefore evaluated with
``method="rejection"``.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterator, Mapping, Sequence

import numpy as np

from repro.rankings.permutation import Ranking

Item = Hashable


class PlackettLuce:
    """A Plackett-Luce ranking distribution over a finite item set."""

    def __init__(self, skills: Mapping[Item, float]):
        if not skills:
            raise ValueError("Plackett-Luce needs at least one item")
        for item, skill in skills.items():
            if not skill > 0:
                raise ValueError(
                    f"skill of {item!r} must be positive, got {skill}"
                )
        self._items = tuple(sorted(skills, key=repr))
        self._skills = {item: float(skills[item]) for item in self._items}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def items(self) -> tuple[Item, ...]:
        return self._items

    @property
    def m(self) -> int:
        return len(self._items)

    def skill(self, item: Item) -> float:
        try:
            return self._skills[item]
        except KeyError:
            raise KeyError(f"item {item!r} not in the model") from None

    def __repr__(self) -> str:
        return f"PlackettLuce(m={self.m})"

    # ------------------------------------------------------------------
    # Distribution
    # ------------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> Ranking:
        """Draw a ranking by sequential skill-proportional choice."""
        remaining = list(self._items)
        weights = np.array([self._skills[item] for item in remaining])
        order: list[Item] = []
        while remaining:
            probabilities = weights / weights.sum()
            index = int(rng.choice(len(remaining), p=probabilities))
            order.append(remaining.pop(index))
            weights = np.delete(weights, index)
        return Ranking(order)

    def log_probability(self, tau: Ranking) -> float:
        if set(tau.items) != set(self._items):
            raise ValueError("ranking is over a different item set")
        log_p = 0.0
        remaining_mass = sum(self._skills.values())
        for item in tau:
            skill = self._skills[item]
            log_p += math.log(skill) - math.log(remaining_mass)
            remaining_mass -= skill
        return log_p

    def probability(self, tau: Ranking) -> float:
        return math.exp(self.log_probability(tau))

    def enumerate_support(
        self, max_items: int = 9
    ) -> Iterator[tuple[Ranking, float]]:
        """All rankings with probabilities (for brute-force validation)."""
        if self.m > max_items:
            raise ValueError(
                f"refusing to enumerate {self.m}! rankings; "
                "raise max_items explicitly if intended"
            )
        for tau in Ranking.all_rankings(self._items):
            yield tau, self.probability(tau)

    def pairwise_marginal(self, a: Item, b: Item) -> float:
        """Exact ``Pr(a > b)``: the classic Luce choice ratio.

        Under Plackett-Luce the pairwise marginal has the closed form
        ``w_a / (w_a + w_b)`` (independence of irrelevant alternatives).
        """
        wa, wb = self.skill(a), self.skill(b)
        return wa / (wa + wb)

    @classmethod
    def from_scores(
        cls, items: Sequence[Item], scores: Sequence[float]
    ) -> "PlackettLuce":
        """Build from parallel item/score sequences."""
        if len(items) != len(scores):
            raise ValueError("items and scores must have equal length")
        return cls(dict(zip(items, scores)))
