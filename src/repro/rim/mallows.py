"""The Mallows model MAL(sigma, phi) as a special case of RIM.

``Pr(tau | sigma, phi) = phi^dist(sigma, tau) / Z(phi, m)`` where ``dist`` is
the Kendall-tau distance and ``Z`` is the normalization constant
``prod_{i=1..m} (1 + phi + ... + phi^{i-1})``.

Doignon et al. showed that RIM(sigma, Pi) is exactly MAL(sigma, phi) when
``Pi(i, j) = phi^{i-j} / (1 + phi + ... + phi^{i-1})`` — the construction
used here (Section 2.2 of the paper).
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

from repro.rankings.kendall import kendall_tau
from repro.rankings.permutation import Ranking
from repro.rim.model import RIM

Item = Hashable


def mallows_insertion_matrix(m: int, phi: float) -> np.ndarray:
    """The RIM insertion matrix realizing MAL(sigma, phi) over ``m`` items.

    Row ``i - 1`` holds ``Pi(i, j) = phi^{i-j} / sum_{k=1..i} phi^{i-k}``
    for ``j = 1..i``.  For ``phi = 0`` the model is degenerate at ``sigma``
    (``Pi(i, i) = 1``); for ``phi = 1`` it is the uniform distribution.
    """
    if not 0.0 <= phi <= 1.0:
        raise ValueError(f"phi must be in [0, 1], got {phi}")
    pi = np.zeros((m, m), dtype=float)
    for i in range(1, m + 1):
        if phi == 0.0:
            pi[i - 1, i - 1] = 1.0
            continue
        exponents = np.arange(i - 1, -1, -1, dtype=float)  # i-j for j=1..i
        weights = phi**exponents
        pi[i - 1, :i] = weights / weights.sum()
    return pi


def mallows_normalization(m: int, phi: float) -> float:
    """The Mallows partition function ``Z = prod_{i=1..m} sum_{k=0..i-1} phi^k``."""
    z = 1.0
    for i in range(1, m + 1):
        if phi == 1.0:
            z *= i
        else:
            z *= (1.0 - phi**i) / (1.0 - phi)
    return z


class Mallows(RIM):
    """MAL(sigma, phi): rankings concentrated around a center ``sigma``.

    ``phi = 0`` puts all mass on ``sigma``; ``phi = 1`` is uniform.  The
    class inherits the generic RIM machinery (sampling, trajectory
    probabilities, support enumeration) and adds the closed-form Kendall-tau
    density, which the importance-sampling estimators evaluate directly.

    Examples
    --------
    >>> model = Mallows(["a", "b", "c"], phi=0.5)
    >>> round(model.probability(Ranking(["a", "b", "c"])), 6)
    0.380952
    """

    def __init__(self, sigma, phi: float):
        sigma_ranking = sigma if isinstance(sigma, Ranking) else Ranking(sigma)
        super().__init__(
            sigma_ranking, mallows_insertion_matrix(len(sigma_ranking), phi)
        )
        self._phi = float(phi)
        self._log_z = self._compute_log_z()

    def _compute_log_z(self) -> float:
        log_z = 0.0
        for i in range(1, self.m + 1):
            if self._phi == 1.0:
                log_z += math.log(i)
            elif self._phi == 0.0:
                log_z += 0.0  # each factor is 1
            else:
                log_z += math.log((1.0 - self._phi**i) / (1.0 - self._phi))
        return log_z

    @property
    def phi(self) -> float:
        """The dispersion parameter."""
        return self._phi

    @property
    def normalization(self) -> float:
        """The partition function ``Z(phi, m)``."""
        return math.exp(self._log_z)

    def __repr__(self) -> str:
        return f"Mallows(m={self.m}, phi={self._phi}, sigma={list(self.sigma.items)!r})"

    def freeze(self) -> tuple:
        """Canonical cache-key form: the (sigma, phi) parameterization.

        Distinct ``Mallows`` instances with equal center and dispersion
        collide — the point of the cross-query solver cache
        (:mod:`repro.service.keys`), which the id()-based within-query
        grouping of the engine cannot do.
        """
        return ("mallows", self.sigma.items, self._phi)

    # ------------------------------------------------------------------
    # Closed-form density (overrides the trajectory-product computation
    # with the O(m log m) Kendall-tau form; both agree — see tests).
    # ------------------------------------------------------------------

    def distance(self, tau: Ranking) -> int:
        """Kendall-tau distance of ``tau`` from the center."""
        return kendall_tau(self.sigma, tau)

    def log_probability(self, tau: Ranking) -> float:
        d = self.distance(tau)
        if self._phi == 0.0:
            return 0.0 if d == 0 else -math.inf
        return d * math.log(self._phi) - self._log_z

    def probability(self, tau: Ranking) -> float:
        d = self.distance(tau)
        if self._phi == 0.0:
            return 1.0 if d == 0 else 0.0
        return self._phi**d / self.normalization

    def probability_of_distance(self, d: int) -> float:
        """``phi^d / Z`` — the shared probability of all rankings at distance ``d``."""
        if self._phi == 0.0:
            return 1.0 if d == 0 else 0.0
        return self._phi**d / self.normalization

    def recenter(self, new_sigma) -> "Mallows":
        """A Mallows model with the same dispersion and a different center.

        Used by MIS-AMP, which builds proposal models centered at the modals
        of the posterior (Section 5.4 of the paper).
        """
        return Mallows(new_sigma, self._phi)

    @classmethod
    def uniform(cls, items: Sequence[Item]) -> "Mallows":
        """The uniform distribution as a Mallows model (phi = 1)."""
        return cls(Ranking(items), 1.0)
