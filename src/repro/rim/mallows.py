"""The Mallows model MAL(sigma, phi) as a special case of RIM.

``Pr(tau | sigma, phi) = phi^dist(sigma, tau) / Z(phi, m)`` where ``dist`` is
the Kendall-tau distance and ``Z`` is the normalization constant
``prod_{i=1..m} (1 + phi + ... + phi^{i-1})``.

Doignon et al. showed that RIM(sigma, Pi) is exactly MAL(sigma, phi) when
``Pi(i, j) = phi^{i-j} / (1 + phi + ... + phi^{i-1})`` — the construction
used here (Section 2.2 of the paper).
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Sequence

import numpy as np

from repro.kernels.density import mallows_log_probability_many
from repro.kernels.precompute import mallows_log_z, mallows_matrix
from repro.rankings.kendall import kendall_tau
from repro.rankings.permutation import Ranking
from repro.rim.model import RIM

Item = Hashable


def mallows_insertion_matrix(m: int, phi: float) -> np.ndarray:
    """The RIM insertion matrix realizing MAL(sigma, phi) over ``m`` items.

    Row ``i - 1`` holds ``Pi(i, j) = phi^{i-j} / sum_{k=1..i} phi^{i-k}``
    for ``j = 1..i``.  For ``phi = 0`` the model is degenerate at ``sigma``
    (``Pi(i, i) = 1``); for ``phi = 1`` it is the uniform distribution.

    Construction is vectorized and memoized by ``(m, phi)``
    (:func:`repro.kernels.precompute.mallows_matrix`); the returned array
    is a fresh writable copy.
    """
    return mallows_matrix(m, phi).copy()


def mallows_normalization(m: int, phi: float) -> float:
    """The Mallows partition function ``Z = prod_{i=1..m} sum_{k=0..i-1} phi^k``."""
    z = 1.0
    for i in range(1, m + 1):
        if phi == 1.0:
            z *= i
        else:
            z *= (1.0 - phi**i) / (1.0 - phi)
    return z


class Mallows(RIM):
    """MAL(sigma, phi): rankings concentrated around a center ``sigma``.

    ``phi = 0`` puts all mass on ``sigma``; ``phi = 1`` is uniform.  The
    class inherits the generic RIM machinery (sampling, trajectory
    probabilities, support enumeration) and adds the closed-form Kendall-tau
    density, which the importance-sampling estimators evaluate directly.

    Examples
    --------
    >>> model = Mallows(["a", "b", "c"], phi=0.5)
    >>> round(model.probability(Ranking(["a", "b", "c"])), 6)
    0.380952
    """

    def __init__(self, sigma: Any, phi: float):
        sigma_ranking = sigma if isinstance(sigma, Ranking) else Ranking(sigma)
        # The memoized (m, phi) matrix is valid by construction, so the
        # stochasticity re-validation of RIM.__init__ is skipped; distinct
        # same-parameter instances (e.g. MIS-AMP's recentered proposals)
        # share one matrix and one log Z.
        super().__init__(
            sigma_ranking,
            mallows_matrix(len(sigma_ranking), phi),
            _validate=False,
        )
        self._phi = float(phi)
        self._log_z = mallows_log_z(self.m, self._phi)

    @property
    def phi(self) -> float:
        """The dispersion parameter."""
        return self._phi

    @property
    def normalization(self) -> float:
        """The partition function ``Z(phi, m)``."""
        return math.exp(self._log_z)

    @property
    def log_normalization(self) -> float:
        """``log Z(phi, m)`` (memoized by ``(m, phi)``)."""
        return self._log_z

    def __repr__(self) -> str:
        return f"Mallows(m={self.m}, phi={self._phi}, sigma={list(self.sigma.items)!r})"

    def freeze(self) -> tuple:
        """Canonical cache-key form: the (sigma, phi) parameterization.

        Distinct ``Mallows`` instances with equal center and dispersion
        collide — the point of the cross-query solver cache
        (:mod:`repro.service.keys`), which the id()-based within-query
        grouping of the engine cannot do.
        """
        return ("mallows", self.sigma.items, self._phi)

    # ------------------------------------------------------------------
    # Closed-form density (overrides the trajectory-product computation
    # with the O(m log m) Kendall-tau form; both agree — see tests).
    # ------------------------------------------------------------------

    def distance(self, tau: Ranking) -> int:
        """Kendall-tau distance of ``tau`` from the center."""
        return kendall_tau(self.sigma, tau)

    def log_probability(self, tau: Ranking) -> float:
        d = self.distance(tau)
        if self._phi == 0.0:
            return 0.0 if d == 0 else -math.inf
        return d * math.log(self._phi) - self._log_z

    def probability(self, tau: Ranking) -> float:
        d = self.distance(tau)
        if self._phi == 0.0:
            return 1.0 if d == 0 else 0.0
        return self._phi**d / self.normalization

    def log_probability_many(self, positions: np.ndarray) -> np.ndarray:
        """Batched closed-form log-densities: vectorized Kendall-tau pass.

        Overrides the trajectory-product kernel of :class:`RIM` with the
        ``d * log(phi) - log Z`` form evaluated over the whole position
        matrix at once (:mod:`repro.kernels.density`).
        """
        return mallows_log_probability_many(self, positions)

    def probability_of_distance(self, d: int) -> float:
        """``phi^d / Z`` — the shared probability of all rankings at distance ``d``."""
        if self._phi == 0.0:
            return 1.0 if d == 0 else 0.0
        return self._phi**d / self.normalization

    def recenter(self, new_sigma) -> "Mallows":
        """A Mallows model with the same dispersion and a different center.

        Used by MIS-AMP, which builds proposal models centered at the modals
        of the posterior (Section 5.4 of the paper).
        """
        return Mallows(new_sigma, self._phi)

    @classmethod
    def uniform(cls, items: Sequence[Item]) -> "Mallows":
        """The uniform distribution as a Mallows model (phi = 1)."""
        return cls(Ranking(items), 1.0)
