"""AMP: sampling from the Mallows posterior conditioned on a partial order.

AMP (Lu & Boutilier) follows the RIM insertion procedure, but restricts each
insertion to the positions that do not violate a given partial order
``upsilon``; within the feasible range ``J`` the insertion probability of
item ``sigma_i`` at position ``j`` is proportional to the unconstrained RIM
weight (``phi^{i-j}`` for Mallows) — Section 2.2, Example 2.2 of the paper.

Every sample is consistent with ``upsilon`` by construction.  AMP samples
from an *approximation* of the true posterior; the importance-sampling
estimators of Section 5 correct for the discrepancy by weighting each sample
with the exact ratio ``p(tau) / q(tau)``, which requires the exact proposal
density ``q`` implemented here (:meth:`AMPSampler.log_probability`).
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

from repro.kernels.density import amp_log_probability_many
from repro.kernels.precompute import model_tables
from repro.kernels.sampling import (
    amp_sample_positions,
    constrained_categorical_step,
    rankings_from_positions,
)
from repro.rankings.partial_order import CyclicOrderError, PartialOrder
from repro.rankings.permutation import Ranking
from repro.rankings.subranking import SubRanking
from repro.rim.model import RIM

Item = Hashable


def _as_partial_order(constraint) -> PartialOrder:
    """Accept a PartialOrder, SubRanking, or Ranking and return a PartialOrder."""
    if isinstance(constraint, PartialOrder):
        return constraint
    if isinstance(constraint, SubRanking):
        return constraint.as_partial_order()
    if isinstance(constraint, Ranking):
        return PartialOrder.from_chain(constraint.items)
    raise TypeError(
        f"unsupported constraint type: {type(constraint).__name__}"
    )


class AMPSampler:
    """AMP(sigma, phi, upsilon): constrained repeated insertion.

    Parameters
    ----------
    model:
        The unconstrained RIM (typically a :class:`~repro.rim.mallows.Mallows`).
    constraint:
        A partial order over a subset of the model's items (also accepts a
        :class:`SubRanking` or :class:`Ranking`, converted to its chain).

    Raises
    ------
    CyclicOrderError
        If the constraint is cyclic (no consistent ranking exists).
    """

    def __init__(self, model: RIM, constraint):
        order = _as_partial_order(constraint)
        unknown = order.items - set(model.items)
        if unknown:
            raise ValueError(
                f"constraint mentions items outside the model: {sorted(map(repr, unknown))}"
            )
        if not order.is_acyclic():
            raise CyclicOrderError("AMP constraint must be acyclic")
        self._model = model
        self._constraint = order
        closure = order.transitive_closure()
        # For each constrained item: the items that must precede / follow it.
        self._ancestors = {
            item: closure.predecessors(item) for item in closure.items
        }
        self._descendants = {
            item: closure.successors(item) for item in closure.items
        }
        self._step_constraints: tuple[list, list] | None = None

    @property
    def model(self) -> RIM:
        return self._model

    @property
    def constraint(self) -> PartialOrder:
        return self._constraint

    def step_constraints(self) -> tuple[list, list]:
        """Per-step constraint index arrays for the batched kernels.

        For each insertion step ``i`` (0-based), two int64 arrays of
        reference-order indices ``< i``: the already-inserted ancestors
        (items that must precede ``sigma_{i+1}``) and descendants (items
        that must follow it).  Memoized on the sampler.
        """
        if self._step_constraints is None:
            sigma_index = {
                item: k for k, item in enumerate(self._model.sigma.items)
            }
            ancestors: list = []
            descendants: list = []
            for i, item in enumerate(self._model.sigma):
                ancestors.append(
                    np.array(
                        sorted(
                            sigma_index[a]
                            for a in self._ancestors.get(item, ())
                            if sigma_index[a] < i
                        ),
                        dtype=np.int64,
                    )
                )
                descendants.append(
                    np.array(
                        sorted(
                            sigma_index[d]
                            for d in self._descendants.get(item, ())
                            if sigma_index[d] < i
                        ),
                        dtype=np.int64,
                    )
                )
            self._step_constraints = (ancestors, descendants)
        return self._step_constraints

    # ------------------------------------------------------------------
    # Internal: feasible insertion range
    # ------------------------------------------------------------------

    def _feasible_range(
        self, item: Item, positions: dict[Item, int], step: int
    ) -> tuple[int, int]:
        """The contiguous range ``J = [low, high]`` of legal positions.

        ``positions`` maps already-inserted items to their current 1-based
        positions; ``step`` is the 1-based insertion step ``i`` (so the
        unconstrained range is ``1..step``).  Inserting at the position of a
        required successor places the new item just above it, hence ``high``
        is the minimum successor position; inserting just below a required
        predecessor needs ``j >= pos + 1``, hence ``low``.
        """
        low, high = 1, step
        for ancestor in self._ancestors.get(item, ()):
            pos = positions.get(ancestor)
            if pos is not None and pos + 1 > low:
                low = pos + 1
        for descendant in self._descendants.get(item, ()):
            pos = positions.get(descendant)
            if pos is not None and pos < high:
                high = pos
        return low, high

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> Ranking:
        """Draw one ranking consistent with the constraint.

        Scalar reference of the batched kernel
        (:func:`repro.kernels.sampling.amp_sample_positions`): one uniform
        per step through the same constrained inverse-CDF (with the same
        uniform fallback when the feasible range carries zero unconstrained
        mass, e.g. phi=0 against a sigma-contradicting constraint), so a
        fixed seed yields identical draws on both paths.
        """
        tables = model_tables(self._model)
        order: list[Item] = []
        positions: dict[Item, int] = {}
        for i, item in enumerate(self._model.sigma, start=1):
            low, high = self._feasible_range(item, positions, i)
            # The invariant low <= high holds because previously inserted
            # constrained items already respect the (transitively closed)
            # order, so every ancestor sits above every descendant.
            j = int(
                constrained_categorical_step(
                    tables.cumulative[i - 1],
                    i,
                    np.array([low]),
                    np.array([high]),
                    np.array([rng.random()]),
                )[0]
            )
            order.insert(j - 1, item)
            for other in positions:
                if positions[other] >= j:
                    positions[other] += 1
            positions[item] = j
        return Ranking(order)

    def sample_many(
        self, n: int, rng: np.random.Generator, *, vectorized: bool = True
    ) -> list[Ranking]:
        """Draw ``n`` independent constrained rankings.

        ``vectorized=False`` selects the scalar reference loop; both paths
        produce identical rankings for a fixed seed.
        """
        if not vectorized:
            return [self.sample(rng) for _ in range(n)]
        return rankings_from_positions(
            self._model, self.sample_positions(n, rng)
        )

    def sample_positions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` constrained rankings as an ``(n, m)`` position matrix."""
        return amp_sample_positions(self, n, rng)

    # ------------------------------------------------------------------
    # Exact proposal density
    # ------------------------------------------------------------------

    def log_probability(self, tau: Ranking) -> float:
        """Exact log-probability that AMP generates ``tau``.

        Returns ``-inf`` when ``tau`` violates the constraint (AMP can never
        produce it).  The density is the product over insertion steps of the
        constrained-normalized insertion weights along the unique trajectory
        that builds ``tau``.
        """
        pi = self._model.pi
        trajectory = self._model.insertion_positions(tau)
        positions: dict[Item, int] = {}
        log_q = 0.0
        for i, item in enumerate(self._model.sigma, start=1):
            j = trajectory[i - 1]
            low, high = self._feasible_range(item, positions, i)
            if not low <= j <= high:
                return -math.inf
            weights = pi[i - 1, low - 1 : high]
            total = weights.sum()
            if total <= 0.0:
                log_q += -math.log(high - low + 1)
            else:
                p = pi[i - 1, j - 1] / total
                if p <= 0.0:
                    return -math.inf
                log_q += math.log(p)
            for other in positions:
                if positions[other] >= j:
                    positions[other] += 1
            positions[item] = j
        return log_q

    def probability(self, tau: Ranking) -> float:
        """Exact probability that AMP generates ``tau``."""
        log_q = self.log_probability(tau)
        return 0.0 if log_q == -math.inf else math.exp(log_q)

    def log_probability_many(self, positions: np.ndarray) -> np.ndarray:
        """Batched exact proposal log-densities over a position matrix.

        The array analogue of :meth:`log_probability` (``-inf`` for
        constraint-violating samples); see :mod:`repro.kernels.density`.
        """
        return amp_log_probability_many(self, positions)
