"""RIM substrate: the Repeated Insertion Model, Mallows, AMP, and mixtures.

Implements Section 2.2 of the paper: the RIM generative model
(Algorithm 1), the Mallows model as the special case
``Pi(i, j) = phi^{i-j} / (1 + phi + ... + phi^{i-1})``, the AMP sampler from
the Mallows posterior conditioned on a partial order, rejection sampling,
and mixtures of Mallows models (used by the MovieLens and CrowdRank
experiments).
"""

from repro.rim.amp import AMPSampler
from repro.rim.mallows import Mallows
from repro.rim.marginals import (
    expected_rank,
    pairwise_marginal,
    pairwise_marginal_matrix,
    rank_distribution,
)
from repro.rim.mixture import MallowsMixture
from repro.rim.model import RIM
from repro.rim.plackett_luce import PlackettLuce
from repro.rim.sampling import empirical_probability, rejection_estimate

__all__ = [
    "RIM",
    "Mallows",
    "MallowsMixture",
    "PlackettLuce",
    "AMPSampler",
    "empirical_probability",
    "rejection_estimate",
    "pairwise_marginal",
    "pairwise_marginal_matrix",
    "rank_distribution",
    "expected_rank",
]
