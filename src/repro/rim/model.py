"""The Repeated Insertion Model RIM(sigma, Pi) — Algorithm 1 of the paper.

RIM is a generative ranking model parameterized by a reference ranking
``sigma = <sigma_1, ..., sigma_m>`` and an insertion-probability function
``Pi`` where ``Pi(i, j)`` is the probability of inserting ``sigma_i`` at
position ``j`` of the partial ranking built from the first ``i - 1`` items.

The class supports sampling (Algorithm 1), the exact probability of any
complete ranking, and exhaustive support enumeration for brute-force
validation.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterator, Sequence

import numpy as np

from repro.kernels.density import rim_log_probability_many
from repro.kernels.precompute import model_tables
from repro.kernels.sampling import (
    categorical_step,
    rankings_from_positions,
    rim_sample_positions,
)
from repro.rankings.permutation import Ranking

Item = Hashable

#: Absolute slack allowed when validating that each Pi row is stochastic.
_ROW_SUM_TOLERANCE = 1e-9


class RIM:
    """A Repeated Insertion Model over ``m`` items.

    Parameters
    ----------
    sigma:
        The reference ranking, as a :class:`Ranking` or any item sequence.
    pi:
        Insertion probabilities.  ``pi[i - 1][j - 1]`` is the paper's
        ``Pi(i, j)`` — the probability of inserting the ``i``-th reference
        item at position ``j in 1..i``.  Row ``i - 1`` must therefore sum to
        one over its first ``i`` entries (entries beyond are ignored and
        should be zero).

    Notes
    -----
    The insertion probabilities are stored as a dense lower-triangular
    ``(m, m)`` float array.  The exact probability of a ranking ``tau``
    factorizes over the insertion trajectory, which is *unique* for a given
    ``tau``: the position of ``sigma_i`` among the first ``i`` reference
    items in ``tau`` is the insertion position ``j`` that produced it.
    """

    def __init__(self, sigma, pi, *, _validate: bool = True):
        self._sigma = sigma if isinstance(sigma, Ranking) else Ranking(sigma)
        m = len(self._sigma)
        pi_array = np.asarray(pi, dtype=float)
        if pi_array.shape != (m, m):
            raise ValueError(
                f"pi must have shape ({m}, {m}), got {pi_array.shape}"
            )
        # A read-only, data-owning input (e.g. the memoized Mallows
        # parameter matrix, shared across same-(m, phi) instances) is
        # aliased, not copied.  A read-only *view* is still copied: its
        # writable base could mutate pi after construction, breaking the
        # frozen-at-construction invariant the precompute caching rests on.
        owns_frozen_data = not pi_array.flags.writeable and pi_array.base is None
        matrix = pi_array if owns_frozen_data else pi_array.copy()
        if _validate:
            self._validate_matrix(matrix, m)
        self._pi = matrix
        if self._pi.flags.writeable:
            self._pi.setflags(write=False)

    @staticmethod
    def _validate_matrix(matrix: np.ndarray, m: int) -> None:
        """Whole-matrix stochasticity checks (no per-row Python loop)."""
        in_row = np.tril(np.ones((m, m), dtype=bool))
        if np.any(matrix[in_row] < -_ROW_SUM_TOLERANCE):
            row = int(np.where((matrix < -_ROW_SUM_TOLERANCE) & in_row)[0][0]) + 1
            raise ValueError(f"negative insertion probability in row {row}")
        row_sums = np.sum(matrix, axis=1, where=in_row)
        bad_sums = np.abs(row_sums - 1.0) > 1e-6
        if np.any(bad_sums):
            row = int(np.argmax(bad_sums)) + 1
            raise ValueError(
                f"row {row} of pi sums to {row_sums[row - 1]:.9f}, expected 1"
            )
        beyond = (np.abs(matrix) > _ROW_SUM_TOLERANCE) & ~in_row
        if np.any(beyond):
            row = int(np.where(beyond)[0][0]) + 1
            raise ValueError(
                f"row {row} of pi has mass beyond position {row}"
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def sigma(self) -> Ranking:
        """The reference ranking."""
        return self._sigma

    @property
    def m(self) -> int:
        """Number of items."""
        return len(self._sigma)

    @property
    def items(self) -> tuple[Item, ...]:
        """The item universe, in reference order."""
        return self._sigma.items

    def insertion_probability(self, i: int, j: int) -> float:
        """The paper's ``Pi(i, j)``; ``i`` and ``j`` are 1-based, ``j <= i``."""
        if not 1 <= j <= i <= self.m:
            raise IndexError(f"require 1 <= j <= i <= m; got i={i}, j={j}")
        return float(self._pi[i - 1, j - 1])

    @property
    def pi(self) -> np.ndarray:
        """The full (read-only) insertion matrix."""
        return self._pi

    def __repr__(self) -> str:
        return f"RIM(m={self.m}, sigma={list(self._sigma.items)!r})"

    def freeze(self) -> tuple:
        """A hashable canonical form of the model for cross-query caching.

        Two RIM instances freeze identically exactly when they share the
        reference ranking and the insertion matrix — i.e. they are the same
        distribution by construction (``sigma`` order is a parameter, not
        an artifact, so it is *not* normalized away).  See
        :mod:`repro.service.keys`.
        """
        return ("rim", self._sigma.items, self._pi.tobytes())

    # ------------------------------------------------------------------
    # Generative semantics
    # ------------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> Ranking:
        """Draw one ranking via Algorithm 1 (repeated insertion).

        This is the scalar reference implementation of the batched kernel
        (:func:`repro.kernels.sampling.rim_sample_positions`): each step
        consumes exactly one uniform and maps it through the same
        inverse-CDF arithmetic, so a fixed seed yields identical draws on
        both paths.
        """
        tables = model_tables(self)
        order: list[Item] = []
        for i, item in enumerate(self._sigma, start=1):
            u = np.array([rng.random()])
            j = int(categorical_step(tables.cumulative[i - 1], i, u)[0])
            order.insert(j - 1, item)
        return Ranking(order)

    def sample_many(
        self, n: int, rng: np.random.Generator, *, vectorized: bool = True
    ) -> list[Ranking]:
        """Draw ``n`` independent rankings.

        ``vectorized=True`` (the default) draws the whole batch through the
        kernel layer; ``vectorized=False`` is the scalar reference loop.
        Both produce identical rankings for a fixed seed.
        """
        if not vectorized:
            return [self.sample(rng) for _ in range(n)]
        return rankings_from_positions(self, self.sample_positions(n, rng))

    def sample_positions(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` rankings as an ``(n, m)`` position matrix.

        ``result[s, k]`` is the 1-based rank of ``sigma_{k+1}`` in sample
        ``s`` — the native representation of the batched estimators (see
        :mod:`repro.kernels.sampling`).
        """
        return rim_sample_positions(self, n, rng)

    def insertion_positions(self, tau: Ranking) -> list[int]:
        """Recover the unique insertion trajectory producing ``tau``.

        Returns ``[j_1, ..., j_m]`` where ``j_i`` is the position at which
        ``sigma_i`` was inserted.  ``j_i`` equals the rank of ``sigma_i``
        within ``tau`` restricted to the first ``i`` reference items.
        """
        if set(tau.items) != set(self._sigma.items):
            raise ValueError("ranking is over a different item set")
        positions: list[int] = []
        # tau-ranks of the reference items, in reference order.
        tau_ranks = [tau.rank_of(item) for item in self._sigma]
        for i in range(1, len(tau_ranks) + 1):
            rank_i = tau_ranks[i - 1]
            j = 1 + sum(1 for r in tau_ranks[: i - 1] if r < rank_i)
            positions.append(j)
        return positions

    def log_probability(self, tau: Ranking) -> float:
        """Exact log-probability of ``tau`` under this model."""
        log_p = 0.0
        for i, j in enumerate(self.insertion_positions(tau), start=1):
            p = self._pi[i - 1, j - 1]
            if p <= 0.0:
                return -math.inf
            log_p += math.log(p)
        return log_p

    def probability(self, tau: Ranking) -> float:
        """Exact probability of ``tau`` under this model."""
        prob = 1.0
        for i, j in enumerate(self.insertion_positions(tau), start=1):
            prob *= self._pi[i - 1, j - 1]
            if prob == 0.0:
                return 0.0
        return prob

    def log_probability_many(self, positions: np.ndarray) -> np.ndarray:
        """Batched exact log-probabilities of an ``(n, m)`` position matrix.

        The array analogue of :meth:`log_probability`; see
        :mod:`repro.kernels.density`.
        """
        return rim_log_probability_many(self, positions)

    # ------------------------------------------------------------------
    # Exhaustive enumeration (for validation)
    # ------------------------------------------------------------------

    def enumerate_support(
        self, max_items: int = 9
    ) -> Iterator[tuple[Ranking, float]]:
        """Yield every ranking with its probability.

        Enumerates the insertion tree rather than recomputing trajectories,
        so the total cost is O(m!) products.  Guarded by ``max_items``
        because the support has ``m!`` elements.
        """
        if self.m > max_items:
            raise ValueError(
                f"refusing to enumerate {self.m}! rankings; "
                "raise max_items explicitly if intended"
            )

        def expand(
            prefix: tuple[Item, ...], i: int, prob: float
        ) -> Iterator[tuple[Ranking, float]]:
            if i > self.m:
                yield Ranking(prefix), prob
                return
            item = self._sigma.item_at(i)
            for j in range(1, i + 1):
                p = self._pi[i - 1, j - 1]
                if p == 0.0:
                    continue
                inserted = prefix[: j - 1] + (item,) + prefix[j - 1 :]
                yield from expand(inserted, i + 1, prob * p)

        yield from expand((), 1, 1.0)

    @classmethod
    def uniform(cls, items: Sequence[Item]) -> "RIM":
        """RIM giving the uniform distribution over all rankings of ``items``."""
        m = len(items)
        pi = np.zeros((m, m))
        for i in range(1, m + 1):
            pi[i - 1, :i] = 1.0 / i
        return cls(Ranking(items), pi)
