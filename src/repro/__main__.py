"""Command-line entry point: reproduce a paper figure or run the demo.

Usage::

    python -m repro list                 # available experiments
    python -m repro figure 5             # run Figure 5 at default scale
    python -m repro figure 10a --fast    # quick, smaller parameters
    python -m repro demo                 # the quickstart walkthrough
    python -m repro batch                # batch serving + solver cache demo
    python -m repro explain "<query>"    # cost-annotated query plan
    python -m repro query "<request>"    # one-shot evaluation of any kind
    python -m repro serve                # coalescing HTTP/JSON front-end
    python -m repro replay               # standing queries over live traffic
    python -m repro lint [paths]         # project-invariant static analysis

The ``query`` and ``explain`` commands accept the unified request grammar
(:mod:`repro.api.requests`): plain CQ text evaluates the Boolean
probability, and the ``COUNT ...``, ``TOPK k ...``, and
``AGG stat(Relation.column) ...`` prefixes select the aggregate kinds —
e.g. ``python -m repro query "TOPK 3 P(v; m1; m2), M(m1, 'Comedy', _, _,
_)"``.

Each figure command prints the same rows/series the paper's figure reports
(see EXPERIMENTS.md for the paper-vs-measured record).  The ``batch``
command runs a repeated CrowdRank-style workload through the
:class:`~repro.service.service.PreferenceService`, showing the cross-query
solver cache warming up pass over pass.
"""

from __future__ import annotations

import argparse
import sys

from repro.evaluation import experiments
from repro.evaluation.harness import format_table

#: Experiment name -> (runner, fast-scale keyword arguments).
EXPERIMENTS = {
    "4": (experiments.figure_4, {"m_values": (6, 8), "sessions_per_m": 2}),
    "5": (experiments.figure_5, {"n_unions": 2, "m": 7}),
    "6": (
        experiments.figure_6,
        {"m_values": (10, 14), "patterns_per_union": (2, 3), "time_budget": 2.0},
    ),
    "7a": (
        experiments.figure_7a,
        {"m_values": (6, 8), "labels_per_pattern": (2, 3), "instances_per_cell": 1},
    ),
    "7b": (
        experiments.figure_7b,
        {"m_values": (6, 8), "patterns_per_union": (1, 2), "instances_per_cell": 1},
    ),
    "8": (experiments.figure_8, {"k_values": (1, 5), "n_voters": 40}),
    "9": (
        experiments.figure_9,
        {"m_values": (4, 5), "repeats": 1, "rs_max_samples": 100_000},
    ),
    "10a": (
        experiments.figure_10,
        {"benchmark": "a", "d_values": (1, 5), "n_instances": 3, "m": 8},
    ),
    "10b": (
        experiments.figure_10,
        {"benchmark": "c", "d_values": (1, 5), "n_instances": 3, "m": 7},
    ),
    "11": (experiments.figure_11, {"d_values": (1, 5), "n_instances": 3, "m": 8}),
    "12": (experiments.figure_12, {"n_instances": 4, "m": 7}),
    "13a": (
        experiments.figure_13a,
        {"labels_per_pattern": (3, 4), "items_per_label": (3,), "m": 15},
    ),
    "13b": (
        experiments.figure_13b,
        {"m_values": (20, 50), "labels_per_pattern": (3,)},
    ),
    "14": (
        experiments.figure_14,
        {"m_values": (15, 30), "n_users": 2, "n_components": 2,
         "n_per_proposal": 40, "max_proposals": 5},
    ),
    "15": (
        experiments.figure_15,
        {"session_counts": (10, 100), "naive_limit": 100, "n_movies": 6},
    ),
    "accuracy": (
        experiments.accuracy_table,
        {"m": 8, "n_sessions": 5, "n_voters": 15},
    ),
}


#: Query templates over the CrowdRank schema M(id, genre, lead_sex,
#: lead_age, duration), V(voter, sex, age), P(voter); ``{genre}`` /
#: ``{sex}`` / ``{duration}`` are filled by :func:`batch_queries`.
_BATCH_TEMPLATES = (
    "P(v; m1; m2), M(m1, '{genre}', _, _, _), M(m2, _, _, _, '{duration}')",
    "P(v; m1; m2), M(m1, _, '{sex}', _, _), M(m2, 'Thriller', _, _, _)",
    "P(v; m1; m2), V(v, sex, _), M(m1, _, sex, _, _), "
    "M(m2, _, _, _, '{duration}')",
    "P(v; m1; m2), P(v; m2; m3), M(m1, '{genre}', _, _, _), "
    "M(m2, _, '{sex}', _, _), M(m3, _, _, _, '{duration}')",
)


def batch_queries(n_queries: int) -> list[str]:
    """A deterministic family of CrowdRank-style queries for batch demos.

    Cycles the templates through genre/sex/duration parameters, mimicking a
    session of near-identical repeated traffic — the workload shape the
    cross-query solver cache exploits (consensus-answer workloads of
    Li & Deshpande 2008 hammer the same sessions with such families).
    """
    from repro.datasets.crowdrank import DURATIONS, GENRES, SEXES

    queries = []
    for index in range(n_queries):
        template = _BATCH_TEMPLATES[index % len(_BATCH_TEMPLATES)]
        queries.append(
            template.format(
                genre=GENRES[index % len(GENRES)],
                sex=SEXES[index % len(SEXES)],
                duration=DURATIONS[index % len(DURATIONS)],
            )
        )
    return queries


def _check_method(method: str) -> bool:
    """Validate a --method value, printing the available names on failure."""
    from repro.plan.methods import APPROXIMATE_METHODS, AUTO_METHODS
    from repro.solvers.dispatch import available_methods

    known_methods = AUTO_METHODS + available_methods() + APPROXIMATE_METHODS
    if method in known_methods:
        return True
    print(
        f"unknown method {method!r}; available: {', '.join(known_methods)}",
        file=sys.stderr,
    )
    return False


def run_batch(args) -> int:
    """Serve a repeated query batch through a PreferenceService."""
    from repro.datasets.crowdrank import crowdrank_database
    from repro.query.engine import APPROXIMATE_METHODS
    from repro.service.service import PreferenceService

    if not _check_method(args.method):
        return 2
    if args.capacity < 1:
        print(f"--capacity must be >= 1, got {args.capacity}", file=sys.stderr)
        return 2

    db = crowdrank_database(
        n_workers=args.sessions, n_movies=args.movies, seed=args.seed
    )
    queries = batch_queries(args.queries)
    options = (
        {"approx_budget": args.approx_budget}
        if args.approx_budget is not None
        else {}
    )
    try:
        service = PreferenceService(
            cache_capacity=args.capacity,
            method=args.method,
            max_workers=args.workers,
            backend=args.backend,
            cache_db=args.cache_db,
            cache_shards=args.cache_shards,
            shard_address=args.shard_address,
            **options,
        )
    except ValueError as error:
        print(f"cannot build service: {error}", file=sys.stderr)
        return 2
    # Sampling methods need an rng (and bypass the cache — the passes then
    # report their per-query solve counts instead of cache hits), and so
    # does auto-approx whenever its MIS-AMP fallback triggers.
    rng = None
    if args.method in APPROXIMATE_METHODS or args.method == "auto-approx":
        import numpy as np

        rng = np.random.default_rng(args.seed)
    rows = []
    for pass_index in range(1, args.repeat + 1):
        batch = service.evaluate_many(queries, db, rng=rng)
        rows.append(
            [
                pass_index,
                batch.n_queries,
                batch.n_sessions,
                batch.n_distinct_solves,
                batch.n_cache_hits,
                batch.seconds,
                batch.n_queries / batch.seconds if batch.seconds else 0.0,
            ]
        )
    tier = f", cache_db={args.cache_db}" if args.cache_db else ""
    if args.cache_shards is not None:
        tier += f", cache_shards={args.cache_shards}"
    if args.shard_address is not None:
        tier += f", shard_address={args.shard_address}"
    print(
        f"== batch serving: {args.queries} queries x {args.repeat} passes "
        f"(backend={args.backend}{tier}) =="
    )
    print(
        format_table(
            ["pass", "queries", "sessions", "distinct_solves", "cache_hits",
             "seconds", "queries_per_s"],
            rows,
        )
    )
    stats = service.stats()
    print(
        "cache: "
        + ", ".join(f"{name}={stats[name]}" for name in
                    ("hits", "misses", "evictions", "size", "capacity"))
        + f", hit_rate={stats['hit_rate']:.3f}"
    )
    print(
        "planner: "
        + ", ".join(f"{name}={stats[name]}" for name in
                    ("n_solves_planned", "n_solves_eliminated",
                     "n_passes_applied"))
    )
    if "disk_size" in stats:
        print(
            "disk tier: "
            + ", ".join(f"{name}={stats[name]}" for name in
                        ("disk_hits", "disk_misses", "disk_size"))
        )
    if "n_shards" in stats:
        print(
            "shard tier: "
            + ", ".join(f"{name}={stats[name]}" for name in
                        ("n_shards", "shard_hits", "shard_misses",
                         "shard_size"))
        )
    return 0


def _load_dataset(args):
    """The database an ad-hoc CLI request runs against."""
    if args.dataset == "polls":
        from repro.db.examples import polling_example

        return polling_example()
    from repro.datasets.crowdrank import crowdrank_database

    return crowdrank_database(
        n_workers=args.sessions, n_movies=args.movies, seed=args.seed
    )


def run_explain(args) -> int:
    """Render the cost-annotated, optimized plan of one request (or several).

    The plan is built and optimized but *not* executed — ``explain`` is the
    cheap pre-flight view of what evaluation would do: the sessions each
    request selects, the compiled pattern unions, the surviving solve
    frontier with resolved solvers and DP state-count estimates, the
    per-kind terminal (probability / count / top-k / attribute aggregate),
    and how many solves the optimizer eliminated.
    """
    from repro.api.requests import parse_request
    from repro.plan import build_plan, optimize_plan
    from repro.query.classify import UnsupportedQueryError

    if not _check_method(args.method):
        return 2
    db = _load_dataset(args)
    try:
        requests = [parse_request(text) for text in args.query]
        plan = build_plan(requests, db, method=args.method)
        if not args.no_optimize:
            optimize_plan(plan, canonical=True)
        print(plan.explain())
    except (UnsupportedQueryError, ValueError, KeyError) as error:
        # KeyError: an AGG request whose relation/column/session row is
        # missing fails at plan-build time (the attribute join).
        print(f"cannot plan query: {error}", file=sys.stderr)
        return 2
    return 0


def run_query(args) -> int:
    """One-shot evaluation of any request kind through the unified API."""
    import numpy as np

    from repro.api import answer, parse_request
    from repro.query.classify import UnsupportedQueryError
    from repro.query.engine import APPROXIMATE_METHODS

    if not _check_method(args.method):
        return 2
    db = _load_dataset(args)
    rng = None
    if args.method in APPROXIMATE_METHODS or args.method == "auto-approx":
        rng = np.random.default_rng(args.seed)
    try:
        request = parse_request(args.query)
        result = answer(request, db, method=args.method, rng=rng)
    except (UnsupportedQueryError, ValueError, KeyError) as error:
        print(f"cannot evaluate query: {error}", file=sys.stderr)
        return 2
    print(f"request: {request.describe()}")
    print(f"kind: {result.kind}")
    if result.kind == "probability":
        print(f"Pr(Q | D) = {result.value:.6f}")
    elif result.kind == "count":
        print(f"E[count(Q)] = {result.value:.6f}")
    elif result.kind == "aggregate":
        print(
            f"E[{request.statistic}({request.relation}.{request.column})"
            f" | count(Q) > 0] = {result.value:.6f}"
        )
        print(
            f"probability_any = {result.stats['probability_any']:.6f}, "
            f"weighted_average = {result.stats['weighted_average']:.6f} "
            f"(n_worlds = {result.stats['n_worlds']})"
        )
    else:  # top_k
        print(
            f"top-{request.k} sessions "
            f"(strategy={request.strategy}, "
            f"exact={result.stats['n_exact_evaluations']}, "
            f"pruned={result.stats['n_pruned']}):"
        )
        print(
            format_table(
                ["rank", "session", "probability"],
                [
                    [rank + 1, repr(key), probability]
                    for rank, (key, probability) in enumerate(result.value)
                ],
            )
        )
    methods = ", ".join(result.methods) if result.methods else "(none)"
    print(
        f"sessions={result.n_sessions}, resolved_methods=[{methods}], "
        f"seconds={result.seconds:.3f}"
    )
    return 0


def run_figure(name: str, fast: bool) -> int:
    try:
        runner, fast_kwargs = EXPERIMENTS[name]
    except KeyError:
        print(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    result = runner(**fast_kwargs) if fast else runner()
    print(f"== {result.experiment} ==")
    print(format_table(result.headers, result.rows))
    if result.notes:
        print(f"notes: {result.notes}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    figure_parser = subparsers.add_parser(
        "figure", help="reproduce one figure of the paper"
    )
    figure_parser.add_argument("name", help="figure id, e.g. 5, 10a, accuracy")
    figure_parser.add_argument(
        "--fast", action="store_true",
        help="smaller parameters (seconds instead of minutes)",
    )
    subparsers.add_parser("demo", help="run the quickstart walkthrough")
    batch_parser = subparsers.add_parser(
        "batch",
        help="serve a repeated query batch through the solver cache",
    )
    batch_parser.add_argument(
        "--queries", type=int, default=12, help="queries per pass"
    )
    batch_parser.add_argument(
        "--sessions", type=int, default=200, help="CrowdRank sessions"
    )
    batch_parser.add_argument(
        "--movies", type=int, default=8, help="CrowdRank catalog size"
    )
    batch_parser.add_argument(
        "--repeat", type=int, default=2,
        help="number of passes over the same batch (pass 2+ is cache-warm)",
    )
    batch_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for distinct solves "
        "(default: min(8, cpu_count); 1 = serial)",
    )
    batch_parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="thread",
        help="execution backend for distinct solves (process scales the "
        "exact DP solvers across cores)",
    )
    batch_parser.add_argument(
        "--cache-db", default=None, metavar="PATH",
        help="SQLite file for the persistent cache tier (warm state "
        "survives restarts; with --cache-shards: the stem of the "
        "per-shard files)",
    )
    batch_parser.add_argument(
        "--cache-shards", type=int, default=None, metavar="N",
        help="shard the warm cache tier N ways (repro.service.shard)",
    )
    batch_parser.add_argument(
        "--shard-address", default=None, metavar="HOST:PORT",
        help="join a running ShardCacheServer as one worker of a fleet "
        "(excludes --cache-db/--cache-shards)",
    )
    batch_parser.add_argument(
        "--capacity", type=int, default=4096, help="solver-cache capacity"
    )
    batch_parser.add_argument(
        "--method", default="auto",
        help="solver method (default: auto dispatch; 'auto-approx' falls "
        "back to MIS-AMP above the state-count budget)",
    )
    batch_parser.add_argument(
        "--approx-budget", type=float, default=None, metavar="STATES",
        help="auto-approx state-count budget (default: the planner's 5e7)",
    )
    batch_parser.add_argument("--seed", type=int, default=7)

    explain_parser = subparsers.add_parser(
        "explain",
        help="render the cost-annotated query plan without executing it",
    )
    explain_parser.add_argument(
        "query", nargs="+",
        help="query text(s); several queries plan as one batch",
    )
    explain_parser.add_argument(
        "--dataset", choices=("crowdrank", "polls"), default="crowdrank",
        help="database to plan against (default: a seeded CrowdRank)",
    )
    explain_parser.add_argument(
        "--method", default="auto",
        help="solver method (default: auto; 'auto-approx' shows the "
        "budgeted MIS-AMP fallback)",
    )
    explain_parser.add_argument(
        "--no-optimize", action="store_true",
        help="show the unoptimized logical plan (one solve per session)",
    )
    explain_parser.add_argument(
        "--sessions", type=int, default=50, help="CrowdRank sessions"
    )
    explain_parser.add_argument(
        "--movies", type=int, default=8, help="CrowdRank catalog size"
    )
    explain_parser.add_argument("--seed", type=int, default=7)

    query_parser = subparsers.add_parser(
        "query",
        help="evaluate one request of any kind (unified request grammar)",
    )
    query_parser.add_argument(
        "query",
        help="request text: a CQ, or COUNT / TOPK k / AGG stat(R.col) "
        "prefixed forms",
    )
    query_parser.add_argument(
        "--dataset", choices=("crowdrank", "polls"), default="crowdrank",
        help="database to evaluate against (default: a seeded CrowdRank)",
    )
    query_parser.add_argument(
        "--method", default="auto",
        help="solver method (default: auto dispatch; sampling methods and "
        "'auto-approx' seed an rng from --seed)",
    )
    query_parser.add_argument(
        "--sessions", type=int, default=50, help="CrowdRank sessions"
    )
    query_parser.add_argument(
        "--movies", type=int, default=8, help="CrowdRank catalog size"
    )
    query_parser.add_argument("--seed", type=int, default=7)

    from repro.server.cli import add_serve_parser

    add_serve_parser(subparsers)

    from repro.stream.cli import add_replay_parser

    add_replay_parser(subparsers)

    from repro.analysis.cli import add_lint_parser

    add_lint_parser(subparsers)

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            runner, _ = EXPERIMENTS[name]
            summary = (runner.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {summary}")
        return 0
    if args.command == "figure":
        return run_figure(args.name, args.fast)
    if args.command == "batch":
        return run_batch(args)
    if args.command == "explain":
        return run_explain(args)
    if args.command == "query":
        return run_query(args)
    if args.command == "serve":
        from repro.server.cli import run_serve

        return run_serve(args)
    if args.command == "replay":
        from repro.stream.cli import run_replay

        return run_replay(args)
    if args.command == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(args)
    if args.command == "demo":
        # The examples directory is not an installed package; run the
        # quickstart by path so `python -m repro demo` works from a clone.
        import runpy
        from pathlib import Path

        script = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
        runpy.run_path(str(script), run_name="__main__")
        return 0
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
