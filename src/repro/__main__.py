"""Command-line entry point: reproduce a paper figure or run the demo.

Usage::

    python -m repro list                 # available experiments
    python -m repro figure 5             # run Figure 5 at default scale
    python -m repro figure 10a --fast    # quick, smaller parameters
    python -m repro demo                 # the quickstart walkthrough

Each figure command prints the same rows/series the paper's figure reports
(see EXPERIMENTS.md for the paper-vs-measured record).
"""

from __future__ import annotations

import argparse
import sys

from repro.evaluation import experiments
from repro.evaluation.harness import format_table

#: Experiment name -> (runner, fast-scale keyword arguments).
EXPERIMENTS = {
    "4": (experiments.figure_4, {"m_values": (6, 8), "sessions_per_m": 2}),
    "5": (experiments.figure_5, {"n_unions": 2, "m": 7}),
    "6": (
        experiments.figure_6,
        {"m_values": (10, 14), "patterns_per_union": (2, 3), "time_budget": 2.0},
    ),
    "7a": (
        experiments.figure_7a,
        {"m_values": (6, 8), "labels_per_pattern": (2, 3), "instances_per_cell": 1},
    ),
    "7b": (
        experiments.figure_7b,
        {"m_values": (6, 8), "patterns_per_union": (1, 2), "instances_per_cell": 1},
    ),
    "8": (experiments.figure_8, {"k_values": (1, 5), "n_voters": 40}),
    "9": (
        experiments.figure_9,
        {"m_values": (4, 5), "repeats": 1, "rs_max_samples": 100_000},
    ),
    "10a": (
        experiments.figure_10,
        {"benchmark": "a", "d_values": (1, 5), "n_instances": 3, "m": 8},
    ),
    "10b": (
        experiments.figure_10,
        {"benchmark": "c", "d_values": (1, 5), "n_instances": 3, "m": 7},
    ),
    "11": (experiments.figure_11, {"d_values": (1, 5), "n_instances": 3, "m": 8}),
    "12": (experiments.figure_12, {"n_instances": 4, "m": 7}),
    "13a": (
        experiments.figure_13a,
        {"labels_per_pattern": (3, 4), "items_per_label": (3,), "m": 15},
    ),
    "13b": (
        experiments.figure_13b,
        {"m_values": (20, 50), "labels_per_pattern": (3,)},
    ),
    "14": (
        experiments.figure_14,
        {"m_values": (15, 30), "n_users": 2, "n_components": 2,
         "n_per_proposal": 40, "max_proposals": 5},
    ),
    "15": (
        experiments.figure_15,
        {"session_counts": (10, 100), "naive_limit": 100, "n_movies": 6},
    ),
    "accuracy": (
        experiments.accuracy_table,
        {"m": 8, "n_sessions": 5, "n_voters": 15},
    ),
}


def run_figure(name: str, fast: bool) -> int:
    try:
        runner, fast_kwargs = EXPERIMENTS[name]
    except KeyError:
        print(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    result = runner(**fast_kwargs) if fast else runner()
    print(f"== {result.experiment} ==")
    print(format_table(result.headers, result.rows))
    if result.notes:
        print(f"notes: {result.notes}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    figure_parser = subparsers.add_parser(
        "figure", help="reproduce one figure of the paper"
    )
    figure_parser.add_argument("name", help="figure id, e.g. 5, 10a, accuracy")
    figure_parser.add_argument(
        "--fast", action="store_true",
        help="smaller parameters (seconds instead of minutes)",
    )
    subparsers.add_parser("demo", help="run the quickstart walkthrough")

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            runner, _ = EXPERIMENTS[name]
            summary = (runner.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {summary}")
        return 0
    if args.command == "figure":
        return run_figure(args.name, args.fast)
    if args.command == "demo":
        # The examples directory is not an installed package; run the
        # quickstart by path so `python -m repro demo` works from a clone.
        import runpy
        from pathlib import Path

        script = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
        runpy.run_path(str(script), run_name="__main__")
        return 0
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
