"""Abstract syntax of Boolean conjunctive queries over a RIM-PPD.

A query is a conjunction of:

* **P-atoms** ``P(s̄; a; b)`` — "in the session identified by terms ``s̄``,
  item ``a`` is preferred to item ``b``";
* **o-atoms** ``R(t1, ..., tk)`` — relational conditions over o-relations;
* **comparisons** ``x <= 5`` — a variable against a constant.

Terms are variables, constants, or the anonymous wildcard ``_`` (each
occurrence of which is independent).  Only Boolean queries are represented:
the head is empty and the semantics is the marginal probability that the
query is satisfied in a random possible world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Sequence, Union


@dataclass(frozen=True)
class Variable:
    """A named query variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant value (string, number, ...)."""

    value: Hashable

    def __repr__(self) -> str:
        return repr(self.value)


class _Wildcard:
    """The anonymous term ``_``; every occurrence is independent."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "_"


#: The singleton wildcard term.
WILDCARD = _Wildcard()

Term = Union[Variable, Constant, _Wildcard]


def is_variable(term: Term) -> bool:
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    return isinstance(term, Constant)


def is_wildcard(term: Term) -> bool:
    return term is WILDCARD


@dataclass(frozen=True)
class PAtom:
    """``relation(session_terms; left; right)`` — a preference atom."""

    relation: str
    session_terms: tuple[Term, ...]
    left: Term
    right: Term

    def __repr__(self) -> str:
        session = ", ".join(map(repr, self.session_terms))
        return f"{self.relation}({session}; {self.left!r}; {self.right!r})"


@dataclass(frozen=True)
class OAtom:
    """``relation(t1, ..., tk)`` — an ordinary relational atom."""

    relation: str
    terms: tuple[Term, ...]

    def __repr__(self) -> str:
        return f"{self.relation}({', '.join(map(repr, self.terms))})"


#: Comparison operators supported in queries.
COMPARISON_OPS = ("=", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True)
class Comparison:
    """``variable op constant`` — a selection condition."""

    variable: Variable
    op: str
    value: Hashable

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def __repr__(self) -> str:
        return f"{self.variable!r} {self.op} {self.value!r}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A Boolean CQ: a conjunction of P-atoms, o-atoms, and comparisons."""

    p_atoms: tuple[PAtom, ...]
    o_atoms: tuple[OAtom, ...] = ()
    comparisons: tuple[Comparison, ...] = ()

    def __post_init__(self):
        if not self.p_atoms:
            raise ValueError(
                "a query over a RIM-PPD needs at least one preference atom"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def variables(self) -> set[Variable]:
        """All variables occurring anywhere in the query."""
        result: set[Variable] = set()
        for atom in self.p_atoms:
            for term in (*atom.session_terms, atom.left, atom.right):
                if is_variable(term):
                    result.add(term)
        for atom in self.o_atoms:
            for term in atom.terms:
                if is_variable(term):
                    result.add(term)
        for comparison in self.comparisons:
            result.add(comparison.variable)
        return result

    def item_terms(self) -> list[Term]:
        """Terms in preference (item) positions, in atom order."""
        terms: list[Term] = []
        for atom in self.p_atoms:
            terms.append(atom.left)
            terms.append(atom.right)
        return terms

    def item_variables(self) -> set[Variable]:
        return {t for t in self.item_terms() if is_variable(t)}

    def session_variables(self) -> set[Variable]:
        return {
            term
            for atom in self.p_atoms
            for term in atom.session_terms
            if is_variable(term)
        }

    def substitute(self, assignment: dict[Variable, Hashable]) -> "ConjunctiveQuery":
        """Replace variables by constants according to ``assignment``."""

        def sub(term: Term) -> Term:
            if is_variable(term) and term in assignment:
                return Constant(assignment[term])
            return term

        p_atoms = tuple(
            PAtom(
                a.relation,
                tuple(sub(t) for t in a.session_terms),
                sub(a.left),
                sub(a.right),
            )
            for a in self.p_atoms
        )
        o_atoms = tuple(
            OAtom(a.relation, tuple(sub(t) for t in a.terms))
            for a in self.o_atoms
        )
        comparisons = []
        for c in self.comparisons:
            if c.variable in assignment:
                # The comparison becomes ground; callers must have checked
                # it holds (grounding only assigns values passing selections).
                continue
            comparisons.append(c)
        return ConjunctiveQuery(p_atoms, o_atoms, tuple(comparisons))

    def atoms_repr(self) -> str:
        parts: list[str] = [repr(a) for a in self.p_atoms]
        parts += [repr(a) for a in self.o_atoms]
        parts += [repr(c) for c in self.comparisons]
        return ", ".join(parts)

    def __repr__(self) -> str:
        return f"Q() <- {self.atoms_repr()}"

    def __iter__(self) -> Iterator:
        yield from self.p_atoms
        yield from self.o_atoms
        yield from self.comparisons


def query(
    p_atoms: Sequence[PAtom],
    o_atoms: Sequence[OAtom] = (),
    comparisons: Sequence[Comparison] = (),
) -> ConjunctiveQuery:
    """Convenience constructor with sequence arguments."""
    return ConjunctiveQuery(tuple(p_atoms), tuple(o_atoms), tuple(comparisons))
