"""Conjunctive queries over RIM-PPDs (Sections 1 and 3 of the paper).

The pipeline:

1. :mod:`repro.query.ast` / :mod:`repro.query.parser` — query representation
   and a small Datalog-like text syntax;
2. :mod:`repro.query.classify` — sessionwise / itemwise / non-itemwise
   classification and the grounding set ``V+(Q)``;
3. :mod:`repro.query.ground` — Algorithm 2: rewrite a non-itemwise CQ as a
   union of itemwise CQs by instantiating ``V+(Q)`` over active domains;
4. :mod:`repro.query.compile` — itemwise CQ → label pattern + labeling;
5. :mod:`repro.query.engine` — per-session inference, independent-session
   aggregation, and the identical-request grouping of Section 6.4;
6. :mod:`repro.query.aggregates` — Count-Session and Most-Probable-Session
   (with the top-k upper-bound optimization of Section 3.2).

Since the unified query API, :func:`evaluate` and the aggregate functions
are thin deprecated wrappers over :mod:`repro.api`: every query kind is a
typed request evaluated through the plan pipeline (:mod:`repro.plan`),
with these entry points kept bit-identical for compatibility.
"""

from repro.query.aggregates import (
    aggregate_session_attribute,
    count_session,
    most_probable_session,
)
from repro.query.ast import (
    Comparison,
    ConjunctiveQuery,
    Constant,
    OAtom,
    PAtom,
    Variable,
    WILDCARD,
)
from repro.query.classify import QueryAnalysis, UnsupportedQueryError, analyze
from repro.query.engine import QueryResult, SessionEvaluation, evaluate
from repro.query.ground import decompose_query
from repro.query.parser import QuerySyntaxError, parse_query

__all__ = [
    "QuerySyntaxError",
    "Variable",
    "Constant",
    "WILDCARD",
    "PAtom",
    "OAtom",
    "Comparison",
    "ConjunctiveQuery",
    "parse_query",
    "analyze",
    "QueryAnalysis",
    "UnsupportedQueryError",
    "decompose_query",
    "evaluate",
    "QueryResult",
    "SessionEvaluation",
    "count_session",
    "most_probable_session",
    "aggregate_session_attribute",
]
