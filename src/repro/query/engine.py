"""The query engine: per-session inference and aggregation.

Evaluation of a Boolean CQ ``Q`` over a RIM-PPD ``D`` (Section 3.1):

1. analyze and validate the query (sessionwise check);
2. select the sessions matching the session terms / comparisons;
3. per session: substitute session-bound attribute variables (from o-atoms
   joined on the session, e.g. voter demographics), ground ``V+(Q)``
   (Algorithm 2), and compile the resulting union of itemwise CQs into a
   union of label patterns;
4. compute ``Pr(Q | s)`` per session — exactly (dispatching to the
   two-label / bipartite / general solver) or approximately (MIS-AMP
   solvers); mixtures of Mallows marginalize over components;
5. aggregate across independent sessions:
   ``Pr(Q | D) = 1 - prod_i (1 - Pr(Q | s_i))``.

Identical-request grouping (Section 6.4): many sessions share the same
(model, pattern-union) pair; with ``group_sessions=True`` (default) each
distinct pair is solved once.  Passing a
:class:`~repro.service.cache.SolverCache` via ``cache=`` generalizes that
dedup across queries: session solves are keyed canonically
(:func:`repro.service.keys.session_cache_key`), so repeated workloads are
served from the cache instead of re-solving — see
:class:`repro.service.service.PreferenceService` for the batch layer on
top.

Since the planner refactor, :func:`evaluate` is a thin wrapper over the
explicit query plan (:mod:`repro.plan`): build the plan DAG, run the
optimizer passes (which subsume the grouping above), execute the surviving
solve frontier.  The primitives this module keeps —
:func:`compile_session_work`, :func:`solve_session`,
:func:`aggregate_sessions` — are what the plan builder and executor are
made of, and remain the public per-session API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

import numpy as np

from repro.approx.adaptive import mis_amp_adaptive
from repro.approx.lite import mis_amp_lite
from repro.db.database import PPDatabase, _compare
from repro.patterns.labels import Labeling
from repro.patterns.matching import union_predicate
from repro.patterns.union import PatternUnion
from repro.query.ast import ConjunctiveQuery, is_constant, is_variable
from repro.query.classify import QueryAnalysis, analyze
from repro.query.compile import compile_itemwise
from repro.query.ground import decompose_query
from repro.rim.mixture import MallowsMixture
from repro.rim.sampling import empirical_probability
from repro.service.cache import SolverCache
from repro.solvers.dispatch import solve as exact_solve

SessionKey = tuple[Hashable, ...]

#: Approximate methods accepted by :func:`evaluate`.
APPROXIMATE_METHODS = ("mis_amp_lite", "mis_amp_adaptive", "rejection")


@dataclass
class SessionWork:
    """Everything needed to evaluate one session: model + compiled union."""

    key: SessionKey
    model: Any
    union: PatternUnion | None  # None: the query is false on this session
    labels: frozenset = frozenset()


@dataclass
class SessionEvaluation:
    """Per-session outcome."""

    key: SessionKey
    probability: float
    solver: str = ""


@dataclass
class QueryResult:
    """The result of evaluating a Boolean CQ over a RIM-PPD."""

    probability: float
    per_session: list[SessionEvaluation]
    n_sessions: int
    n_solver_calls: int
    n_groups: int
    grouped: bool
    method: str
    seconds: float
    stats: dict = field(default_factory=dict)

    def session_probability(self, key: SessionKey) -> float:
        for evaluation in self.per_session:
            if evaluation.key == key:
                return evaluation.probability
        raise KeyError(f"no session {key!r} in the result")


# ----------------------------------------------------------------------
# Compilation of per-session work
# ----------------------------------------------------------------------


def compile_session_work(
    query: ConjunctiveQuery,
    db: PPDatabase,
    analysis: QueryAnalysis | None = None,
    session_limit: int | None = None,
) -> list[SessionWork]:
    """Select sessions and compile the pattern union of each."""
    if analysis is None:
        analysis = analyze(query, db)
    prelation = db.prelation(analysis.p_relation)
    works: list[SessionWork] = []
    union_cache: dict[tuple, PatternUnion | None] = {}

    for key in prelation.session_keys():
        if session_limit is not None and len(works) >= session_limit:
            break
        binding = _bind_session_terms(analysis, key)
        if binding is None:
            continue
        bindings = _session_atom_bindings(analysis, db, binding)
        # One signature per assignment: a failed join ([], the query is
        # false here) must not collide with a successful binding-free join
        # ([{}]), and the disjunct structure matters ([{x:1}, {y:2}] is a
        # different query than [{x:1, y:2}]).
        cache_key = frozenset(
            tuple(
                sorted((variable.name, value) for variable, value in assignment.items())
            )
            for assignment in bindings
        )
        if cache_key in union_cache:
            union = union_cache[cache_key]
        else:
            union = _compile_union(analysis, db, bindings)
            union_cache[cache_key] = union
        works.append(
            SessionWork(key=key, model=prelation.model_of(key), union=union)
        )
    return works


def _bind_session_terms(
    analysis: QueryAnalysis, key: SessionKey
) -> dict | None:
    """Match a session key against the session terms; None on mismatch."""
    binding: dict = {}
    for term, value in zip(analysis.session_terms, key):
        if is_constant(term):
            if term.value != value:
                return None
        elif is_variable(term):
            if term in binding and binding[term] != value:
                return None
            binding[term] = value
    for variable, value in binding.items():
        for comparison in analysis.comparisons.get(variable, []):
            if not _compare(value, comparison.op, comparison.value):
                return None
    return binding


def _session_atom_bindings(
    analysis: QueryAnalysis, db: PPDatabase, session_binding: dict
) -> list[dict]:
    """Join the session atoms: assignments of session-bound variables.

    Multiple matching rows produce multiple assignments (each a disjunct of
    the per-session query); no matching rows produce the empty list — the
    query is false on this session.
    """
    bindings: list[dict] = [{}]
    for atom in analysis.session_atoms:
        session_variable = atom.terms[0]
        value = session_binding.get(session_variable)
        if value is None:
            return []  # session variable not bound by the key: cannot join
        relation = db.orelation(atom.relation)
        row_assignments: list[dict] = []
        for row in relation.rows_where({0: value}):
            assignment: dict = {}
            consistent = True
            for position, term in enumerate(atom.terms):
                if position == 0:
                    continue
                if is_variable(term) and term == session_variable:
                    # A session variable recurring at a later column still
                    # constrains the row: V(v, _, v) only joins rows whose
                    # third column repeats the session value.
                    if row[position] != value:
                        consistent = False
                        break
                    continue
                if is_constant(term):
                    if row[position] != term.value:
                        consistent = False
                        break
                elif is_variable(term):
                    if term in assignment and assignment[term] != row[position]:
                        consistent = False
                        break
                    assignment[term] = row[position]
            if not consistent:
                continue
            if not _assignment_passes_comparisons(analysis, assignment):
                continue
            row_assignments.append(assignment)
        merged: list[dict] = []
        for base in bindings:
            for extra in row_assignments:
                if all(base.get(k, v) == v for k, v in extra.items()):
                    merged.append({**base, **extra})
        bindings = merged
        if not bindings:
            return []
    # Deduplicate assignments (different rows may bind identical values).
    unique: list[dict] = []
    seen: set[tuple] = set()
    for assignment in bindings:
        signature = tuple(sorted((v.name, val) for v, val in assignment.items()))
        if signature not in seen:
            seen.add(signature)
            unique.append(assignment)
    return unique


def _assignment_passes_comparisons(
    analysis: QueryAnalysis, assignment: dict
) -> bool:
    for variable, value in assignment.items():
        for comparison in analysis.comparisons.get(variable, []):
            if not _compare(value, comparison.op, comparison.value):
                return False
    return True


def _compile_union(
    analysis: QueryAnalysis, db: PPDatabase, bindings: list[dict]
) -> PatternUnion | None:
    """Union of patterns across session-atom bindings and V+ groundings."""
    patterns = []
    for assignment in bindings:
        bound_query = analysis.query.substitute(
            {variable: value for variable, value in assignment.items()}
        )
        bound_analysis = analyze(bound_query, db)
        for _, grounded in decompose_query(bound_query, db, bound_analysis):
            pattern = compile_itemwise(grounded, db)
            if pattern is not None:
                patterns.append(pattern)
    if not patterns:
        return None
    return PatternUnion(patterns)


# ----------------------------------------------------------------------
# Solving
# ----------------------------------------------------------------------


def _solve_single_model(
    model,
    labeling: Labeling,
    union: PatternUnion,
    method: str,
    rng: np.random.Generator | None,
    options: dict,
) -> tuple[float, str]:
    if method in APPROXIMATE_METHODS and rng is None:
        raise ValueError(f"method {method!r} requires an rng")
    if method == "mis_amp_lite":
        result = mis_amp_lite(model, labeling, union, rng=rng, **options)
        return result.probability, result.solver
    if method == "mis_amp_adaptive":
        result = mis_amp_adaptive(model, labeling, union, rng=rng, **options)
        return result.probability, result.solver
    if method == "rejection":
        n_samples = options.get("n_samples", 2000)
        # union_predicate carries a batched `.many` path, so the estimate
        # runs through the vectorized kernels unless explicitly disabled
        # via the `vectorized=False` solver option.
        estimate = empirical_probability(
            model,
            union_predicate(union, labeling),
            n_samples,
            rng,
            vectorized=options.get("vectorized"),
        )
        return estimate.estimate, "rejection"
    result = exact_solve(model, labeling, union, method=method, **options)
    return result.probability, result.solver


def solve_session(
    model,
    labeling: Labeling,
    union: PatternUnion,
    method: str = "auto",
    rng: np.random.Generator | None = None,
    **options,
) -> tuple[float, str]:
    """``Pr(G)`` for one session model (marginalizing Mallows mixtures).

    The reported solver name is the one that actually ran: ``"auto"`` is
    resolved through the dispatch, and a mixture reports the per-component
    solver (``mixture[two_label]``, never ``mixture[auto]``).
    """
    if isinstance(model, MallowsMixture):
        probabilities = []
        component_solvers = []
        for component in model.components:
            probability, solver_name = _solve_single_model(
                component, labeling, union, method, rng, options
            )
            probabilities.append(probability)
            component_solvers.append(solver_name)
        names = sorted(set(component_solvers))
        return (
            model.marginalize(probabilities),
            f"mixture[{'+'.join(names)}]",
        )
    return _solve_single_model(model, labeling, union, method, rng, options)


# ----------------------------------------------------------------------
# Evaluation entry point
# ----------------------------------------------------------------------


def aggregate_sessions(per_session: list[SessionEvaluation]) -> float:
    """``Pr(Q | D) = 1 - prod_i (1 - Pr(Q | s_i))`` with per-session clamping.

    The single aggregation used by both :func:`evaluate` and the batch
    serving layer (:meth:`repro.service.service.PreferenceService`), so the
    two paths cannot drift apart.
    """
    complement = 1.0
    for evaluation in per_session:
        complement *= 1.0 - min(1.0, max(0.0, evaluation.probability))
    return 1.0 - complement


def evaluate(
    query: ConjunctiveQuery,
    db: PPDatabase,
    method: str = "auto",
    rng: np.random.Generator | None = None,
    group_sessions: bool = True,
    session_limit: int | None = None,
    cache: SolverCache | None = None,
    optimize: bool = True,
    **solver_options,
) -> QueryResult:
    """Evaluate a Boolean CQ: the probability it holds in a random world.

    A thin deprecated wrapper over the unified query API
    (:func:`repro.api.evaluate.answer` with a
    :class:`~repro.api.requests.Probability` request): the query is
    compiled into an explicit plan DAG, the optimizer passes resolve
    solver methods, annotate costs, and merge identical solves, and the
    executor runs the surviving frontier through the unchanged solver
    stack — bit-identical to the historical monolithic path,
    probabilities and solver attributions included.

    Parameters
    ----------
    method:
        An exact solver name (``"auto"``, ``"two_label"``, ``"bipartite"``,
        ``"general"``, ``"lifted"``, ``"brute"``), an approximate one
        (``"mis_amp_lite"``, ``"mis_amp_adaptive"``, ``"rejection"``), or
        ``"auto-approx"`` — auto resolution with an opt-in MIS-AMP fallback
        for solves whose estimated DP state count exceeds the
        ``approx_budget`` solver option (requires ``rng`` when it
        triggers); see :mod:`repro.plan.methods`.
    group_sessions:
        Solve each distinct (model, union) pair once (Section 6.4) — the
        plan's common-solve elimination pass.
    session_limit:
        Evaluate only the first N selected sessions (for scalability
        sweeps).
    cache:
        An optional :class:`~repro.service.cache.SolverCache` shared across
        calls.  Session solves are then grouped by *canonical* key — so
        equal-content models group even across distinct objects — and
        consulted/stored in the cache before dispatching.  Ignored for the
        sampling methods (their results are rng-dependent) and when
        ``group_sessions=False`` (the naive baseline must re-solve every
        session; a cache would silently reintroduce dedup).  The number of
        cross-query hits is reported in ``QueryResult.stats["cache_hits"]``.
    optimize:
        Apply the optimizer pass pipeline (default).  ``False`` executes
        the unoptimized plan — one solve per session, no reordering, and
        no cache use (canonical keys are an optimizer product) — the
        reference the per-pass equivalence tests compare against.
    solver_options:
        Forwarded to the chosen solver (e.g. ``n_proposals=10`` for
        MIS-AMP-lite, ``time_budget=60`` for exact solvers).
    """
    # Deferred: the unified API builds on this module's primitives.
    from repro.api.evaluate import answer
    from repro.api.requests import Probability

    return answer(
        Probability(query),
        db,
        method=method,
        rng=rng,
        group_sessions=group_sessions,
        session_limit=session_limit,
        cache=cache,
        optimize=optimize,
        **solver_options,
    ).to_legacy()
