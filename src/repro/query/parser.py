"""A small text syntax for conjunctive queries.

Grammar (whitespace-insensitive)::

    query       :=  [ "Q()" "<-" ] atom ("," atom)*
    atom        :=  p_atom | o_atom | comparison
    p_atom      :=  NAME "(" terms ";" term ";" term ")"
    o_atom      :=  NAME "(" terms ")"
    comparison  :=  NAME OP literal          OP in  = != <= >= < >
    terms       :=  term ("," term)*
    term        :=  "_" | literal | NAME
    literal     :=  'single-quoted string' | "double-quoted string" | number

Conventions: quoted strings and numbers are constants; a bare ``NAME`` is a
variable; ``_`` is the anonymous wildcard.  The running example Q2 of the
paper reads::

    Q() <- P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)

Syntax errors carry their source position: every :class:`QuerySyntaxError`
raised here has an ``offset`` (the character offset of the offending token
in the original text) and renders a caret excerpt pointing at it.  The
extended request grammar (``COUNT`` / ``TOPK`` / ``AGG`` prefixes, see
:mod:`repro.api.requests`) parses its query tail through this module with a
``base_offset``, so offsets stay relative to the full request text.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.query.ast import (
    Comparison,
    ConjunctiveQuery,
    Constant,
    OAtom,
    PAtom,
    Term,
    Variable,
    WILDCARD,
)

#: Width of the caret excerpt window around the error position.
_EXCERPT_WINDOW = 60


def caret_excerpt(source: str, offset: int) -> str:
    """A two-line excerpt of ``source`` with a caret under ``offset``.

    Long sources are windowed to ``_EXCERPT_WINDOW`` characters around the
    offset, with ``...`` ellipses marking truncation, so the caret always
    lands inside the printed line.
    """
    offset = max(0, min(offset, len(source)))
    start, end = 0, len(source)
    prefix = suffix = ""
    if end - start > _EXCERPT_WINDOW:
        half = _EXCERPT_WINDOW // 2
        start = max(0, offset - half)
        end = min(len(source), start + _EXCERPT_WINDOW)
        start = max(0, end - _EXCERPT_WINDOW)
        if start > 0:
            prefix = "..."
        if end < len(source):
            suffix = "..."
    line = prefix + source[start:end] + suffix
    caret = " " * (len(prefix) + offset - start) + "^"
    return f"    {line}\n    {caret}"


class QuerySyntaxError(ValueError):
    """Raised on malformed query text, carrying the source position.

    ``offset`` is the character offset of the offending token in the
    original text (``None`` when the error is not anchored to a position);
    ``source`` is that text.  The rendered message appends the offset and a
    caret excerpt when both are known.
    """

    def __init__(
        self,
        message: str,
        *,
        source: str | None = None,
        offset: int | None = None,
    ):
        self.message = message
        self.source = source
        self.offset = offset
        rendered = message
        if offset is not None:
            rendered = f"{message} (at offset {offset})"
            if source is not None:
                rendered += "\n" + caret_excerpt(source, offset)
        super().__init__(rendered)


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<head>Q\s*\(\s*\)\s*<-)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<name>[A-Za-z][A-Za-z0-9_]*)
  | (?P<wildcard>_)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),;])
    """,
    re.VERBOSE,
)


def _tokenize(
    text: str, source: str, base_offset: int
) -> Iterator[tuple[str, str, int]]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r}",
                source=source,
                offset=base_offset + position,
            )
        start = position
        position = match.end()
        kind = match.lastgroup
        if kind in ("ws", "head"):
            continue
        yield kind, match.group(), base_offset + start
    yield "eof", "", base_offset + len(text)


class _Parser:
    def __init__(self, text: str, source: str | None = None, base_offset: int = 0):
        self._source = text if source is None else source
        self._tokens = list(_tokenize(text, self._source, base_offset))
        self._index = 0

    def _peek(self) -> tuple[str, str, int]:
        return self._tokens[self._index]

    def _next(self) -> tuple[str, str, int]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _error(self, message: str, offset: int) -> QuerySyntaxError:
        return QuerySyntaxError(message, source=self._source, offset=offset)

    def _expect(self, value: str) -> None:
        kind, text, offset = self._next()
        if text != value:
            raise self._error(f"expected {value!r}, found {text!r}", offset)

    def parse(self) -> ConjunctiveQuery:
        p_atoms: list[PAtom] = []
        o_atoms: list[OAtom] = []
        comparisons: list[Comparison] = []
        while True:
            self._parse_conjunct(p_atoms, o_atoms, comparisons)
            kind, text, offset = self._peek()
            if text == ",":
                self._next()
                continue
            if kind == "eof":
                break
            raise self._error(
                f"expected ',' or end of query, found {text!r}", offset
            )
        return ConjunctiveQuery(tuple(p_atoms), tuple(o_atoms), tuple(comparisons))

    def _parse_conjunct(self, p_atoms, o_atoms, comparisons) -> None:
        kind, text, offset = self._next()
        if kind != "name":
            raise self._error(
                f"expected atom or comparison, found {text!r}", offset
            )
        name = text
        next_kind, next_text, next_offset = self._peek()
        if next_text == "(":
            self._parse_atom(name, offset, p_atoms, o_atoms)
            return
        if next_kind == "op":
            _, op, _ = self._next()
            comparisons.append(Comparison(Variable(name), op, self._literal()))
            return
        raise self._error(
            f"expected '(' or comparison operator after {name!r}, "
            f"found {next_text!r}",
            next_offset,
        )

    def _parse_atom(self, name: str, name_offset: int, p_atoms, o_atoms) -> None:
        self._expect("(")
        groups: list[list[Term]] = [[]]
        while True:
            groups[-1].append(self._term())
            kind, text, offset = self._next()
            if text == ",":
                continue
            if text == ";":
                groups.append([])
                continue
            if text == ")":
                break
            raise self._error(f"expected ',', ';' or ')', found {text!r}", offset)
        if len(groups) == 1:
            o_atoms.append(OAtom(name, tuple(groups[0])))
            return
        if len(groups) != 3 or len(groups[1]) != 1 or len(groups[2]) != 1:
            raise self._error(
                f"p-atom {name} must have the form {name}(session...; item; item)",
                name_offset,
            )
        p_atoms.append(
            PAtom(name, tuple(groups[0]), groups[1][0], groups[2][0])
        )

    def _term(self) -> Term:
        kind, text, offset = self._next()
        if kind == "wildcard":
            return WILDCARD
        if kind == "string":
            return Constant(text[1:-1])
        if kind == "number":
            return Constant(float(text) if "." in text else int(text))
        if kind == "name":
            return Variable(text)
        raise self._error(f"expected a term, found {text!r}", offset)

    def _literal(self):
        kind, text, offset = self._next()
        if kind == "string":
            return text[1:-1]
        if kind == "number":
            return float(text) if "." in text else int(text)
        raise self._error(
            f"comparisons require a constant right-hand side, found {text!r}",
            offset,
        )


def parse_query(
    text: str, *, source: str | None = None, base_offset: int = 0
) -> ConjunctiveQuery:
    """Parse query text into a :class:`ConjunctiveQuery`.

    ``source`` and ``base_offset`` exist for embedding callers (the request
    grammar of :mod:`repro.api.requests` parses a suffix of a larger text):
    errors then report positions relative to ``source``.

    Examples
    --------
    >>> q = parse_query("P(_, '5/5'; c1; c2), C(c1, p, 'M'), C(c2, p, 'F')")
    >>> len(q.p_atoms), len(q.o_atoms)
    (1, 2)
    """
    return _Parser(text, source=source, base_offset=base_offset).parse()
