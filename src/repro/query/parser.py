"""A small text syntax for conjunctive queries.

Grammar (whitespace-insensitive)::

    query       :=  [ "Q()" "<-" ] atom ("," atom)*
    atom        :=  p_atom | o_atom | comparison
    p_atom      :=  NAME "(" terms ";" term ";" term ")"
    o_atom      :=  NAME "(" terms ")"
    comparison  :=  NAME OP literal          OP in  = != <= >= < >
    terms       :=  term ("," term)*
    term        :=  "_" | literal | NAME
    literal     :=  'single-quoted string' | "double-quoted string" | number

Conventions: quoted strings and numbers are constants; a bare ``NAME`` is a
variable; ``_`` is the anonymous wildcard.  The running example Q2 of the
paper reads::

    Q() <- P(_, _; c1; c2), C(c1, 'D', _, _, e, _), C(c2, 'R', _, _, e, _)
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.query.ast import (
    Comparison,
    ConjunctiveQuery,
    Constant,
    OAtom,
    PAtom,
    Term,
    Variable,
    WILDCARD,
)


class QuerySyntaxError(ValueError):
    """Raised on malformed query text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<head>Q\s*\(\s*\)\s*<-)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<name>[A-Za-z][A-Za-z0-9_]*)
  | (?P<wildcard>_)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),;])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind in ("ws", "head"):
            continue
        yield kind, match.group()
    yield "eof", ""


class _Parser:
    def __init__(self, text: str):
        self._tokens = list(_tokenize(text))
        self._index = 0

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._index]

    def _next(self) -> tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, value: str) -> None:
        kind, text = self._next()
        if text != value:
            raise QuerySyntaxError(f"expected {value!r}, found {text!r}")

    def parse(self) -> ConjunctiveQuery:
        p_atoms: list[PAtom] = []
        o_atoms: list[OAtom] = []
        comparisons: list[Comparison] = []
        while True:
            self._parse_conjunct(p_atoms, o_atoms, comparisons)
            kind, text = self._peek()
            if text == ",":
                self._next()
                continue
            if kind == "eof":
                break
            raise QuerySyntaxError(f"expected ',' or end of query, found {text!r}")
        return ConjunctiveQuery(tuple(p_atoms), tuple(o_atoms), tuple(comparisons))

    def _parse_conjunct(self, p_atoms, o_atoms, comparisons) -> None:
        kind, text = self._next()
        if kind != "name":
            raise QuerySyntaxError(f"expected atom or comparison, found {text!r}")
        name = text
        next_kind, next_text = self._peek()
        if next_text == "(":
            self._parse_atom(name, p_atoms, o_atoms)
            return
        if next_kind == "op":
            _, op = self._next()
            comparisons.append(Comparison(Variable(name), op, self._literal()))
            return
        raise QuerySyntaxError(
            f"expected '(' or comparison operator after {name!r}, found {next_text!r}"
        )

    def _parse_atom(self, name: str, p_atoms, o_atoms) -> None:
        self._expect("(")
        groups: list[list[Term]] = [[]]
        while True:
            groups[-1].append(self._term())
            kind, text = self._next()
            if text == ",":
                continue
            if text == ";":
                groups.append([])
                continue
            if text == ")":
                break
            raise QuerySyntaxError(f"expected ',', ';' or ')', found {text!r}")
        if len(groups) == 1:
            o_atoms.append(OAtom(name, tuple(groups[0])))
            return
        if len(groups) != 3 or len(groups[1]) != 1 or len(groups[2]) != 1:
            raise QuerySyntaxError(
                f"p-atom {name} must have the form {name}(session...; item; item)"
            )
        p_atoms.append(
            PAtom(name, tuple(groups[0]), groups[1][0], groups[2][0])
        )

    def _term(self) -> Term:
        kind, text = self._next()
        if kind == "wildcard":
            return WILDCARD
        if kind == "string":
            return Constant(text[1:-1])
        if kind == "number":
            return Constant(float(text) if "." in text else int(text))
        if kind == "name":
            return Variable(text)
        raise QuerySyntaxError(f"expected a term, found {text!r}")

    def _literal(self):
        kind, text = self._next()
        if kind == "string":
            return text[1:-1]
        if kind == "number":
            return float(text) if "." in text else int(text)
        raise QuerySyntaxError(
            f"comparisons require a constant right-hand side, found {text!r}"
        )


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse query text into a :class:`ConjunctiveQuery`.

    Examples
    --------
    >>> q = parse_query("P(_, '5/5'; c1; c2), C(c1, p, 'M'), C(c2, p, 'F')")
    >>> len(q.p_atoms), len(q.o_atoms)
    (1, 2)
    """
    return _Parser(text).parse()
