"""Algorithm 2 — DecomposeQuery: ground V+(Q) into a union of itemwise CQs.

Each variable of ``V+(Q)`` ranges over the intersection of the active
domains of the o-relation columns in which it occurs, filtered by any
comparison conditions on the variable.  The Cartesian product of those
domains yields one instantiated (itemwise) query per combination; the
original query holds iff at least one instantiation holds — a union that is
neither disjoint nor independent, which is exactly why pattern-union
inference (Sections 4-5) is needed.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterator

from repro.db.database import _compare
from repro.query.ast import ConjunctiveQuery, Variable
from repro.query.classify import QueryAnalysis, UnsupportedQueryError, analyze


def variable_domain(
    variable: Variable, analysis: QueryAnalysis, db
) -> list[Hashable]:
    """The active domain of a groundable variable.

    Intersects the distinct values of every o-relation column where the
    variable occurs and filters by its comparison conditions.
    """
    domains: list[set[Hashable]] = []
    atoms = list(analysis.global_atoms)
    for variable_atoms in analysis.item_atoms.values():
        atoms.extend(variable_atoms)
    for atom in atoms:
        relation = db.orelation(atom.relation)
        for position, term in enumerate(atom.terms):
            if term == variable:
                domains.append(set(relation.active_domain(position)))
    if not domains:
        raise UnsupportedQueryError(
            f"variable {variable!r} has no o-relation occurrence to ground over"
        )
    values = set.intersection(*domains)
    for comparison in analysis.comparisons.get(variable, []):
        values = {
            v for v in values if _compare(v, comparison.op, comparison.value)
        }
    return sorted(values, key=repr)


def decompose_query(
    query: ConjunctiveQuery, db, analysis: QueryAnalysis | None = None
) -> Iterator[tuple[dict[Variable, Hashable], ConjunctiveQuery]]:
    """Algorithm 2: yield ``(assignment, instantiated itemwise query)`` pairs.

    For itemwise queries yields the single pair ``({}, query)``.
    """
    if analysis is None:
        analysis = analyze(query, db)
    if not analysis.groundable:
        yield {}, analysis.query
        return
    variables = sorted(analysis.groundable, key=lambda v: v.name)
    domains = [variable_domain(v, analysis, db) for v in variables]
    for combination in itertools.product(*domains):
        assignment = dict(zip(variables, combination))
        yield assignment, analysis.query.substitute(assignment)
