"""Query classification: sessionwise / itemwise / non-itemwise, and V+(Q).

Terminology (Section 3.1 of the paper):

* a CQ is **sessionwise** when all its preference atoms refer to the same
  session — the class this engine evaluates;
* a sessionwise CQ is **itemwise** when it is equivalent to a label pattern
  per session: every relational condition applies to a single item variable
  independently;
* otherwise it is **non-itemwise**: some variable couples the conditions of
  different item variables (the paper's hard queries).  The set of
  variables to ground, ``V+(Q)``, consists of exactly those coupling
  variables; instantiating them over their active domains (Algorithm 2)
  rewrites the query as a union of itemwise CQs.

Supported query shape (documented conventions):

* all P-atoms use one p-relation and syntactically identical session terms;
* an o-atom constrains an item (or session) variable by carrying it in its
  *first* column — the identifier column;
* an o-atom mentions at most one item variable and never mixes item and
  session variables (use separate atoms and shared attribute variables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.query.ast import (
    Comparison,
    ConjunctiveQuery,
    OAtom,
    Variable,
    is_variable,
)


class UnsupportedQueryError(ValueError):
    """Raised for queries outside the supported (paper's) fragment."""


@dataclass
class QueryAnalysis:
    """The structural analysis of a sessionwise CQ."""

    query: ConjunctiveQuery  # after equality folding
    p_relation: str
    session_terms: tuple
    session_variables: set[Variable]
    item_variables: set[Variable]
    #: o-atoms constraining each item variable
    item_atoms: dict[Variable, list[OAtom]]
    #: o-atoms joined on a session variable (first column)
    session_atoms: list[OAtom]
    #: ground (or groundable) o-atoms mentioning no item/session variable
    global_atoms: list[OAtom]
    #: attribute variables bound through a session atom (substituted per session)
    session_bound: set[Variable]
    #: V+(Q): attribute variables that must be grounded (Algorithm 2)
    groundable: set[Variable]
    #: remaining comparisons per variable (inequalities; equalities folded)
    comparisons: dict[Variable, list[Comparison]] = field(default_factory=dict)

    @property
    def is_itemwise(self) -> bool:
        """True iff no grounding is needed (given per-session bindings)."""
        return not self.groundable


def _fold_equalities(query: ConjunctiveQuery) -> ConjunctiveQuery | None:
    """Substitute ``x = c`` comparisons; None when they contradict."""
    assignment: dict[Variable, Hashable] = {}
    for comparison in query.comparisons:
        if comparison.op != "=":
            continue
        existing = assignment.get(comparison.variable)
        if existing is not None and existing != comparison.value:
            return None
        assignment[comparison.variable] = comparison.value
    if not assignment:
        return query
    return query.substitute(assignment)


def analyze(query: ConjunctiveQuery, db: Any) -> QueryAnalysis:
    """Analyze and validate a query against the database schema.

    Raises :class:`UnsupportedQueryError` for non-sessionwise queries and
    shapes outside the supported fragment (see module docstring).
    """
    folded = _fold_equalities(query)
    if folded is None:
        raise UnsupportedQueryError(
            "contradictory equality comparisons make the query trivially false"
        )
    query = folded

    # --- P-atoms: one relation, one session ---------------------------
    relations = {atom.relation for atom in query.p_atoms}
    if len(relations) != 1:
        raise UnsupportedQueryError(
            f"all preference atoms must use one p-relation, found {sorted(relations)}"
        )
    p_relation = next(iter(relations))
    if p_relation not in db.prelations:
        raise UnsupportedQueryError(f"unknown p-relation {p_relation!r}")
    session_terms = query.p_atoms[0].session_terms
    expected_arity = len(db.prelation(p_relation).session_columns)
    for atom in query.p_atoms:
        if len(atom.session_terms) != expected_arity:
            raise UnsupportedQueryError(
                f"{p_relation} sessions have {expected_arity} columns; "
                f"atom {atom!r} provides {len(atom.session_terms)}"
            )
        if atom.session_terms != session_terms:
            raise UnsupportedQueryError(
                "non-sessionwise query: preference atoms name different sessions"
            )
    # Note on wildcards in session terms: following the paper's notation
    # (e.g. the Figure 14 query "P(_; 223; 111), P(_; x; 111)"), identical
    # session-term tuples are interpreted as referring to one shared
    # session even when they contain wildcards — the sessionwise reading.

    session_variables = {t for t in session_terms if is_variable(t)}
    item_variables = query.item_variables()
    overlap = session_variables & item_variables
    if overlap:
        raise UnsupportedQueryError(
            f"variables used both as session and item: {sorted(v.name for v in overlap)}"
        )

    # --- o-atoms -------------------------------------------------------
    item_atoms: dict[Variable, list[OAtom]] = {v: [] for v in item_variables}
    session_atoms: list[OAtom] = []
    global_atoms: list[OAtom] = []
    for atom in query.o_atoms:
        if atom.relation not in db.orelations:
            raise UnsupportedQueryError(f"unknown o-relation {atom.relation!r}")
        if len(atom.terms) != db.orelation(atom.relation).arity:
            raise UnsupportedQueryError(
                f"atom {atom!r} does not match the arity of {atom.relation}"
            )
        mentioned_items = [t for t in atom.terms if t in item_variables]
        mentioned_sessions = [t for t in atom.terms if t in session_variables]
        if mentioned_items and mentioned_sessions:
            raise UnsupportedQueryError(
                f"atom {atom!r} mixes item and session variables"
            )
        if len(set(mentioned_items)) > 1:
            raise UnsupportedQueryError(
                f"atom {atom!r} mentions several item variables"
            )
        if mentioned_items:
            variable = mentioned_items[0]
            if atom.terms[0] != variable:
                raise UnsupportedQueryError(
                    f"item variable {variable!r} must be the first (identifier) "
                    f"column of {atom!r}"
                )
            item_atoms[variable].append(atom)
        elif mentioned_sessions:
            variable = mentioned_sessions[0]
            if atom.terms[0] != variable or len(set(mentioned_sessions)) > 1:
                raise UnsupportedQueryError(
                    f"session variable must be the first column of {atom!r}"
                )
            session_atoms.append(atom)
        else:
            global_atoms.append(atom)

    # Item constants in preference positions are always fine (identity
    # labels); item variables need no o-atom (unconstrained node).

    # --- attribute variables --------------------------------------------
    attribute_occurrences: dict[Variable, int] = {}

    def count_occurrences(atoms: list[OAtom]) -> None:
        for atom in atoms:
            seen_here: set[Variable] = set()
            for term in atom.terms[1:] if atom.terms else ():
                if (
                    is_variable(term)
                    and term not in item_variables
                    and term not in session_variables
                    and term not in seen_here
                ):
                    seen_here.add(term)
                    attribute_occurrences[term] = (
                        attribute_occurrences.get(term, 0) + 1
                    )

    for atoms in item_atoms.values():
        count_occurrences(atoms)
    count_occurrences(global_atoms)

    session_bound: set[Variable] = set()
    for atom in session_atoms:
        for term in atom.terms[1:]:
            if is_variable(term) and term not in session_variables:
                session_bound.add(term)

    groundable = {
        variable
        for variable, count in attribute_occurrences.items()
        if count >= 2 and variable not in session_bound
    }

    comparisons: dict[Variable, list[Comparison]] = {}
    for comparison in query.comparisons:
        comparisons.setdefault(comparison.variable, []).append(comparison)

    return QueryAnalysis(
        query=query,
        p_relation=p_relation,
        session_terms=session_terms,
        session_variables=session_variables,
        item_variables=item_variables,
        item_atoms=item_atoms,
        session_atoms=session_atoms,
        global_atoms=global_atoms,
        session_bound=session_bound,
        groundable=groundable,
        comparisons=comparisons,
    )
