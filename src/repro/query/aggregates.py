"""Count-Session and Most-Probable-Session queries (Section 3.2).

* ``count(Q)`` — the expected number of sessions satisfying ``Q`` under the
  possible-world semantics: ``sum_i Pr(Q | s_i)``.
* ``top(Q, k)`` — the ``k`` sessions satisfying ``Q`` with the highest
  probability.  Two strategies:

  - **naive**: evaluate every session exactly, sort;
  - **upper_bound** (the paper's top-k optimization): first compute a cheap
    upper bound per session via the ease-heuristic edge selection
    (Section 4.3.2, 1 or 2 edges per pattern), then evaluate sessions
    exactly in descending upper-bound order, stopping as soon as the k-th
    best exact probability is at least the largest remaining upper bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.db.database import PPDatabase
from repro.patterns.labels import Labeling
from repro.patterns.union import PatternUnion
from repro.query.ast import ConjunctiveQuery
from repro.query.classify import analyze
from repro.query.compile import labeling_for_patterns
from repro.query.engine import (
    SessionWork,
    compile_session_work,
    evaluate,
    solve_session,
)
from repro.rim.mixture import MallowsMixture
from repro.solvers.upper_bound import upper_bound_probability

SessionKey = tuple[Hashable, ...]


@dataclass
class CountResult:
    """The expectation of count(Q) with its per-session breakdown."""

    expectation: float
    per_session: list[tuple[SessionKey, float]]
    seconds: float
    method: str


def count_session(
    query: ConjunctiveQuery,
    db: PPDatabase,
    method: str = "auto",
    rng: np.random.Generator | None = None,
    **solver_options,
) -> CountResult:
    """``count(Q)``: the expected number of satisfying sessions."""
    started = time.perf_counter()
    result = evaluate(query, db, method=method, rng=rng, **solver_options)
    per_session = [
        (evaluation.key, evaluation.probability)
        for evaluation in result.per_session
    ]
    return CountResult(
        expectation=float(sum(p for _, p in per_session)),
        per_session=per_session,
        seconds=time.perf_counter() - started,
        method=method,
    )


@dataclass
class AttributeAggregateResult:
    """An aggregate of a session attribute over the satisfying sessions."""

    expectation: float
    probability_any: float
    weighted_average: float
    n_worlds: int
    per_session: list[tuple[SessionKey, float, float]]  # (key, Pr, value)
    seconds: float


def aggregate_session_attribute(
    query: ConjunctiveQuery,
    db: PPDatabase,
    relation: str,
    column: str,
    statistic: str = "mean",
    n_worlds: int = 10_000,
    rng: np.random.Generator | None = None,
    method: str = "auto",
    **solver_options,
) -> AttributeAggregateResult:
    """The paper's future-work aggregation queries (Section 7).

    Example: *the average age of voters who prefer a Republican to a
    Democrat*.  Under possible-world semantics the answer is the
    expectation, over worlds, of the statistic of the attribute among the
    sessions satisfying ``Q`` in that world (conditioned on at least one
    satisfying session).

    The per-session probabilities ``Pr(Q | s_i)`` fully determine the joint
    distribution of the satisfying set (sessions are independent), so the
    expectation is computed by sampling Bernoulli vectors from those
    probabilities — no further ranking inference is needed.  The closed-form
    ratio estimate ``sum p_i v_i / sum p_i`` is reported alongside as
    ``weighted_average``.

    Parameters
    ----------
    relation, column:
        The o-relation and column holding the attribute; the session's
        first key component is matched against the relation's first column.
    statistic:
        ``"mean"`` or ``"sum"`` of the attribute over satisfying sessions.
    """
    if statistic not in ("mean", "sum"):
        raise ValueError(f"unsupported statistic {statistic!r}")
    started = time.perf_counter()
    result = evaluate(query, db, method=method, rng=rng, **solver_options)
    attribute_relation = db.orelation(relation)
    column_index = attribute_relation.column_index(column)
    per_session: list[tuple[SessionKey, float, float]] = []
    for evaluation in result.per_session:
        row = attribute_relation.first_row_where({0: evaluation.key[0]})
        if row is None:
            raise KeyError(
                f"session {evaluation.key!r} has no row in {relation}"
            )
        per_session.append(
            (evaluation.key, evaluation.probability, float(row[column_index]))
        )

    probabilities = np.array([p for _, p, _ in per_session])
    values = np.array([v for _, _, v in per_session])
    weighted_total = float(probabilities @ values)
    probability_mass = float(probabilities.sum())
    weighted_average = (
        weighted_total / probability_mass if probability_mass > 0 else 0.0
    )

    if rng is None:
        rng = np.random.default_rng(0)
    draws = rng.random((n_worlds, len(per_session))) < probabilities
    any_satisfied = draws.any(axis=1)
    if statistic == "mean":
        counts = draws.sum(axis=1)
        sums = draws @ values
        with np.errstate(invalid="ignore"):
            world_values = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        satisfied_values = world_values[any_satisfied]
    else:
        satisfied_values = (draws @ values)[any_satisfied]
    expectation = float(satisfied_values.mean()) if len(satisfied_values) else 0.0

    return AttributeAggregateResult(
        expectation=expectation,
        probability_any=float(any_satisfied.mean()),
        weighted_average=weighted_average,
        n_worlds=n_worlds,
        per_session=per_session,
        seconds=time.perf_counter() - started,
    )


@dataclass
class TopKResult:
    """The k most supportive sessions, with the optimization's effort stats."""

    sessions: list[tuple[SessionKey, float]]
    k: int
    strategy: str
    n_exact_evaluations: int
    n_upper_bound_evaluations: int
    seconds: float
    upper_bound_seconds: float = 0.0
    exact_seconds: float = 0.0
    stats: dict = field(default_factory=dict)


def _labeling_cache(db: PPDatabase, items) -> dict:
    cache: dict[PatternUnion, Labeling] = {}

    def labeling_of(union: PatternUnion) -> Labeling:
        cached = cache.get(union)
        if cached is None:
            cached = labeling_for_patterns(union.patterns, items, db)
            cache[union] = cached
        return cached

    return labeling_of


def _session_upper_bound(
    work: SessionWork, labeling: Labeling, n_edges: int
) -> float:
    """Upper bound of Pr(Q | s); mixtures marginalize per component."""
    model = work.model
    if isinstance(model, MallowsMixture):
        bounds = [
            upper_bound_probability(
                component, labeling, work.union, n_edges=n_edges
            ).probability
            for component in model.components
        ]
        return model.marginalize(bounds)
    return upper_bound_probability(
        model, labeling, work.union, n_edges=n_edges
    ).probability


def most_probable_session(
    query: ConjunctiveQuery,
    db: PPDatabase,
    k: int,
    strategy: str = "upper_bound",
    n_edges: int = 1,
    method: str = "auto",
    rng: np.random.Generator | None = None,
    session_limit: int | None = None,
    **solver_options,
) -> TopKResult:
    """``top(Q, k)``: the k sessions most likely to satisfy ``Q``.

    Parameters
    ----------
    strategy:
        ``"naive"`` evaluates every session exactly; ``"upper_bound"``
        applies the paper's top-k optimization with ``n_edges`` selected
        constraint edges per pattern (1 -> two-label bounds, 2+ ->
        bipartite bounds).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if strategy not in ("naive", "upper_bound"):
        raise ValueError(f"unknown strategy {strategy!r}")
    started = time.perf_counter()
    analysis = analyze(query, db)
    items = db.prelation(analysis.p_relation).items
    works = compile_session_work(
        query, db, analysis=analysis, session_limit=session_limit
    )
    labeling_of = _labeling_cache(db, items)

    def exact_probability(work: SessionWork) -> float:
        if work.union is None:
            return 0.0
        probability, _ = solve_session(
            work.model,
            labeling_of(work.union),
            work.union,
            method=method,
            rng=rng,
            **solver_options,
        )
        return probability

    if strategy == "naive":
        exact_started = time.perf_counter()
        scored = [(work.key, exact_probability(work)) for work in works]
        exact_seconds = time.perf_counter() - exact_started
        scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        return TopKResult(
            sessions=scored[:k],
            k=k,
            strategy=strategy,
            n_exact_evaluations=len(works),
            n_upper_bound_evaluations=0,
            seconds=time.perf_counter() - started,
            exact_seconds=exact_seconds,
        )

    # --- upper-bound strategy -------------------------------------------
    ub_started = time.perf_counter()
    bounded: list[tuple[float, SessionWork]] = []
    for work in works:
        if work.union is None:
            bounded.append((0.0, work))
            continue
        bound = _session_upper_bound(work, labeling_of(work.union), n_edges)
        bounded.append((bound, work))
    upper_bound_seconds = time.perf_counter() - ub_started
    bounded.sort(key=lambda pair: (-pair[0], repr(pair[1].key)))

    exact_started = time.perf_counter()
    confirmed: list[tuple[SessionKey, float]] = []
    n_exact = 0
    for index, (bound, work) in enumerate(bounded):
        if len(confirmed) >= k:
            kth_best = sorted((p for _, p in confirmed), reverse=True)[k - 1]
            if kth_best >= bound:
                break  # no remaining session can beat the current top-k
        probability = exact_probability(work)
        n_exact += 1
        confirmed.append((work.key, probability))
    exact_seconds = time.perf_counter() - exact_started
    confirmed.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return TopKResult(
        sessions=confirmed[:k],
        k=k,
        strategy=strategy,
        n_exact_evaluations=n_exact,
        n_upper_bound_evaluations=len(works),
        seconds=time.perf_counter() - started,
        upper_bound_seconds=upper_bound_seconds,
        exact_seconds=exact_seconds,
        stats={"n_sessions": len(works), "n_edges": n_edges},
    )
