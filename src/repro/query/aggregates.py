"""Count-Session and Most-Probable-Session queries (Section 3.2).

* ``count(Q)`` — the expected number of sessions satisfying ``Q`` under the
  possible-world semantics: ``sum_i Pr(Q | s_i)``.
* ``top(Q, k)`` — the ``k`` sessions satisfying ``Q`` with the highest
  probability.  Two strategies:

  - **naive**: evaluate every session exactly, sort;
  - **upper_bound** (the paper's top-k optimization): first compute a cheap
    upper bound per session via the ease-heuristic edge selection
    (Section 4.3.2, 1 or 2 edges per pattern), then evaluate sessions
    exactly in descending upper-bound order, stopping as soon as the k-th
    best exact probability is at least the largest remaining upper bound.

Since the unified query API (:mod:`repro.api`), the functions here are
thin deprecated wrappers: each builds the typed request of its kind
(:class:`~repro.api.requests.Count`, :class:`~repro.api.requests.TopK`,
:class:`~repro.api.requests.Aggregate`) and evaluates it through the one
plan pipeline (build -> optimize -> execute, :mod:`repro.plan`), which is
what gives these query kinds cross-query caching, batch dedup, execution
backends, and ``explain`` for free.  The result dataclasses are kept
bit-identical to their pre-redesign outputs; new code should prefer
:func:`repro.api.answer` and the :class:`~repro.api.answer.Answer`
envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.db.database import PPDatabase
from repro.query.ast import ConjunctiveQuery

SessionKey = tuple[Hashable, ...]


@dataclass
class CountResult:
    """The expectation of count(Q) with its per-session breakdown.

    Deprecated thin envelope over :class:`~repro.api.answer.Answer`.
    ``method`` records the *requested* method string (e.g. ``"auto"``, for
    backward compatibility); ``resolved_methods`` the distinct solver
    names that actually ran, exactly as ``QueryResult.per_session``
    reports them.
    """

    expectation: float
    per_session: list[tuple[SessionKey, float]]
    seconds: float
    method: str
    #: Distinct per-session solver names that actually ran, sorted.
    resolved_methods: tuple[str, ...] = ()


def count_session(
    query: ConjunctiveQuery,
    db: PPDatabase,
    method: str = "auto",
    rng: np.random.Generator | None = None,
    **solver_options,
) -> CountResult:
    """``count(Q)``: the expected number of satisfying sessions.

    Deprecated thin wrapper over the unified API — equivalent to
    ``answer(Count(query), ...).to_legacy()``.
    """
    from repro.api.evaluate import answer
    from repro.api.requests import Count

    return answer(
        Count(query), db, method=method, rng=rng, **solver_options
    ).to_legacy()


@dataclass
class AttributeAggregateResult:
    """An aggregate of a session attribute over the satisfying sessions.

    Deprecated thin envelope over :class:`~repro.api.answer.Answer`.
    """

    expectation: float
    probability_any: float
    weighted_average: float
    n_worlds: int
    per_session: list[tuple[SessionKey, float, float]]  # (key, Pr, value)
    seconds: float


def aggregate_session_attribute(
    query: ConjunctiveQuery,
    db: PPDatabase,
    relation: str,
    column: str,
    statistic: str = "mean",
    n_worlds: int = 10_000,
    rng: np.random.Generator | None = None,
    method: str = "auto",
    **solver_options,
) -> AttributeAggregateResult:
    """The paper's future-work aggregation queries (Section 7).

    Example: *the average age of voters who prefer a Republican to a
    Democrat*.  Under possible-world semantics the answer is the
    expectation, over worlds, of the statistic of the attribute among the
    sessions satisfying ``Q`` in that world (conditioned on at least one
    satisfying session).

    The per-session probabilities ``Pr(Q | s_i)`` fully determine the joint
    distribution of the satisfying set (sessions are independent), so the
    expectation is computed by sampling Bernoulli vectors from those
    probabilities — no further ranking inference is needed.  The closed-form
    ratio estimate ``sum p_i v_i / sum p_i`` is reported alongside as
    ``weighted_average``.

    Deprecated thin wrapper over the unified API — equivalent to
    ``answer(Aggregate(query, relation, column, ...), ...).to_legacy()``.

    Parameters
    ----------
    relation, column:
        The o-relation and column holding the attribute; the session's
        first key component is matched against the relation's first column.
    statistic:
        ``"mean"`` or ``"sum"`` of the attribute over satisfying sessions.
    """
    from repro.api.evaluate import answer
    from repro.api.requests import Aggregate

    return answer(
        Aggregate(
            query,
            relation=relation,
            column=column,
            statistic=statistic,
            n_worlds=n_worlds,
        ),
        db,
        method=method,
        rng=rng,
        **solver_options,
    ).to_legacy()


@dataclass
class TopKResult:
    """The k most supportive sessions, with the optimization's effort stats.

    Deprecated thin envelope over :class:`~repro.api.answer.Answer`.
    """

    sessions: list[tuple[SessionKey, float]]
    k: int
    strategy: str
    n_exact_evaluations: int
    n_upper_bound_evaluations: int
    seconds: float
    upper_bound_seconds: float = 0.0
    exact_seconds: float = 0.0
    stats: dict = field(default_factory=dict)


def most_probable_session(
    query: ConjunctiveQuery,
    db: PPDatabase,
    k: int,
    strategy: str = "upper_bound",
    n_edges: int = 1,
    method: str = "auto",
    rng: np.random.Generator | None = None,
    session_limit: int | None = None,
    **solver_options,
) -> TopKResult:
    """``top(Q, k)``: the k sessions most likely to satisfy ``Q``.

    Deprecated thin wrapper over the unified API — equivalent to
    ``answer(TopK(query, k, strategy, n_edges), ...).to_legacy()``.  The
    upper-bound strategy executes as a *lazy* plan frontier: solves are
    demanded in descending bound order and pruned solves never run (see
    :class:`~repro.plan.nodes.TopKSessionsNode`).

    Parameters
    ----------
    strategy:
        ``"naive"`` evaluates every session exactly; ``"upper_bound"``
        applies the paper's top-k optimization with ``n_edges`` selected
        constraint edges per pattern (1 -> two-label bounds, 2+ ->
        bipartite bounds).
    """
    from repro.api.evaluate import answer
    from repro.api.requests import TopK

    return answer(
        TopK(query, k=k, strategy=strategy, n_edges=n_edges),
        db,
        method=method,
        rng=rng,
        session_limit=session_limit,
        **solver_options,
    ).to_legacy()
