"""Compile itemwise CQs into label patterns and labelings.

An itemwise CQ states preferences among item variables/constants plus
independent per-item conditions.  Compilation turns:

* each item variable into a pattern node whose labels are
  :class:`ConditionLabel` objects — one per o-atom constraining the
  variable (the node's label *conjunction*);
* each item constant into a node carrying an :class:`IdentityLabel`;
* each wildcard item term into an unconstrained node (empty label set);
* each preference atom into a pattern edge.

The labeling function assigns an item every condition label it satisfies,
evaluated against the database's o-relations (the item identifier is the
first column of the constraining relation, by convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.db.database import PPDatabase
from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, PatternNode
from repro.query.ast import (
    Comparison,
    ConjunctiveQuery,
    OAtom,
    Variable,
    is_constant,
    is_variable,
    is_wildcard,
)
from repro.query.classify import QueryAnalysis, UnsupportedQueryError, analyze

Item = Hashable


@dataclass(frozen=True)
class ConditionLabel:
    """A per-item relational condition usable as a pattern label.

    An item carries this label when *some* row of ``relation`` has the item
    in its first column and satisfies all equalities, predicates, and
    same-value constraints.
    """

    relation: str
    equalities: tuple[tuple[int, Hashable], ...] = ()
    predicates: tuple[tuple[int, str, Hashable], ...] = ()
    same_pairs: tuple[tuple[int, int], ...] = ()

    def __repr__(self) -> str:
        parts = [f"{self.relation}[{pos}]={val!r}" for pos, val in self.equalities]
        parts += [
            f"{self.relation}[{pos}]{op}{val!r}"
            for pos, op, val in self.predicates
        ]
        parts += [f"{self.relation}[{a}]={self.relation}[{b}]" for a, b in self.same_pairs]
        return "&".join(parts) if parts else f"{self.relation}[any]"


@dataclass(frozen=True)
class IdentityLabel:
    """The label carried only by one specific item."""

    item: Hashable

    def __repr__(self) -> str:
        return f"item={self.item!r}"


def condition_label(
    atom: OAtom,
    variable: Variable,
    comparisons: dict[Variable, list[Comparison]],
) -> ConditionLabel:
    """The condition label of one o-atom constraining ``variable``.

    Assumes the query is itemwise: every remaining attribute variable in the
    atom is atom-local (verified by the caller's analysis).
    """
    equalities: list[tuple[int, Hashable]] = []
    predicates: list[tuple[int, str, Hashable]] = []
    positions_of: dict[Variable, list[int]] = {}
    for position, term in enumerate(atom.terms):
        if position == 0:
            continue  # the item identifier column
        if is_wildcard(term):
            continue
        if is_constant(term):
            equalities.append((position, term.value))
            continue
        if term == variable:
            raise UnsupportedQueryError(
                f"item variable {variable!r} may only appear in the first "
                f"column of {atom!r}"
            )
        positions_of.setdefault(term, []).append(position)
    same_pairs: list[tuple[int, int]] = []
    for term, positions in positions_of.items():
        for comparison in comparisons.get(term, []):
            predicates.append((positions[0], comparison.op, comparison.value))
        for extra in positions[1:]:
            same_pairs.append((positions[0], extra))
    return ConditionLabel(
        relation=atom.relation,
        equalities=tuple(sorted(equalities)),
        predicates=tuple(sorted(predicates)),
        same_pairs=tuple(sorted(same_pairs)),
    )


def compile_itemwise(
    query: ConjunctiveQuery, db: PPDatabase, analysis: QueryAnalysis | None = None
) -> LabelPattern | None:
    """Compile an itemwise CQ into its label pattern.

    Returns ``None`` when the query is unsatisfiable outright: a preference
    atom comparing a term with itself, or a ground global atom with no
    witnessing row.
    """
    if analysis is None:
        analysis = analyze(query, db)
    if analysis.groundable:
        raise UnsupportedQueryError(
            "query is not itemwise; ground V+ = "
            f"{sorted(v.name for v in analysis.groundable)} first (Algorithm 2)"
        )

    # Ground global atoms are deterministic existence checks.
    for atom in analysis.global_atoms:
        if any(is_variable(t) for t in atom.terms):
            raise UnsupportedQueryError(
                f"global atom {atom!r} still contains variables after grounding"
            )
        relation = db.orelation(atom.relation)
        conditions = {
            position: term.value
            for position, term in enumerate(atom.terms)
            if is_constant(term)
        }
        if relation.first_row_where(conditions) is None:
            return None  # the conjunct is false in every world

    # --- nodes ----------------------------------------------------------
    nodes: dict[object, PatternNode] = {}
    wildcard_counter = 0

    def node_for(term) -> PatternNode:
        nonlocal wildcard_counter
        if is_variable(term):
            if term not in nodes:
                labels = frozenset(
                    condition_label(atom, term, analysis.comparisons)
                    for atom in analysis.item_atoms.get(term, [])
                )
                nodes[term] = PatternNode(term.name, labels)
            return nodes[term]
        if is_constant(term):
            key = ("const", term.value)
            if key not in nodes:
                nodes[key] = PatternNode(
                    f"item={term.value!r}", frozenset({IdentityLabel(term.value)})
                )
            return nodes[key]
        # Wildcard: a fresh unconstrained node per occurrence.
        wildcard_counter += 1
        fresh = PatternNode(f"any#{wildcard_counter}", frozenset())
        nodes[("any", wildcard_counter)] = fresh
        return fresh

    edges = []
    for atom in analysis.query.p_atoms:
        left = node_for(atom.left)
        right = node_for(atom.right)
        if left == right:
            return None  # x preferred to x: unsatisfiable (irreflexive)
        edges.append((left, right))
    return LabelPattern(edges, nodes=nodes.values())


def labeling_for_labels(
    labels: Iterable[Hashable], items: Iterable[Item], db: PPDatabase
) -> Labeling:
    """Evaluate condition/identity labels over the item universe."""
    labels = list(labels)
    mapping: dict[Item, set[Hashable]] = {}
    for item in items:
        carried: set[Hashable] = set()
        for label in labels:
            if _item_carries(item, label, db):
                carried.add(label)
        mapping[item] = carried
    return Labeling(mapping)


def labeling_for_patterns(
    patterns: Iterable[LabelPattern], items: Iterable[Item], db: PPDatabase
) -> Labeling:
    """The labeling needed to match the given patterns."""
    labels: set[Hashable] = set()
    for pattern in patterns:
        for node in pattern.nodes:
            labels |= node.labels
    return labeling_for_labels(labels, items, db)


def _item_carries(item: Item, label: Hashable, db: PPDatabase) -> bool:
    if isinstance(label, IdentityLabel):
        return item == label.item
    if isinstance(label, ConditionLabel):
        return db.item_satisfies(
            item,
            label.relation,
            dict(label.equalities),
            label.predicates,
            label.same_pairs,
        )
    raise TypeError(f"unknown label type: {type(label).__name__}")
