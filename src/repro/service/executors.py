"""Pluggable execution backends for the serving layer's distinct solves.

:meth:`PreferenceService.evaluate_many` reduces a batch of queries to a
deduplicated work list of session solves.  This module is where that list
actually runs.  Three backends share one contract:

* ``serial`` — an in-process loop; the baseline every equivalence test
  compares against;
* ``thread`` — a ``ThreadPoolExecutor``; useful when solver options make
  solves release the GIL (or the caller overlaps batches), otherwise
  roughly serial for the pure-Python DP solvers;
* ``process`` — a ``ProcessPoolExecutor``; the exact DP solvers are
  CPU-bound Python loops, so this is the backend that actually scales
  solves across cores.

The process backend cannot ship live model/labeling/union objects cheaply
or safely, so every backend executes :class:`SolveTask` descriptors — small
picklable records built from the *same* canonical ``freeze()`` forms the
cache keys are made of (:mod:`repro.service.keys`).  ``thaw_model`` /
``thaw_labeling`` / ``thaw_union`` reconstruct semantically identical
objects on the other side; the test suite pins that a thawed solve is
bit-identical to solving the original objects, which is what lets the three
backends (and the cache) interchange freely.

Every executed task reports a :class:`TaskOutcome` carrying the measured
solve wall time, which the service attributes back to the queries that
consumed the solve.  See DESIGN.md, "Executors, persistence, planning".
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern, PatternNode
from repro.patterns.union import PatternUnion
from repro.rankings.permutation import Ranking
from repro.rim.mallows import Mallows
from repro.rim.mixture import MallowsMixture
from repro.rim.model import RIM

#: Names accepted by :func:`resolve_backend` (and the ``--backend`` flag).
BACKENDS = ("serial", "thread", "process")


# ----------------------------------------------------------------------
# Thawing: canonical freeze() forms back to live objects
# ----------------------------------------------------------------------


def thaw_model(form: tuple):
    """Reconstruct a model from its ``freeze()`` form.

    Inverts :meth:`RIM.freeze`, :meth:`Mallows.freeze`, and
    :meth:`MallowsMixture.freeze` (including the single-full-weight-
    component collapse, which freezes as the component itself).  The thawed
    model is the same distribution: Mallows rebuilds from ``(sigma, phi)``
    against the shared memoized insertion matrix, RIM round-trips its
    matrix exactly through ``tobytes``.
    """
    tag = form[0]
    if tag == "rim":
        _, items, pi_bytes = form
        m = len(items)
        pi = np.frombuffer(pi_bytes, dtype=float).reshape(m, m)
        return RIM(Ranking(items), pi)
    if tag == "mallows":
        _, items, phi = form
        return Mallows(Ranking(items), phi)
    if tag == "mixture":
        _, entries = form
        return MallowsMixture(
            [thaw_model(component_form) for component_form, _ in entries],
            [weight for _, weight in entries],
        )
    raise ValueError(f"unknown frozen model form with tag {tag!r}")


def thaw_labeling(form: tuple) -> Labeling:
    """Reconstruct a labeling from :meth:`Labeling.freeze` output.

    The service freezes labelings *projected* onto the union's labels; the
    thawed labeling therefore carries exactly the labels the solve can
    observe, which is sufficient (and what the cache key asserts).
    """
    tag, entries = form
    if tag != "labeling":
        raise ValueError(f"unknown frozen labeling form with tag {tag!r}")
    return Labeling({item: labels for item, labels in entries})


def thaw_pattern(form: tuple) -> LabelPattern:
    """Reconstruct a pattern from :meth:`LabelPattern.canonical_form` output.

    Node names carry no semantics, so the ``"canonical"`` (name-free) form
    synthesizes positional names; the ``"named"`` fallback form keeps the
    original ones.  Either way the thawed pattern matches exactly the same
    rankings as the pattern that was frozen.
    """
    tag, nodes_part, edges = form
    if tag == "named":
        nodes = [
            PatternNode(name, frozenset(labels)) for name, labels in nodes_part
        ]
    elif tag == "canonical":
        nodes = [
            PatternNode(f"n{index}", frozenset(labels))
            for index, labels in enumerate(nodes_part)
        ]
    else:
        raise ValueError(f"unknown frozen pattern form with tag {tag!r}")
    return LabelPattern(
        [(nodes[u], nodes[v]) for u, v in edges], nodes=nodes
    )


def thaw_union(form: tuple) -> PatternUnion:
    """Reconstruct a pattern union from :meth:`PatternUnion.freeze` output."""
    tag, pattern_forms = form
    if tag != "pattern_union":
        raise ValueError(f"unknown frozen union form with tag {tag!r}")
    return PatternUnion([thaw_pattern(f) for f in pattern_forms])


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------


def task_model_form(model) -> tuple:
    """A structure-preserving freeze for task transport (NOT for keys).

    Cache keys canonicalize mixtures (:meth:`MallowsMixture.freeze` sorts
    components, merges duplicates, collapses a single full-weight
    component) — sound for deduplication, but a work descriptor must
    reproduce the *original* solve exactly: marginalization sums in
    component order, and a collapsed mixture would thaw as a plain model
    and mis-report its solver (``two_label`` instead of
    ``mixture[two_label]``).  Tasks therefore ship mixtures with their
    component order, duplicates, and weights verbatim; plain models use
    their canonical ``freeze()`` unchanged.
    """
    if isinstance(model, MallowsMixture):
        return (
            "mixture",
            tuple(
                (task_model_form(component), weight)
                for component, weight in zip(model.components, model.weights)
            ),
        )
    return model.freeze()


@dataclass(frozen=True)
class SolveTask:
    """A picklable, self-contained descriptor of one session solve.

    Built from the canonical ``freeze()`` forms (the same ones the cache
    keys use) — except the model, which uses the structure-preserving
    :func:`task_model_form` — so the descriptor is small, process-portable,
    and reproduces the original solve bit-for-bit.  ``options`` must hold
    picklable values (the solver options already have to be ``repr``-stable
    for the cache key, which in practice means plain scalars).  ``cost`` is
    the planner's state-count estimate (:mod:`repro.service.planner`),
    carried along so schedulers need not re-derive it.
    """

    model_form: tuple
    labeling_form: tuple
    union_form: tuple
    method: str
    options: dict[str, Any] = field(default_factory=dict)
    cost: float = 0.0


def make_solve_task(
    model,
    labeling: Labeling,
    union: PatternUnion,
    method: str,
    options: dict[str, Any] | None = None,
    cost: float = 0.0,
    labeling_form: tuple | None = None,
    union_form: tuple | None = None,
) -> SolveTask:
    """Freeze a live (model, labeling, union) solve request into a task.

    Canonicalizing the union/labeling is the expensive half; callers that
    already computed those forms for the cache key (the service's request
    fingerprints) pass them in via ``labeling_form``/``union_form`` instead
    of re-freezing.
    """
    return SolveTask(
        model_form=task_model_form(model),
        labeling_form=(
            labeling_form if labeling_form is not None
            else labeling.freeze(union.all_labels)
        ),
        union_form=union_form if union_form is not None else union.freeze(),
        method=method,
        options=dict(options or {}),
        cost=cost,
    )


@dataclass(frozen=True)
class TaskOutcome:
    """The result of executing one :class:`SolveTask`.

    ``seconds`` is the wall time measured around the solve (thaw included:
    it is part of the work the task costs wherever it runs), used by the
    service for per-query time attribution.
    """

    probability: float
    solver: str
    seconds: float

    @property
    def value(self) -> tuple[float, str]:
        """The ``(probability, solver)`` pair the solver caches store."""
        return (self.probability, self.solver)


def run_solve_task(task: SolveTask) -> TaskOutcome:
    """Thaw and solve one task; the worker function of every backend.

    Module-level (and argument-picklable) so ``ProcessPoolExecutor`` can
    ship it; the in-process backends call it directly, keeping all three
    backends on one code path — the equivalence tests then reduce to
    "thawed solve == original solve", which is pinned separately.
    """
    # Deferred: the engine imports repro.service at load time.
    from repro.query.engine import solve_session

    started = time.perf_counter()
    probability, solver_name = solve_session(
        thaw_model(task.model_form),
        thaw_labeling(task.labeling_form),
        thaw_union(task.union_form),
        method=task.method,
        **task.options,
    )
    return TaskOutcome(
        probability=probability,
        solver=solver_name,
        seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


def default_worker_count() -> int:
    """Worker-pool default: ``min(8, usable cpus)``.

    The usable count honors the process's CPU affinity mask where the
    platform exposes one (containers and ``taskset`` routinely pin a
    fleet's workers to disjoint cores, and ``os.cpu_count()`` would
    oversubscribe them), falling back to the raw core count elsewhere.
    """
    if hasattr(os, "sched_getaffinity"):
        usable = len(os.sched_getaffinity(0)) or 1
    else:
        usable = os.cpu_count() or 1
    return min(8, usable)


class ExecutionBackend:
    """Base class: execute tasks, preserving input order of the outcomes."""

    name = "base"

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def workers(self) -> int:
        count = (
            self.max_workers
            if self.max_workers is not None
            else default_worker_count()
        )
        return max(1, count)

    def run(self, tasks: Sequence[SolveTask]) -> list[TaskOutcome]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialBackend(ExecutionBackend):
    """An in-process loop — the reference the others must match exactly."""

    name = "serial"

    def run(self, tasks: Sequence[SolveTask]) -> list[TaskOutcome]:
        return [run_solve_task(task) for task in tasks]


class ThreadBackend(ExecutionBackend):
    """A ``ThreadPoolExecutor`` over :func:`run_solve_task`."""

    name = "thread"

    def run(self, tasks: Sequence[SolveTask]) -> list[TaskOutcome]:
        if self.workers() <= 1 or len(tasks) <= 1:
            return [run_solve_task(task) for task in tasks]
        with ThreadPoolExecutor(max_workers=self.workers()) as pool:
            return list(pool.map(run_solve_task, tasks))


class ProcessBackend(ExecutionBackend):
    """A ``ProcessPoolExecutor`` shipping pickled :class:`SolveTask`s.

    The only backend where the pure-Python DP solves truly run in parallel.
    Worker processes rebuild models from the canonical forms; the memoized
    kernel tables (:mod:`repro.kernels.precompute`) warm up per worker and
    amortize across the tasks each worker executes.  ``chunksize`` is kept
    at 1 so the planner's largest-first order translates into LPT
    scheduling across workers.
    """

    name = "process"

    def run(self, tasks: Sequence[SolveTask]) -> list[TaskOutcome]:
        # One worker or one task cannot parallelize: skip the pool startup
        # and pickling (outcomes are bit-identical either way).
        if self.workers() <= 1 or len(tasks) <= 1:
            return [run_solve_task(task) for task in tasks]
        workers = min(self.workers(), len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_solve_task, tasks, chunksize=1))


def resolve_backend(
    backend: "str | ExecutionBackend | None",
    max_workers: int | None = None,
) -> ExecutionBackend:
    """Turn a backend spec (name, instance, or None) into a backend.

    ``None`` defaults to ``thread`` (the historical behavior of
    ``evaluate_many``); an instance passes through untouched, ignoring
    ``max_workers`` (the instance already owns its pool size).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    name = backend if backend is not None else "thread"
    if name == "serial":
        return SerialBackend(max_workers)
    if name == "thread":
        return ThreadBackend(max_workers)
    if name == "process":
        return ProcessBackend(max_workers)
    raise ValueError(
        f"unknown backend {name!r}; expected one of {BACKENDS} "
        "or an ExecutionBackend instance"
    )
