"""The batch serving layer: cross-query cached evaluation of Boolean CQs.

:class:`PreferenceService` is the process-level entry point for repeated
query traffic (the ROADMAP's north star).  It owns one
:class:`~repro.service.cache.SolverCache` shared by every query it serves,
and generalizes the paper's within-query identical-request grouping
(Section 6.4) along two axes:

* **across queries** — session solves are keyed canonically
  (:mod:`repro.service.keys`), so a (model, labeling, union) triple solved
  for one query is reused by every later query, in the same batch or not;
* **across a batch** — :meth:`PreferenceService.evaluate_many` compiles a
  whole batch first, deduplicates the distinct solves batch-wide, executes
  them on a configurable ``concurrent.futures`` worker pool, and only then
  assembles per-query results with cache/timing metadata.

Distinct solves are an explicit, schedulable work list rather than an
accident of per-query iteration: the planner (:mod:`repro.service.planner`)
estimates each solve's DP state count and orders the list largest-first,
and a pluggable execution backend (:mod:`repro.service.executors`) runs it
— ``serial``, ``thread``, or ``process``, the last shipping picklable
``SolveTask`` descriptors to a ``ProcessPoolExecutor`` so the pure-Python
exact DP solvers actually scale across cores.  With ``cache_db=`` the
in-memory cache gains a SQLite tier (:mod:`repro.service.persist`), so warm
state survives restarts.  Sampling-method requests run through the batched
kernels of :mod:`repro.kernels` (DESIGN.md Section 7) by default.  See
DESIGN.md, "The service layer" and "Executors, persistence, planning".
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.db.database import PPDatabase
from repro.patterns.labels import Labeling
from repro.patterns.union import PatternUnion
from repro.query.ast import ConjunctiveQuery
from repro.query.classify import analyze
from repro.query.compile import labeling_for_patterns
from repro.query.engine import (
    APPROXIMATE_METHODS,
    QueryResult,
    SessionEvaluation,
    SessionKey,
    aggregate_sessions,
    compile_session_work,
    evaluate,
)
from repro.query.parser import parse_query
from repro.service.cache import SolverCache
from repro.service.executors import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    make_solve_task,
    resolve_backend,
)
from repro.service.keys import request_fingerprint, session_cache_key
from repro.service.persist import PersistentSolverCache
from repro.service.planner import estimate_solve_states, largest_first_order
from repro.solvers.dispatch import resolve_method


@dataclass
class BatchResult:
    """Per-query results plus batch-level cache and timing metadata."""

    results: list[QueryResult]
    n_queries: int
    n_sessions: int
    #: Distinct solves actually executed for this batch (after batch-wide
    #: dedup and cache lookups).
    n_distinct_solves: int
    #: Session groups served from the cross-query cache without solving.
    n_cache_hits: int
    seconds: float
    #: Snapshot of the service cache counters after the batch.
    cache_stats: dict[str, float] = field(default_factory=dict)
    #: Name of the execution backend that ran the distinct solves.
    backend: str = ""

    @property
    def probabilities(self) -> list[float]:
        return [result.probability for result in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]


@dataclass
class _SessionEntry:
    """One session of one query, ready to be grouped batch-wide."""

    session_key: SessionKey
    cache_key: Hashable | None  # None: the query is false on this session
    model: Any = None
    labeling: Labeling | None = None
    union: PatternUnion | None = None
    #: The concrete solver method ("auto" resolved per union).
    method: str = "auto"
    #: The request fingerprint: (labeling form, union form, method, options).
    fingerprint: tuple | None = None


class PreferenceService:
    """A cache-backed serving layer for repeated preference-query traffic.

    Parameters
    ----------
    cache_capacity:
        LRU capacity of the shared solver cache (ignored when an explicit
        ``cache`` is given).
    method:
        Default solver method for :meth:`evaluate` / :meth:`evaluate_many`.
    max_workers:
        Default worker-pool size for :meth:`evaluate_many`; ``None`` picks
        ``min(8, cpu_count)``, ``1`` forces serial execution.
    backend:
        Default execution backend for the distinct solves of a batch:
        ``"serial"``, ``"thread"`` (default), ``"process"``, or an
        :class:`~repro.service.executors.ExecutionBackend` instance.  The
        process backend is the one that scales the CPU-bound exact DP
        solves across cores.
    cache_db:
        Path of a SQLite file adding a persistent tier beneath the
        in-memory cache (:class:`~repro.service.persist
        .PersistentSolverCache`): solves are written through and survive
        process restarts.  Mutually exclusive with an explicit ``cache``.
    solver_options:
        Default options forwarded to every solve (e.g. ``time_budget=60``).

    Examples
    --------
    >>> from repro.db.examples import polling_example
    >>> service = PreferenceService(cache_capacity=128)
    >>> db = polling_example()
    >>> batch = service.evaluate_many(
    ...     ["P('Ann', '5/5'; 'Trump'; 'Clinton')"] * 2, db
    ... )
    >>> batch.n_distinct_solves  # the repeat is served by grouping
    1
    >>> 0.0 < batch.probabilities[0] < 1.0
    True
    """

    def __init__(
        self,
        cache_capacity: int = 4096,
        method: str = "auto",
        max_workers: int | None = None,
        cache: SolverCache | None = None,
        backend: "str | ExecutionBackend" = "thread",
        cache_db: "str | None" = None,
        **solver_options,
    ):
        if cache is not None and cache_db is not None:
            raise ValueError(
                "pass either an explicit cache or a cache_db path, not both"
            )
        if cache is not None:
            self.cache = cache
        elif cache_db is not None:
            self.cache = PersistentSolverCache(cache_capacity, cache_db)
        else:
            self.cache = SolverCache(cache_capacity)
        self.method = method
        self.max_workers = max_workers
        self.backend = backend
        self.solver_options = solver_options

    def stats(self) -> dict[str, float]:
        """Current cache counters (hits, misses, evictions, hit_rate, ...).

        With a persistent tier (``cache_db=``) the disk counters
        (``disk_hits``, ``disk_misses``, ``disk_size``) are merged in.
        """
        stats = self.cache.stats().as_dict()
        tier_stats = getattr(self.cache, "tier_stats", None)
        if tier_stats is not None:
            stats.update(tier_stats())
        return stats

    # ------------------------------------------------------------------
    # Single-query path
    # ------------------------------------------------------------------

    @staticmethod
    def _parse(query: "ConjunctiveQuery | str") -> ConjunctiveQuery:
        return parse_query(query) if isinstance(query, str) else query

    def evaluate(
        self,
        query: "ConjunctiveQuery | str",
        db: PPDatabase,
        method: str | None = None,
        rng: np.random.Generator | None = None,
        **overrides,
    ) -> QueryResult:
        """One query through the shared cache (engine ``evaluate`` + cache)."""
        options = {**self.solver_options, **overrides}
        return evaluate(
            self._parse(query),
            db,
            method=method or self.method,
            rng=rng,
            cache=self.cache,
            **options,
        )

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------

    def evaluate_many(
        self,
        queries: Sequence["ConjunctiveQuery | str"],
        db: PPDatabase,
        method: str | None = None,
        max_workers: int | None = None,
        backend: "str | ExecutionBackend | None" = None,
        rng: np.random.Generator | None = None,
        session_limit: int | None = None,
        **overrides,
    ) -> BatchResult:
        """Evaluate a batch of queries with batch-wide solve deduplication.

        Per-query results match sequential :func:`repro.query.engine.evaluate`
        exactly (same aggregation, same clamping, and — through the
        canonical ``SolveTask`` round-trip — bit-identical probabilities on
        every backend); the batch metadata reports how much work the
        grouping and the cache saved.  The distinct solves are ordered
        largest-first by the planner's state-count estimate and executed on
        the configured backend.  Sampling methods (``mis_amp_*``,
        ``rejection``) are rng-driven and non-cacheable, so they fall back
        to sequential evaluation (a parallelism request is then warned
        about, not silently ignored) — each solve still draws and weighs
        its samples through the vectorized kernel layer
        (:mod:`repro.kernels`) unless ``vectorized=False`` is passed as a
        solver option.
        """
        started = time.perf_counter()
        method = method or self.method
        options = {**self.solver_options, **overrides}
        parsed = [self._parse(query) for query in queries]

        if method in APPROXIMATE_METHODS:
            requested_workers = (
                max_workers if max_workers is not None else self.max_workers
            )

            def _is_serial(spec) -> bool:
                return spec == "serial" or isinstance(spec, SerialBackend)

            effective_backend = backend if backend is not None else self.backend
            parallelism_requested = (
                # An explicit per-call backend that isn't serial...
                (backend is not None and not _is_serial(backend))
                # ...a process-configured service (e.g. --backend process)...
                or effective_backend == "process"
                or isinstance(effective_backend, ProcessBackend)
                # ...or an explicit worker-pool size.
                or (requested_workers is not None and requested_workers > 1)
            )
            if parallelism_requested:
                warnings.warn(
                    f"approximate method {method!r} is rng-driven and runs "
                    f"sequentially; the requested parallelism "
                    f"(max_workers/backend) is ignored",
                    UserWarning,
                    stacklevel=2,
                )
            results = [
                evaluate(
                    query, db, method=method, rng=rng,
                    session_limit=session_limit, **options,
                )
                for query in parsed
            ]
            return BatchResult(
                results=results,
                n_queries=len(results),
                n_sessions=sum(result.n_sessions for result in results),
                n_distinct_solves=sum(result.n_solver_calls for result in results),
                n_cache_hits=0,
                seconds=time.perf_counter() - started,
                cache_stats=self.stats(),
                backend="serial",
            )

        compiled = [self._compile_query(query, db, method, options, session_limit)
                    for query in parsed]

        # Batch-wide dedup: one task per distinct canonical key not cached.
        pending: dict[Hashable, _SessionEntry] = {}
        resolved: dict[Hashable, tuple[float, str]] = {}
        n_cache_hits = 0
        for entries in compiled:
            for entry in entries:
                key = entry.cache_key
                if key is None or key in pending or key in resolved:
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    resolved[key] = cached
                    n_cache_hits += 1
                else:
                    pending[key] = entry

        execution = resolve_backend(
            backend if backend is not None else self.backend,
            max_workers if max_workers is not None else self.max_workers,
        )
        seconds_by_key = self._run_pending(pending, resolved, execution, options)

        results = [
            self._assemble(entries, resolved, pending, method, seconds_by_key)
            for entries in compiled
        ]
        return BatchResult(
            results=results,
            n_queries=len(results),
            n_sessions=sum(result.n_sessions for result in results),
            n_distinct_solves=len(pending),
            n_cache_hits=n_cache_hits,
            seconds=time.perf_counter() - started,
            cache_stats=self.stats(),
            backend=execution.name,
        )

    def _compile_query(
        self,
        query: ConjunctiveQuery,
        db: PPDatabase,
        method: str,
        options: dict,
        session_limit: int | None,
    ) -> list[_SessionEntry]:
        """Sessions of one query with their canonical cache keys."""
        analysis = analyze(query, db)
        works = compile_session_work(
            query, db, analysis=analysis, session_limit=session_limit
        )
        items = db.prelation(analysis.p_relation).items
        labeling_memo: dict[PatternUnion, Labeling] = {}
        fingerprint_memo: dict[PatternUnion, tuple] = {}
        method_memo: dict[PatternUnion, str] = {}
        entries: list[_SessionEntry] = []
        for work in works:
            if work.union is None:
                entries.append(_SessionEntry(work.key, None))
                continue
            labeling = labeling_memo.get(work.union)
            if labeling is None:
                labeling = labeling_for_patterns(work.union.patterns, items, db)
                labeling_memo[work.union] = labeling
            resolved_method = method_memo.get(work.union)
            if resolved_method is None:
                # "auto" resolves per union so the cache key, the executed
                # task, and the reported solver all agree on the concrete
                # method (and collide with explicit same-method requests).
                resolved_method = resolve_method(work.union, method)
                method_memo[work.union] = resolved_method
            fingerprint = fingerprint_memo.get(work.union)
            if fingerprint is None:
                # Canonicalizing the union/labeling is the expensive half of
                # the key; all sessions sharing the union object reuse it.
                fingerprint = request_fingerprint(
                    labeling, work.union, resolved_method, options
                )
                fingerprint_memo[work.union] = fingerprint
            entries.append(
                _SessionEntry(
                    session_key=work.key,
                    cache_key=session_cache_key(
                        work.model, labeling, work.union, resolved_method,
                        options, fingerprint=fingerprint,
                    ),
                    model=work.model,
                    labeling=labeling,
                    union=work.union,
                    method=resolved_method,
                    fingerprint=fingerprint,
                )
            )
        return entries

    def _run_pending(
        self,
        pending: dict[Hashable, _SessionEntry],
        resolved: dict[Hashable, tuple[float, str]],
        execution: ExecutionBackend,
        options: dict,
    ) -> dict[Hashable, float]:
        """Plan, execute, and cache the batch's pending solves.

        The pending entries are frozen into picklable ``SolveTask``
        descriptors, ordered largest-first by the planner's state-count
        estimate (LPT scheduling: the long solves start immediately instead
        of straggling at the end of the batch), and executed on the chosen
        backend.  Returns the measured wall time per cache key, for the
        per-query attribution of :meth:`_assemble`.
        """
        keys = list(pending)
        tasks = []
        for key in keys:
            entry = pending[key]
            cost = estimate_solve_states(
                entry.model, entry.labeling, entry.union, entry.method, options
            ).states
            tasks.append(
                make_solve_task(
                    entry.model, entry.labeling, entry.union, entry.method,
                    options, cost=cost,
                    # The fingerprint already holds the canonical labeling
                    # and union forms; don't re-freeze the expensive half.
                    labeling_form=entry.fingerprint[0],
                    union_form=entry.fingerprint[1],
                )
            )
        order = largest_first_order([task.cost for task in tasks])
        outcomes = execution.run([tasks[index] for index in order])
        seconds_by_key: dict[Hashable, float] = {}
        fresh: list[tuple[Hashable, tuple[float, str]]] = []
        for index, outcome in zip(order, outcomes):
            key = keys[index]
            resolved[key] = outcome.value
            seconds_by_key[key] = outcome.seconds
            fresh.append((key, outcome.value))
        # One call so a persistent tier can flush the batch in a single
        # transaction instead of one commit per solve.
        self.cache.put_many(fresh)
        return seconds_by_key

    @staticmethod
    def _assemble(
        entries: list[_SessionEntry],
        resolved: dict[Hashable, tuple[float, str]],
        pending: dict[Hashable, _SessionEntry],
        method: str,
        seconds_by_key: dict[Hashable, float],
    ) -> QueryResult:
        """One query's result, via the engine's shared aggregation."""
        per_session: list[SessionEvaluation] = []
        fresh_keys: set[Hashable] = set()
        group_keys: set[Hashable] = set()
        for entry in entries:
            if entry.cache_key is None:
                per_session.append(
                    SessionEvaluation(entry.session_key, 0.0, "unsatisfiable")
                )
                continue
            probability, solver_name = resolved[entry.cache_key]
            group_keys.add(entry.cache_key)
            if entry.cache_key in pending:
                fresh_keys.add(entry.cache_key)
            per_session.append(
                SessionEvaluation(entry.session_key, probability, solver_name)
            )
        return QueryResult(
            probability=aggregate_sessions(per_session),
            per_session=per_session,
            n_sessions=len(per_session),
            # A solve shared by several queries of the batch counts toward
            # each of them; BatchResult.n_distinct_solves is batch-accurate.
            n_solver_calls=len(fresh_keys),
            n_groups=len(group_keys),
            grouped=True,
            method=method,
            # Measured wall time of the solves this query consumed: a solve
            # shared by several queries of the batch counts toward each;
            # cache-served groups contribute nothing.
            seconds=sum(seconds_by_key.get(key, 0.0) for key in fresh_keys),
            # Same semantics as engine.evaluate: distinct session groups
            # this query did not solve fresh (served by the cache or by
            # another query of the batch).
            stats={
                "batched": True,
                "cache_hits": len(group_keys - fresh_keys),
            },
        )
