"""The batch serving layer: cross-query cached evaluation of preference queries.

:class:`PreferenceService` is the process-level entry point for repeated
query traffic (the ROADMAP's north star).  It owns one
:class:`~repro.service.cache.SolverCache` shared by every query it serves,
and generalizes the paper's within-query identical-request grouping
(Section 6.4) along two axes:

* **across queries** — session solves are keyed canonically
  (:mod:`repro.service.keys`), so a (model, labeling, union) triple solved
  for one query is reused by every later query, in the same batch or not;
* **across a batch** — :meth:`PreferenceService.evaluate_many` plans a
  whole batch as one query-plan DAG (:mod:`repro.plan`), lets the
  optimizer's common-solve elimination merge identical solves batch-wide,
  executes the surviving frontier on a configurable backend, and only then
  assembles per-query results with cache/timing metadata;
* **across query kinds** — batches may mix the unified API's request
  kinds (:mod:`repro.api.requests`: Probability, Count, TopK, attribute
  Aggregate, as typed objects or prefixed text), and the elimination pass
  merges solves across kinds too — a Count and a Probability of the same
  query cost one solve.  :meth:`PreferenceService.answer_many` is the
  typed entry point; mixed batches return
  :class:`~repro.api.answer.BatchAnswer` envelopes.

Distinct solves are an explicit, schedulable plan rather than an accident
of per-query iteration: the optimizer annotates every solve with the cost
model's DP state-count estimate (:mod:`repro.service.planner`) and orders
the frontier largest-first, and a pluggable execution backend
(:mod:`repro.service.executors`) runs it — ``serial``, ``thread``, or
``process``, the last shipping picklable ``SolveTask`` descriptors to a
``ProcessPoolExecutor`` so the pure-Python exact DP solvers actually scale
across cores.  With ``cache_db=`` the
in-memory cache gains a SQLite tier (:mod:`repro.service.persist`), so warm
state survives restarts.  Sampling-method requests run through the batched
kernels of :mod:`repro.kernels` (DESIGN.md Section 7) by default.  See
DESIGN.md, "The service layer" and "Executors, persistence, planning".
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.api.answer import Answer, BatchAnswer
from repro.api.evaluate import answer as api_answer
from repro.api.evaluate import answer_many as api_answer_many
from repro.api.evaluate import parallelism_requested
from repro.api.requests import Probability, QueryRequest, as_request
from repro.db.database import PPDatabase
from repro.plan.build import build_plan
from repro.plan.execute import assemble_results, execute_plan
from repro.plan.passes import optimize_plan
from repro.query.ast import ConjunctiveQuery
from repro.query.engine import APPROXIMATE_METHODS, QueryResult, evaluate
from repro.service.cache import SolverCache
from repro.service.executors import ExecutionBackend, resolve_backend
from repro.service.persist import PersistentSolverCache
from repro.service.shard import ShardedSolverCache


@dataclass
class BatchResult:
    """Per-query results plus batch-level cache and timing metadata."""

    results: list[QueryResult]
    n_queries: int
    n_sessions: int
    #: Distinct solves actually executed for this batch (after batch-wide
    #: dedup and cache lookups).
    n_distinct_solves: int
    #: Session groups served from the cross-query cache without solving.
    n_cache_hits: int
    seconds: float
    #: Snapshot of the service cache counters after the batch.
    cache_stats: dict[str, float] = field(default_factory=dict)
    #: Name of the execution backend that ran the distinct solves.
    backend: str = ""
    #: Per-session solves the plan contained before optimization, and how
    #: many the optimizer's common-solve elimination merged away (zero on
    #: the sequential approximate route).
    n_solves_planned: int = 0
    n_solves_eliminated: int = 0

    @property
    def probabilities(self) -> list[float]:
        return [result.probability for result in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]


class PreferenceService:
    """A cache-backed serving layer for repeated preference-query traffic.

    Parameters
    ----------
    cache_capacity:
        LRU capacity of the shared solver cache (ignored when an explicit
        ``cache`` is given).
    method:
        Default solver method for :meth:`evaluate` / :meth:`evaluate_many`.
    max_workers:
        Default worker-pool size for :meth:`evaluate_many`; ``None`` picks
        ``min(8, cpu_count)``, ``1`` forces serial execution.
    backend:
        Default execution backend for the distinct solves of a batch:
        ``"serial"``, ``"thread"`` (default), ``"process"``, or an
        :class:`~repro.service.executors.ExecutionBackend` instance.  The
        process backend is the one that scales the CPU-bound exact DP
        solves across cores.
    cache_db:
        Path of a SQLite file adding a persistent tier beneath the
        in-memory cache (:class:`~repro.service.persist
        .PersistentSolverCache`): solves are written through and survive
        process restarts.  Mutually exclusive with an explicit ``cache``.
        With ``cache_shards`` it becomes the *stem* of the per-shard
        write-back files instead.
    cache_shards:
        Shard the warm tier: the cache becomes a
        :class:`~repro.service.shard.ShardedSolverCache` with this many
        shards beneath the process-local LRU, partitioned over the
        canonical keys, with fleet-wide single-flight.  Combine with
        ``cache_db`` for per-shard SQLite write-back files.
    shard_address:
        ``host:port`` of a running
        :class:`~repro.service.shard.ShardCacheServer`: this service
        becomes one worker of a fleet sharing that warm tier.  The server
        owns the shard topology and persistence, so this is mutually
        exclusive with ``cache_db`` and ``cache_shards``.
    solver_options:
        Default options forwarded to every solve (e.g. ``time_budget=60``).

    Examples
    --------
    >>> from repro.db.examples import polling_example
    >>> service = PreferenceService(cache_capacity=128)
    >>> db = polling_example()
    >>> batch = service.evaluate_many(
    ...     ["P('Ann', '5/5'; 'Trump'; 'Clinton')"] * 2, db
    ... )
    >>> batch.n_distinct_solves  # the repeat is served by grouping
    1
    >>> 0.0 < batch.probabilities[0] < 1.0
    True
    """

    def __init__(
        self,
        cache_capacity: int = 4096,
        method: str = "auto",
        max_workers: int | None = None,
        cache: SolverCache | None = None,
        backend: "str | ExecutionBackend" = "thread",
        cache_db: "str | None" = None,
        cache_shards: "int | None" = None,
        shard_address: "str | None" = None,
        **solver_options,
    ):
        sharded = cache_shards is not None or shard_address is not None
        if cache is not None and (cache_db is not None or sharded):
            raise ValueError(
                "pass either an explicit cache or cache tier knobs "
                "(cache_db/cache_shards/shard_address), not both"
            )
        if shard_address is not None and (
            cache_db is not None or cache_shards is not None
        ):
            raise ValueError(
                "an attached shard server owns topology and persistence; "
                "shard_address excludes cache_db/cache_shards"
            )
        if cache is not None:
            self.cache = cache
        elif shard_address is not None:
            self.cache = ShardedSolverCache(
                cache_capacity, address=shard_address
            )
        elif cache_shards is not None:
            self.cache = ShardedSolverCache(
                cache_capacity, n_shards=cache_shards, cache_db=cache_db
            )
        elif cache_db is not None:
            self.cache = PersistentSolverCache(cache_capacity, cache_db)
        else:
            self.cache = SolverCache(cache_capacity)
        self.method = method
        self.max_workers = max_workers
        self.backend = backend
        self.solver_options = solver_options

    def stats(self) -> dict[str, float]:
        """Current cache counters (hits, misses, evictions, hit_rate, ...).

        With a persistent tier (``cache_db=``) the disk counters
        (``disk_hits``, ``disk_misses``, ``disk_size``) are merged in.
        """
        stats = self.cache.stats().as_dict()
        tier_stats = getattr(self.cache, "tier_stats", None)
        if tier_stats is not None:
            stats.update(tier_stats())
        return stats

    def tier_depth(self) -> dict:
        """Structured per-tier depth beneath the LRU (``{}`` when untiered).

        ``{"disk": {...}}`` for a persistent cache; the per-shard payload
        (``n_shards`` / ``shards`` / ``totals``) for a sharded one.  The
        server's ``/stats`` endpoint nests this beside the flat counters.
        """
        tier_depth = getattr(self.cache, "tier_depth", None)
        return tier_depth() if tier_depth is not None else {}

    # ------------------------------------------------------------------
    # Single-query path
    # ------------------------------------------------------------------

    @staticmethod
    def _parse(query: "ConjunctiveQuery | str") -> ConjunctiveQuery:
        request = as_request(query)
        if not isinstance(request, Probability):
            raise TypeError(
                "evaluate() serves Boolean probability queries; use "
                f"answer() / answer_many() for {request.kind!r} requests"
            )
        return request.query

    def evaluate(
        self,
        query: "ConjunctiveQuery | str",
        db: PPDatabase,
        method: str | None = None,
        rng: np.random.Generator | None = None,
        **overrides,
    ) -> QueryResult:
        """One Boolean query through the shared cache (engine ``evaluate``)."""
        options = {**self.solver_options, **overrides}
        return evaluate(
            self._parse(query),
            db,
            method=method or self.method,
            rng=rng,
            cache=self.cache,
            **options,
        )

    def answer(
        self,
        request,
        db: PPDatabase,
        method: str | None = None,
        rng: np.random.Generator | None = None,
        **overrides,
    ) -> Answer:
        """One typed request of any kind through the shared cache.

        Accepts a :class:`~repro.api.requests.QueryRequest`, a plain
        query, or request text in the extended grammar (``COUNT ...``,
        ``TOPK k ...``, ``AGG stat(R.col) ...``).
        """
        options = {**self.solver_options, **overrides}
        return api_answer(
            request,
            db,
            method=method or self.method,
            rng=rng,
            cache=self.cache,
            **options,
        )

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------

    def evaluate_many(
        self,
        queries: Sequence["ConjunctiveQuery | str | QueryRequest"],
        db: PPDatabase,
        method: str | None = None,
        max_workers: int | None = None,
        backend: "str | ExecutionBackend | None" = None,
        rng: np.random.Generator | None = None,
        session_limit: int | None = None,
        **overrides,
    ) -> "BatchResult | BatchAnswer":
        """Evaluate a batch of queries with batch-wide solve deduplication.

        ``queries`` accepts plain Boolean CQs (objects or text) and any
        typed request of the unified API (:mod:`repro.api.requests`) —
        objects or prefixed text (``COUNT ...``, ``TOPK k ...``,
        ``AGG stat(R.col) ...``), freely mixed.  A purely Boolean batch
        returns the historical :class:`BatchResult` of
        :class:`~repro.query.engine.QueryResult` objects, bit-identical to
        sequential :func:`repro.query.engine.evaluate`; a batch containing
        any other kind returns a :class:`~repro.api.answer.BatchAnswer` of
        :class:`~repro.api.answer.Answer` envelopes.  Either way the whole
        batch is planned as one query-plan DAG (:mod:`repro.plan`): the
        optimizer's common-solve elimination merges identical solves
        across sessions, queries, *and kinds* — a Count and a Probability
        of the same query share every solve — the survivors are
        LPT-ordered, and the executor runs them on the configured backend.
        Sampling methods (``mis_amp_*``, ``rejection``) are rng-driven and
        non-cacheable, so they fall back to sequential evaluation (a
        parallelism request is then warned about, not silently ignored) —
        each solve still draws and weighs its samples through the
        vectorized kernel layer (:mod:`repro.kernels`) unless
        ``vectorized=False`` is passed as a solver option.
        """
        started = time.perf_counter()
        method = method or self.method
        options = {**self.solver_options, **overrides}
        requests = [as_request(query) for query in queries]
        if any(not isinstance(request, Probability) for request in requests):
            return self.answer_many(
                requests,
                db,
                method=method,
                max_workers=max_workers,
                backend=backend,
                rng=rng,
                session_limit=session_limit,
                **overrides,
            )
        parsed = [request.query for request in requests]

        if method in APPROXIMATE_METHODS:
            requested_workers = (
                max_workers if max_workers is not None else self.max_workers
            )
            effective_backend = backend if backend is not None else self.backend
            if parallelism_requested(
                backend, effective_backend, requested_workers
            ):
                warnings.warn(
                    f"approximate method {method!r} is rng-driven and runs "
                    "sequentially; the requested parallelism "
                    "(max_workers/backend) is ignored",
                    UserWarning,
                    stacklevel=2,
                )
            results = [
                evaluate(
                    query, db, method=method, rng=rng,
                    session_limit=session_limit, **options,
                )
                for query in parsed
            ]
            return BatchResult(
                results=results,
                n_queries=len(results),
                n_sessions=sum(result.n_sessions for result in results),
                n_distinct_solves=sum(result.n_solver_calls for result in results),
                n_cache_hits=0,
                seconds=time.perf_counter() - started,
                cache_stats=self.stats(),
                backend="serial",
            )

        # Build one plan for the whole batch: per-query logical nodes under
        # a CombineQueries root, then the optimizer's canonical common-solve
        # elimination subsumes the batch-wide dedup dicts this method used
        # to maintain by hand (solves merge across sessions AND queries).
        plan = build_plan(
            parsed,
            db,
            method=method,
            options=options,
            group_sessions=True,
            session_limit=session_limit,
        )
        optimize_plan(plan, canonical=True)
        execution_backend = resolve_backend(
            backend if backend is not None else self.backend,
            max_workers if max_workers is not None else self.max_workers,
        )
        execution = execute_plan(
            plan, cache=self.cache, rng=rng, backend=execution_backend
        )
        self.cache.record_plan(
            plan.n_solves_planned,
            plan.n_solves_eliminated,
            len(plan.passes_applied),
        )
        results = assemble_results(plan, execution, batched=True)
        return BatchResult(
            results=results,
            n_queries=len(results),
            n_sessions=sum(result.n_sessions for result in results),
            n_distinct_solves=execution.n_executed,
            n_cache_hits=execution.n_cache_hits,
            seconds=time.perf_counter() - started,
            cache_stats=self.stats(),
            backend=execution_backend.name,
            n_solves_planned=plan.n_solves_planned,
            n_solves_eliminated=plan.n_solves_eliminated,
        )

    def answer_many(
        self,
        requests: Sequence["QueryRequest | ConjunctiveQuery | str"],
        db: PPDatabase,
        method: str | None = None,
        max_workers: int | None = None,
        backend: "str | ExecutionBackend | None" = None,
        rng: np.random.Generator | None = None,
        session_limit: int | None = None,
        **overrides,
    ) -> BatchAnswer:
        """A mixed-kind batch through the shared cache and backend.

        The typed-request twin of :meth:`evaluate_many`: any mix of
        Probability / Count / TopK / Aggregate requests (objects or
        prefixed text) planned as one DAG, with common-solve elimination
        across kinds and the distinct solves on the configured backend.
        Returns a :class:`~repro.api.answer.BatchAnswer`.
        """
        options = {**self.solver_options, **overrides}
        batch = api_answer_many(
            [as_request(request) for request in requests],
            db,
            method=method or self.method,
            rng=rng,
            cache=self.cache,
            # Explicit and configured backends stay distinct so the
            # ignored-parallelism warning matches the Boolean path.
            backend=backend,
            default_backend=self.backend,
            max_workers=(
                max_workers if max_workers is not None else self.max_workers
            ),
            session_limit=session_limit,
            **options,
        )
        # Merge the persistent-tier counters the way stats() does.
        batch.cache_stats = self.stats()
        return batch

