"""The batch serving layer: cross-query cached evaluation of Boolean CQs.

:class:`PreferenceService` is the process-level entry point for repeated
query traffic (the ROADMAP's north star).  It owns one
:class:`~repro.service.cache.SolverCache` shared by every query it serves,
and generalizes the paper's within-query identical-request grouping
(Section 6.4) along two axes:

* **across queries** — session solves are keyed canonically
  (:mod:`repro.service.keys`), so a (model, labeling, union) triple solved
  for one query is reused by every later query, in the same batch or not;
* **across a batch** — :meth:`PreferenceService.evaluate_many` compiles a
  whole batch first, deduplicates the distinct solves batch-wide, executes
  them on a configurable ``concurrent.futures`` worker pool, and only then
  assembles per-query results with cache/timing metadata.

The solver DPs are Python loops over memoized NumPy tables
(:mod:`repro.kernels.precompute`), so the thread pool mostly helps when
solves release the GIL or when the caller overlaps batches; the
architectural point is that distinct solves are an explicit, schedulable
work list rather than an accident of per-query iteration.  Sampling-method
requests run through the batched kernels of :mod:`repro.kernels` (DESIGN.md
Section 7) by default.  See DESIGN.md, "The service layer".
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator, Sequence

import numpy as np

from repro.db.database import PPDatabase
from repro.patterns.labels import Labeling
from repro.patterns.union import PatternUnion
from repro.query.ast import ConjunctiveQuery
from repro.query.classify import analyze
from repro.query.compile import labeling_for_patterns
from repro.query.engine import (
    APPROXIMATE_METHODS,
    QueryResult,
    SessionEvaluation,
    SessionKey,
    aggregate_sessions,
    compile_session_work,
    evaluate,
    solve_session,
)
from repro.query.parser import parse_query
from repro.service.cache import SolverCache
from repro.service.keys import request_fingerprint, session_cache_key


@dataclass
class BatchResult:
    """Per-query results plus batch-level cache and timing metadata."""

    results: list[QueryResult]
    n_queries: int
    n_sessions: int
    #: Distinct solves actually executed for this batch (after batch-wide
    #: dedup and cache lookups).
    n_distinct_solves: int
    #: Session groups served from the cross-query cache without solving.
    n_cache_hits: int
    seconds: float
    #: Snapshot of the service cache counters after the batch.
    cache_stats: dict[str, float] = field(default_factory=dict)

    @property
    def probabilities(self) -> list[float]:
        return [result.probability for result in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]


@dataclass
class _SessionEntry:
    """One session of one query, ready to be grouped batch-wide."""

    session_key: SessionKey
    cache_key: Hashable | None  # None: the query is false on this session
    model: Any = None
    labeling: Labeling | None = None
    union: PatternUnion | None = None


def _default_workers() -> int:
    return min(8, os.cpu_count() or 1)


class PreferenceService:
    """A cache-backed serving layer for repeated preference-query traffic.

    Parameters
    ----------
    cache_capacity:
        LRU capacity of the shared solver cache (ignored when an explicit
        ``cache`` is given).
    method:
        Default solver method for :meth:`evaluate` / :meth:`evaluate_many`.
    max_workers:
        Default worker-pool size for :meth:`evaluate_many`; ``None`` picks
        ``min(8, cpu_count)``, ``1`` forces serial execution.
    solver_options:
        Default options forwarded to every solve (e.g. ``time_budget=60``).

    Examples
    --------
    >>> from repro.db.examples import polling_example
    >>> service = PreferenceService(cache_capacity=128)
    >>> db = polling_example()
    >>> batch = service.evaluate_many(
    ...     ["P('Ann', '5/5'; 'Trump'; 'Clinton')"] * 2, db
    ... )
    >>> batch.n_distinct_solves  # the repeat is served by grouping
    1
    >>> 0.0 < batch.probabilities[0] < 1.0
    True
    """

    def __init__(
        self,
        cache_capacity: int = 4096,
        method: str = "auto",
        max_workers: int | None = None,
        cache: SolverCache | None = None,
        **solver_options,
    ):
        self.cache = cache if cache is not None else SolverCache(cache_capacity)
        self.method = method
        self.max_workers = max_workers
        self.solver_options = solver_options

    def stats(self) -> dict[str, float]:
        """Current cache counters (hits, misses, evictions, hit_rate, ...)."""
        return self.cache.stats().as_dict()

    # ------------------------------------------------------------------
    # Single-query path
    # ------------------------------------------------------------------

    @staticmethod
    def _parse(query: "ConjunctiveQuery | str") -> ConjunctiveQuery:
        return parse_query(query) if isinstance(query, str) else query

    def evaluate(
        self,
        query: "ConjunctiveQuery | str",
        db: PPDatabase,
        method: str | None = None,
        rng: np.random.Generator | None = None,
        **overrides,
    ) -> QueryResult:
        """One query through the shared cache (engine ``evaluate`` + cache)."""
        options = {**self.solver_options, **overrides}
        return evaluate(
            self._parse(query),
            db,
            method=method or self.method,
            rng=rng,
            cache=self.cache,
            **options,
        )

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------

    def evaluate_many(
        self,
        queries: Sequence["ConjunctiveQuery | str"],
        db: PPDatabase,
        method: str | None = None,
        max_workers: int | None = None,
        rng: np.random.Generator | None = None,
        session_limit: int | None = None,
        **overrides,
    ) -> BatchResult:
        """Evaluate a batch of queries with batch-wide solve deduplication.

        Per-query results match sequential :func:`repro.query.engine.evaluate`
        exactly (same aggregation, same clamping); the batch metadata
        reports how much work the grouping and the cache saved.  Sampling
        methods (``mis_amp_*``, ``rejection``) are rng-driven and
        non-cacheable, so they fall back to sequential evaluation — each
        solve still draws and weighs its samples through the vectorized
        kernel layer (:mod:`repro.kernels`) unless ``vectorized=False`` is
        passed as a solver option.
        """
        started = time.perf_counter()
        method = method or self.method
        options = {**self.solver_options, **overrides}
        parsed = [self._parse(query) for query in queries]

        if method in APPROXIMATE_METHODS:
            results = [
                evaluate(
                    query, db, method=method, rng=rng,
                    session_limit=session_limit, **options,
                )
                for query in parsed
            ]
            return BatchResult(
                results=results,
                n_queries=len(results),
                n_sessions=sum(result.n_sessions for result in results),
                n_distinct_solves=sum(result.n_solver_calls for result in results),
                n_cache_hits=0,
                seconds=time.perf_counter() - started,
                cache_stats=self.stats(),
            )

        compiled = [self._compile_query(query, db, method, options, session_limit)
                    for query in parsed]

        # Batch-wide dedup: one task per distinct canonical key not cached.
        pending: dict[Hashable, _SessionEntry] = {}
        resolved: dict[Hashable, tuple[float, str]] = {}
        n_cache_hits = 0
        for entries in compiled:
            for entry in entries:
                key = entry.cache_key
                if key is None or key in pending or key in resolved:
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    resolved[key] = cached
                    n_cache_hits += 1
                else:
                    pending[key] = entry

        tasks = list(pending.items())
        outcomes = self._run_solves(tasks, method, options, max_workers)
        for (key, _), outcome in zip(tasks, outcomes):
            resolved[key] = outcome
            self.cache.put(key, outcome)

        results = [
            self._assemble(entries, resolved, pending, method)
            for entries in compiled
        ]
        return BatchResult(
            results=results,
            n_queries=len(results),
            n_sessions=sum(result.n_sessions for result in results),
            n_distinct_solves=len(tasks),
            n_cache_hits=n_cache_hits,
            seconds=time.perf_counter() - started,
            cache_stats=self.stats(),
        )

    def _compile_query(
        self,
        query: ConjunctiveQuery,
        db: PPDatabase,
        method: str,
        options: dict,
        session_limit: int | None,
    ) -> list[_SessionEntry]:
        """Sessions of one query with their canonical cache keys."""
        analysis = analyze(query, db)
        works = compile_session_work(
            query, db, analysis=analysis, session_limit=session_limit
        )
        items = db.prelation(analysis.p_relation).items
        labeling_memo: dict[PatternUnion, Labeling] = {}
        fingerprint_memo: dict[PatternUnion, tuple] = {}
        entries: list[_SessionEntry] = []
        for work in works:
            if work.union is None:
                entries.append(_SessionEntry(work.key, None))
                continue
            labeling = labeling_memo.get(work.union)
            if labeling is None:
                labeling = labeling_for_patterns(work.union.patterns, items, db)
                labeling_memo[work.union] = labeling
            fingerprint = fingerprint_memo.get(work.union)
            if fingerprint is None:
                # Canonicalizing the union/labeling is the expensive half of
                # the key; all sessions sharing the union object reuse it.
                fingerprint = request_fingerprint(
                    labeling, work.union, method, options
                )
                fingerprint_memo[work.union] = fingerprint
            entries.append(
                _SessionEntry(
                    session_key=work.key,
                    cache_key=session_cache_key(
                        work.model, labeling, work.union, method, options,
                        fingerprint=fingerprint,
                    ),
                    model=work.model,
                    labeling=labeling,
                    union=work.union,
                )
            )
        return entries

    def _run_solves(
        self,
        tasks: list[tuple[Hashable, _SessionEntry]],
        method: str,
        options: dict,
        max_workers: int | None,
    ) -> list[tuple[float, str]]:
        def solve_one(entry: _SessionEntry) -> tuple[float, str]:
            return solve_session(
                entry.model, entry.labeling, entry.union, method=method, **options
            )

        workers = max_workers if max_workers is not None else self.max_workers
        if workers is None:
            workers = _default_workers()
        if workers <= 1 or len(tasks) <= 1:
            return [solve_one(entry) for _, entry in tasks]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(solve_one, (entry for _, entry in tasks)))

    @staticmethod
    def _assemble(
        entries: list[_SessionEntry],
        resolved: dict[Hashable, tuple[float, str]],
        pending: dict[Hashable, _SessionEntry],
        method: str,
    ) -> QueryResult:
        """One query's result, via the engine's shared aggregation."""
        per_session: list[SessionEvaluation] = []
        fresh_keys: set[Hashable] = set()
        group_keys: set[Hashable] = set()
        for entry in entries:
            if entry.cache_key is None:
                per_session.append(
                    SessionEvaluation(entry.session_key, 0.0, "unsatisfiable")
                )
                continue
            probability, solver_name = resolved[entry.cache_key]
            group_keys.add(entry.cache_key)
            if entry.cache_key in pending:
                fresh_keys.add(entry.cache_key)
            per_session.append(
                SessionEvaluation(entry.session_key, probability, solver_name)
            )
        return QueryResult(
            probability=aggregate_sessions(per_session),
            per_session=per_session,
            n_sessions=len(per_session),
            # A solve shared by several queries of the batch counts toward
            # each of them; BatchResult.n_distinct_solves is batch-accurate.
            n_solver_calls=len(fresh_keys),
            n_groups=len(group_keys),
            grouped=True,
            method=method,
            seconds=0.0,
            # Same semantics as engine.evaluate: distinct session groups
            # this query did not solve fresh (served by the cache or by
            # another query of the batch).
            stats={
                "batched": True,
                "cache_hits": len(group_keys - fresh_keys),
            },
        )
