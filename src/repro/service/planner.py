"""A lightweight cost model and scheduler for pending session solves.

A batch's deduplicated work list mixes solves of wildly different sizes:
a two-label solve over a handful of labeled items is microseconds, a
general-solver inclusion–exclusion over a three-pattern union can be
seconds.  Executing them in compilation order leaves the pool idle behind
one late long solve; classic LPT (longest processing time first) scheduling
cuts that makespan to within 4/3 of optimal for any worker count.

The cost model estimates the *DP state count* a solve will visit, from the
union statistics the exact solvers' complexity bounds are stated in
(Section 4 of the paper): the number of items ``m``, the per-node matching
item counts under the labeling, the union size ``z``, and the pattern class
(two-label / bipartite / general) the dispatch would pick.  The estimates
are heuristic — they rank solves, they do not predict wall time — and only
their *relative order* is consumed (:func:`largest_first_order`).

See DESIGN.md, "Executors, persistence, planning".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern
from repro.patterns.union import PatternUnion
from repro.rim.mixture import MallowsMixture
from repro.solvers.dispatch import choose_method

#: Estimates are capped so degenerate inputs (a brute solve over 20 items)
#: cannot overflow or distort comparisons; ordering only needs "huge".
_STATES_CAP = 1e30


@dataclass(frozen=True)
class SolveCostEstimate:
    """Estimated size of one session solve.

    ``states`` is the scheduling weight: the estimated number of DP states
    (samples, for the sampling methods) the solve visits, summed over
    mixture components.
    """

    states: float
    method: str
    m: int
    z: int
    n_components: int = 1

    def __post_init__(self):
        object.__setattr__(self, "states", min(float(self.states), _STATES_CAP))


def node_match_counts(
    pattern: LabelPattern, labeling: Labeling
) -> list[int]:
    """Per-node counts of items embeddable at each node of ``pattern``."""
    return [
        len(labeling.items_matching(node.labels)) for node in pattern.nodes
    ]


def _pattern_states(pattern: LabelPattern, labeling: Labeling) -> float:
    """DP states of one pattern's solve: ``prod`` over nodes of (count + 1).

    Every exact DP tracks, per insertion step, how many items of each
    node's candidate set are already placed (plus "none"), so the state
    space is the product of the per-node counts — the shape of the paper's
    two-label and bipartite bounds.
    """
    states = 1.0
    for count in node_match_counts(pattern, labeling):
        states *= count + 1
        if states >= _STATES_CAP:
            return _STATES_CAP
    return states


def estimate_solve_states(
    model,
    labeling: Labeling,
    union: PatternUnion,
    method: str = "auto",
    options: "dict | None" = None,
) -> SolveCostEstimate:
    """Estimate the DP state count of one session solve.

    * two-label / bipartite: ``m * sum_g prod_nodes (count + 1)`` — one DP
      per pattern over the ``m`` insertion steps;
    * general: ``m * (prod_g (1 + c_g) - 1)`` where ``c_g`` is pattern
      ``g``'s state product — the inclusion–exclusion runs one DP per
      nonempty pattern subset, whose conjunction multiplies the per-pattern
      states;
    * lifted: the general estimate with ``m`` replaced by the relevant-item
      count (the lifted solver skips never-matching items);
    * brute: ``m!``;
    * sampling methods: the sample budget from ``options``.

    Mixtures multiply by the component count (one solve per component).
    """
    options = options or {}
    n_components = (
        len(model.components) if isinstance(model, MallowsMixture) else 1
    )
    m = model.m
    z = union.z
    resolved = choose_method(union) if method == "auto" else method

    if resolved in ("mis_amp_lite", "mis_amp_adaptive", "rejection"):
        states = float(
            options.get("n_samples")
            or options.get("n_per_proposal", 1000) * options.get("n_proposals", 10)
        )
    elif resolved == "brute":
        states = float(math.factorial(min(m, 25)))
    elif resolved in ("two_label", "bipartite"):
        states = m * sum(_pattern_states(g, labeling) for g in union.patterns)
    else:  # general / lifted: inclusion-exclusion over pattern subsets
        subsets = 1.0
        for pattern in union.patterns:
            subsets *= 1.0 + _pattern_states(pattern, labeling)
            if subsets >= _STATES_CAP:
                break
        effective_m = (
            len(union.relevant_items(labeling)) if resolved == "lifted" else m
        )
        states = max(effective_m, 1) * max(subsets - 1.0, 1.0)

    return SolveCostEstimate(
        states=states * n_components,
        method=resolved,
        m=m,
        z=z,
        n_components=n_components,
    )


def largest_first_order(costs: Sequence[float]) -> list[int]:
    """Indices of ``costs`` sorted descending (stable): LPT order.

    Feeding tasks to a pool in this order (chunk size 1) approximates
    longest-processing-time-first scheduling: big solves start immediately
    and the small ones pack into the remaining capacity, instead of a big
    solve arriving last and stretching the batch single-handedly.
    """
    return sorted(range(len(costs)), key=lambda index: (-costs[index], index))
