"""A sharded shared-cache tier: warm solve state for a fleet of workers.

The LRU :class:`~repro.service.cache.SolverCache` is per-process and the
SQLite tier of :mod:`repro.service.persist` is one file consulted only on
miss-after-miss; a fleet of worker processes therefore starts cold N times
and duplicates hot solves N times.  This module turns the warm state into
a *shared* tier partitioned over the canonical ``freeze()`` keys:

* :func:`shard_of` — a stable hash of the existing
  :func:`~repro.service.persist.encode_key` TEXT form picks one of N
  shards, so every process (and every restart) routes a canonical key to
  the same shard;
* :class:`ShardStore` / :class:`ShardGroup` — one bounded, thread-safe
  store per shard with per-shard hit/occupancy counters, per-key
  *in-flight* tracking (single-flight: a fleet of cache-cold workers
  hitting one hot key performs one solve, not N), and write-back through
  a per-shard :class:`~repro.service.persist.PersistentCache` SQLite file
  (one transaction per flush; the existing version-stamp clearing
  semantics carry over, so a format bump clears shards and can never
  serve a stale answer);
* :class:`ShardCacheServer` / :class:`ShardClient` — a small cache-server
  protocol over a localhost socket for multi-process fleets, framed
  exactly like the process backend ships its work: length-prefixed pickle
  of small builtin forms (encoded TEXT keys and the ``(probability,
  solver)`` pairs of :attr:`~repro.service.executors.TaskOutcome.value`).
  The client is picklable and re-connects lazily after a ``fork``, so it
  crosses process boundaries the way :class:`~repro.service.executors
  .SolveTask` does;
* :class:`ShardedSolverCache` — the drop-in :class:`SolverCache` subclass
  (like :class:`~repro.service.persist.PersistentSolverCache`) that the
  :class:`~repro.service.service.PreferenceService`, the plan executor,
  and the CLI inherit via ``cache_shards=`` / ``--cache-shards``: a
  process-local LRU in front, the shard tier beneath it — embedded
  in-process, or attached to a running :class:`ShardCacheServer` via
  ``shard_address=``.

The protocol is trusted-transport only (pickle over a loopback socket,
exactly like the ``ProcessPoolExecutor`` pipe the process backend already
uses); it is not an exposed network surface.  See DESIGN.md Section 14.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import socket
import struct
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterable, Union

from repro.service.cache import SolverCache
from repro.service.persist import (
    PersistentCache,
    _persistable,
    default_version,
    encode_key,
)

#: The ``(probability, solver)`` pair every shared tier stores — the same
#: value form :attr:`repro.service.executors.TaskOutcome.value` ships.
Value = tuple[float, str]

#: Default shard count of an embedded tier (a few shards decorrelate lock
#: and transaction contention without fragmenting the LRU budget).
DEFAULT_SHARDS = 4

#: Upper bound a server puts on one blocking ``wait`` call, so abandoned
#: flights cannot pin handler threads forever.
MAX_WAIT_SECONDS = 300.0

_MISSING: Any = object()


def shard_of(encoded_key: str, n_shards: int) -> int:
    """The shard index of a canonical key's ``encode_key`` TEXT form.

    Stable across processes, runs, and hosts (``blake2b``, not the
    per-process salted ``hash``), so every member of a fleet — and every
    restart — routes a canonical key to the same shard.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.blake2b(
        encoded_key.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % n_shards


def shard_db_path(path: Union[str, "os.PathLike[str]"], index: int) -> str:
    """The per-shard SQLite file derived from a ``cache_db`` stem.

    ``cache.sqlite`` -> ``cache-shard0.sqlite``, ``cache-shard1.sqlite``,
    ... — per-shard files keep each flush a single small transaction and
    let shards clear independently on a version bump.
    """
    root, extension = os.path.splitext(os.fspath(path))
    return f"{root}-shard{index}{extension}"


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------


class ShardStore:
    """One shard: a bounded LRU of encoded keys with in-flight tracking.

    Values are the persistable ``(probability, solver)`` pairs.  With a
    ``persistent`` tier attached, misses fall through to its SQLite file
    (promoting hits back into memory) and every :meth:`put_many` flush
    writes back in one transaction.
    """

    def __init__(
        self, capacity: int, persistent: PersistentCache | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._persistent = persistent
        self._lock = threading.RLock()
        self._data: OrderedDict[str, Value] = OrderedDict()
        self._flights: dict[str, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    @property
    def persistent(self) -> PersistentCache | None:
        return self._persistent

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, encoded_key: str) -> Value | None:
        with self._lock:
            value = self._data.get(encoded_key)
            if value is not None:
                self._data.move_to_end(encoded_key)
                self._hits += 1
                return value
            self._misses += 1
        if self._persistent is None:
            return None
        found = self._persistent.get_encoded(encoded_key, _MISSING)
        if found is _MISSING:
            return None
        disk_value: Value = (float(found[0]), found[1])
        self._store(encoded_key, disk_value)
        return disk_value

    def _store(self, encoded_key: str, value: Value) -> None:
        """Insert/refresh one entry (takes the reentrant lock itself)."""
        with self._lock:
            if encoded_key in self._data:
                self._data.move_to_end(encoded_key)
            self._data[encoded_key] = value
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def put_many(self, pairs: Iterable[tuple[str, Value]]) -> None:
        """Publish a batch: memory, then ONE disk transaction, then wake
        every waiter whose key the batch resolved."""
        pairs = list(pairs)
        with self._lock:
            for encoded_key, value in pairs:
                self._store(encoded_key, value)
            flights = [
                flight
                for encoded_key, _ in pairs
                if (flight := self._flights.pop(encoded_key, None)) is not None
            ]
        if self._persistent is not None:
            self._persistent.put_many_encoded(pairs)
        for flight in flights:
            flight.set()

    def claim(self, encoded_key: str) -> tuple[str, Value | None]:
        """Atomically: the value, or ownership of computing it.

        Returns ``("value", v)`` when the shard (memory or disk) already
        holds the key, ``("claimed", None)`` when the caller now owns the
        in-flight computation, and ``("wait", None)`` when another worker
        owns it — the caller should :meth:`wait`.
        """
        with self._lock:
            value = self._data.get(encoded_key)
            if value is not None:
                self._data.move_to_end(encoded_key)
                self._hits += 1
                return ("value", value)
            if encoded_key in self._flights:
                return ("wait", None)
            if self._persistent is not None:
                # Read the disk tier under the shard lock so a concurrent
                # publisher cannot interleave between miss and claim.
                found = self._persistent.get_encoded(encoded_key, _MISSING)
                if found is not _MISSING:
                    disk_value: Value = (float(found[0]), found[1])
                    self._store(encoded_key, disk_value)
                    return ("value", disk_value)
            self._misses += 1
            self._flights[encoded_key] = threading.Event()
            return ("claimed", None)

    def wait(self, encoded_key: str, timeout: float) -> Value | None:
        """Block until the key's flight publishes (or ``timeout`` passes).

        ``None`` means the value never arrived — the owner abandoned the
        flight or timed out — and the caller should compute locally.
        """
        with self._lock:
            value = self._data.get(encoded_key)
            if value is not None:
                self._data.move_to_end(encoded_key)
                self._hits += 1
                return value
            flight = self._flights.get(encoded_key)
        if flight is not None and not flight.wait(
            min(max(timeout, 0.0), MAX_WAIT_SECONDS)
        ):
            return None
        return self.get(encoded_key)

    def release(self, encoded_key: str) -> None:
        """Resolve the key's flight (publish or abandon), waking waiters."""
        with self._lock:
            flight = self._flights.pop(encoded_key, None)
        if flight is not None:
            flight.set()

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            flights = list(self._flights.values())
            self._flights.clear()
        for flight in flights:
            flight.set()
        if self._persistent is not None:
            self._persistent.clear()

    def invalidate(self, encoded_keys: Iterable[str]) -> int:
        """Drop exactly ``encoded_keys`` (memory AND write-back file).

        The targeted sibling of :meth:`clear`: the streaming layer
        retires keys of expired/updated sessions without disturbing the
        rest of the shard.  In-flight computations of a dropped key are
        left alone — their eventual publish re-inserts a value that is
        correct for *its* key (content-addressed keys cannot go stale).
        Returns the in-memory drop count.
        """
        encoded_keys = list(encoded_keys)
        with self._lock:
            dropped = 0
            for encoded_key in encoded_keys:
                if self._data.pop(encoded_key, None) is not None:
                    dropped += 1
            self._invalidations += dropped
        if self._persistent is not None:
            self._persistent.invalidate_encoded(encoded_keys)
        return dropped

    def stats(self) -> dict[str, float]:
        with self._lock:
            counters: dict[str, float] = {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "size": len(self._data),
                "capacity": self._capacity,
                "in_flight": len(self._flights),
            }
        if self._persistent is not None:
            counters.update(self._persistent.stats())
        return counters

    def close(self) -> None:
        if self._persistent is not None:
            self._persistent.close()


class ShardGroup:
    """N :class:`ShardStore` shards routed by :func:`shard_of`.

    The embedded (in-process) form of the shared tier: a
    :class:`ShardedSolverCache` without a ``shard_address`` owns one, and
    a :class:`ShardCacheServer` serves one to a fleet.  ``capacity`` is
    the total entry budget, split evenly across shards; ``cache_db`` is
    the write-back stem — each shard gets its own SQLite file
    (:func:`shard_db_path`) whose version stamp clears it on a format
    bump, exactly like the unsharded persistent tier.
    """

    def __init__(
        self,
        n_shards: int = DEFAULT_SHARDS,
        capacity: int = 4096,
        cache_db: Union[str, "os.PathLike[str]", None] = None,
        version: str | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self._version = version if version is not None else default_version()
        per_shard = max(1, -(-capacity // n_shards))  # ceil division
        self._stores = [
            ShardStore(
                per_shard,
                persistent=(
                    PersistentCache(
                        shard_db_path(cache_db, index), version=self._version
                    )
                    if cache_db is not None
                    else None
                ),
            )
            for index in range(n_shards)
        ]

    @property
    def n_shards(self) -> int:
        return len(self._stores)

    @property
    def version(self) -> str:
        return self._version

    @property
    def stores(self) -> list[ShardStore]:
        return list(self._stores)

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)

    def _store(self, encoded_key: str) -> ShardStore:
        return self._stores[shard_of(encoded_key, len(self._stores))]

    def get(self, encoded_key: str) -> Value | None:
        return self._store(encoded_key).get(encoded_key)

    def put_many(self, pairs: Iterable[tuple[str, Value]]) -> None:
        """Group a flush by shard; each shard flushes in one transaction."""
        by_shard: dict[int, list[tuple[str, Value]]] = {}
        for encoded_key, value in pairs:
            index = shard_of(encoded_key, len(self._stores))
            by_shard.setdefault(index, []).append((encoded_key, value))
        for index, batch in by_shard.items():
            self._stores[index].put_many(batch)

    def claim(self, encoded_key: str) -> tuple[str, Value | None]:
        return self._store(encoded_key).claim(encoded_key)

    def wait(self, encoded_key: str, timeout: float) -> Value | None:
        return self._store(encoded_key).wait(encoded_key, timeout)

    def release(self, encoded_key: str) -> None:
        self._store(encoded_key).release(encoded_key)

    def clear(self) -> None:
        for store in self._stores:
            store.clear()

    def invalidate(self, encoded_keys: Iterable[str]) -> int:
        """Route a targeted drop by shard; returns the total drop count."""
        by_shard: dict[int, list[str]] = {}
        for encoded_key in encoded_keys:
            index = shard_of(encoded_key, len(self._stores))
            by_shard.setdefault(index, []).append(encoded_key)
        return sum(
            self._stores[index].invalidate(batch)
            for index, batch in by_shard.items()
        )

    def stats(self) -> dict[str, Any]:
        """Per-shard counters plus their totals (the ``/stats`` payload)."""
        shards = [store.stats() for store in self._stores]
        totals: dict[str, float] = {}
        for counters in shards:
            for name, value in counters.items():
                totals[name] = totals.get(name, 0.0) + value
        return {
            "n_shards": len(self._stores),
            "version": self._version,
            "shards": shards,
            "totals": totals,
        }

    def close(self) -> None:
        for store in self._stores:
            store.close()

    def __enter__(self) -> "ShardGroup":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# The cache-server protocol
# ----------------------------------------------------------------------


class ShardProtocolError(RuntimeError):
    """A shard request failed at the transport or protocol layer."""


def _send_frame(sock: socket.socket, message: object) -> None:
    """One length-prefixed pickle frame — the ``SolveTask`` transport
    convention (small picklable builtin forms), over a socket."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(struct.pack(">I", len(payload)) + payload)


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ShardProtocolError("shard connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Any:
    (length,) = struct.unpack(">I", _recv_exact(sock, 4))
    return pickle.loads(_recv_exact(sock, length))


def _check_pairs(pairs: object) -> list[tuple[str, Value]]:
    """Validate a wire-received ``put_many`` batch before it reaches a store."""
    if not isinstance(pairs, list):
        raise ShardProtocolError(f"put_many expects a list, got {pairs!r}")
    checked: list[tuple[str, Value]] = []
    for pair in pairs:
        if not (
            isinstance(pair, tuple)
            and len(pair) == 2
            and isinstance(pair[0], str)
            and _persistable(pair[1])
        ):
            raise ShardProtocolError(
                "shard tier stores (encoded_key, (probability, solver)) "
                f"pairs, got {pair!r}"
            )
        checked.append((pair[0], (float(pair[1][0]), pair[1][1])))
    return checked


class ShardCacheServer:
    """Serve one :class:`ShardGroup` to a fleet over a localhost socket.

    Thread-per-connection (fleet sizes are worker counts, not crowds); a
    connection's blocking ``wait`` therefore never stalls other workers.
    ``port=0`` binds an ephemeral port; :attr:`address` is the
    ``host:port`` string clients attach to.  The handshake carries the
    cache-format version stamp, and a client from a different
    freeze()/solver generation is refused — the same never-serve-stale
    contract the SQLite tier enforces by clearing.
    """

    def __init__(
        self,
        n_shards: int = DEFAULT_SHARDS,
        capacity: int = 4096,
        cache_db: Union[str, "os.PathLike[str]", None] = None,
        version: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        group: ShardGroup | None = None,
    ) -> None:
        self.group = (
            group
            if group is not None
            else ShardGroup(
                n_shards=n_shards,
                capacity=capacity,
                cache_db=cache_db,
                version=version,
            )
        )
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._listener = socket.create_server((host, port))
        bound_host, bound_port = self._listener.getsockname()[:2]
        self._address = f"{bound_host}:{bound_port}"
        self._threads: list[threading.Thread] = []
        accept_thread = threading.Thread(
            target=self._accept_loop, name="shard-accept", daemon=True
        )
        self._accept_thread = accept_thread
        accept_thread.start()

    @property
    def address(self) -> str:
        """``host:port`` of the listening socket (pass to clients)."""
        return self._address

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            handler = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="shard-conn",
                daemon=True,
            )
            with self._lock:
                self._threads.append(handler)
                self._threads = [
                    thread for thread in self._threads if thread.is_alive()
                ]
            handler.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        with connection:
            while not self._closed.is_set():
                try:
                    request = _recv_frame(connection)
                except Exception:
                    return  # disconnect or garbage frame: drop the peer
                try:
                    response: tuple[str, Any] = ("ok", self._handle(request))
                except ShardProtocolError as error:
                    response = ("err", str(error))
                except Exception as error:  # never kill the handler thread
                    response = ("err", f"{type(error).__name__}: {error}")
                try:
                    _send_frame(connection, response)
                except OSError:
                    return

    def _handle(self, request: object) -> Any:
        if not (isinstance(request, tuple) and request):
            raise ShardProtocolError(f"malformed request {request!r}")
        op = request[0]
        arguments = request[1:]
        if op == "hello":
            (client_version,) = arguments
            if client_version != self.group.version:
                raise ShardProtocolError(
                    f"cache-format version mismatch: client "
                    f"{client_version!r}, server {self.group.version!r} — "
                    "a stale client must not read these shards"
                )
            return {
                "n_shards": self.group.n_shards,
                "version": self.group.version,
            }
        if op == "get":
            (encoded_key,) = arguments
            return self.group.get(encoded_key)
        if op == "put_many":
            (pairs,) = arguments
            self.group.put_many(_check_pairs(pairs))
            return len(pairs)
        if op == "claim":
            (encoded_key,) = arguments
            return self.group.claim(encoded_key)
        if op == "wait":
            encoded_key, timeout = arguments
            return self.group.wait(encoded_key, float(timeout))
        if op == "release":
            (encoded_key,) = arguments
            self.group.release(encoded_key)
            return True
        if op == "invalidate":
            (encoded_keys,) = arguments
            if not (
                isinstance(encoded_keys, list)
                and all(isinstance(item, str) for item in encoded_keys)
            ):
                raise ShardProtocolError(
                    "invalidate expects a list of encoded TEXT keys, "
                    f"got {encoded_keys!r}"
                )
            return self.group.invalidate(encoded_keys)
        if op == "stats":
            return self.group.stats()
        if op == "clear":
            self.group.clear()
            return True
        raise ShardProtocolError(f"unknown shard op {op!r}")

    def close(self) -> None:
        """Stop accepting, drop connections, close the write-back files."""
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=5.0)
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=1.0)
        self.group.close()

    def __enter__(self) -> "ShardCacheServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardCacheServer(address={self._address!r}, "
            f"n_shards={self.group.n_shards})"
        )


class ShardClient:
    """A picklable handle on a running :class:`ShardCacheServer`.

    Mirrors the :class:`ShardGroup` surface over the socket protocol.
    The connection is opened lazily and re-opened after a ``fork`` (the
    owning pid is tracked), so a client can ride into worker processes
    like a :class:`~repro.service.executors.SolveTask` does.  One
    request is in flight per client at a time (the socket is guarded by a
    lock); workers wanting concurrency hold one client each.
    """

    def __init__(self, address: str, timeout: float = 30.0) -> None:
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(
                f"shard address must look like 'host:port', got {address!r}"
            )
        self._address = address
        self._host = host
        self._port = int(port_text)
        self._timeout = timeout
        self._lock = threading.RLock()
        self._sock: socket.socket | None = None
        self._pid = -1

    @property
    def address(self) -> str:
        return self._address

    def __reduce__(self) -> tuple[Any, tuple[str, float]]:
        return (type(self), (self._address, self._timeout))

    def _connection(self) -> socket.socket:
        """The live socket, (re)connecting + handshaking as needed.

        Takes the (reentrant) client lock itself; a stale post-``fork``
        socket inherited from the parent is replaced, never shared.
        """
        with self._lock:
            if self._sock is not None and self._pid == os.getpid():
                return self._sock
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
            _send_frame(sock, ("hello", default_version()))
            status, payload = _recv_frame(sock)
            if status != "ok":
                sock.close()
                raise ShardProtocolError(str(payload))
            self._sock = sock
            self._pid = os.getpid()
            return sock

    def _call(
        self, message: "tuple[Any, ...]", read_timeout: float | None = None
    ) -> Any:
        with self._lock:
            sock = self._connection()
            try:
                if read_timeout is not None:
                    sock.settimeout(read_timeout)
                _send_frame(sock, message)
                status, payload = _recv_frame(sock)
            except (OSError, EOFError) as error:
                self._drop()
                raise ShardProtocolError(
                    f"shard server {self._address} unreachable: {error}"
                ) from error
            finally:
                if read_timeout is not None and self._sock is not None:
                    self._sock.settimeout(self._timeout)
        if status != "ok":
            raise ShardProtocolError(str(payload))
        return payload

    def _drop(self) -> None:
        """Discard the connection (takes the reentrant lock itself)."""
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
            self._sock = None
            self._pid = -1

    def get(self, encoded_key: str) -> Value | None:
        found = self._call(("get", encoded_key))
        return None if found is None else (float(found[0]), found[1])

    def put_many(self, pairs: Iterable[tuple[str, Value]]) -> None:
        self._call(("put_many", list(pairs)))

    def claim(self, encoded_key: str) -> tuple[str, Value | None]:
        status, value = self._call(("claim", encoded_key))
        if value is not None:
            value = (float(value[0]), value[1])
        return (status, value)

    def wait(self, encoded_key: str, timeout: float) -> Value | None:
        # The server blocks up to `timeout`; give the socket read slack
        # beyond it so a slow publish is not misread as a dead server.
        found = self._call(
            ("wait", encoded_key, timeout), read_timeout=timeout + 10.0
        )
        return None if found is None else (float(found[0]), found[1])

    def release(self, encoded_key: str) -> None:
        self._call(("release", encoded_key))

    def invalidate(self, encoded_keys: Iterable[str]) -> int:
        return int(self._call(("invalidate", list(encoded_keys))))

    def stats(self) -> dict[str, Any]:
        payload = self._call(("stats",))
        return dict(payload)

    def clear(self) -> None:
        self._call(("clear",))

    def close(self) -> None:
        self._drop()

    def __repr__(self) -> str:
        return f"ShardClient(address={self._address!r})"


#: Either face of the shared tier — embedded or attached.
ShardTier = Union[ShardGroup, ShardClient]


# ----------------------------------------------------------------------
# The drop-in cache
# ----------------------------------------------------------------------


class ShardedSolverCache(SolverCache):
    """An LRU :class:`SolverCache` with a sharded shared tier beneath it.

    * ``get`` — process-local LRU first; a miss consults the shard tier
      (promoting hits into the LRU), which itself falls through to its
      per-shard SQLite write-back files;
    * ``put`` / ``put_many`` — write-through: the LRU, the shard tier,
      and the per-shard files update together (one transaction per shard
      per flush).  Values the durable format cannot hold (anything but a
      ``(probability, solver)`` pair) stay in the local LRU, like the
      unsharded persistent tier;
    * ``claim`` / ``wait_flight`` / ``release_flight`` — fleet-wide
      single-flight: the plan executor claims a missing key before
      solving, and concurrent workers claiming the same key wait for the
      one in-flight solve instead of duplicating it.  An abandoned flight
      (owner died, timeout) degrades to a local solve, never a wrong or
      missing answer.

    Embedded by default (``n_shards`` stores in this process, optional
    ``cache_db`` write-back stem); pass ``address=`` to attach to a
    running :class:`ShardCacheServer` instead — the server then owns the
    shard topology and persistence.
    """

    def __init__(
        self,
        capacity: int = 4096,
        n_shards: int = DEFAULT_SHARDS,
        cache_db: Union[str, "os.PathLike[str]", None] = None,
        version: str | None = None,
        address: str | None = None,
        shard_capacity: int | None = None,
        flight_timeout: float = 60.0,
    ) -> None:
        super().__init__(capacity)
        if address is not None and cache_db is not None:
            raise ValueError(
                "an attached shard tier persists on the server side; pass "
                "cache_db to the ShardCacheServer, not the client"
            )
        self._tier: ShardTier = (
            ShardClient(address)
            if address is not None
            else ShardGroup(
                n_shards=n_shards,
                capacity=(
                    shard_capacity if shard_capacity is not None else capacity
                ),
                cache_db=cache_db,
                version=version,
            )
        )
        self._flight_timeout = flight_timeout

    @property
    def tier(self) -> ShardTier:
        return self._tier

    def get(self, key: Hashable, default: Any = None) -> Any:
        value = super().get(key, _MISSING)
        if value is not _MISSING:
            return value
        found = self._tier.get(encode_key(key))
        if found is None:
            return default
        super().put(key, found)  # promote into the local LRU
        return found

    def put(self, key: Hashable, value: Any) -> None:
        super().put(key, value)
        if _persistable(value):
            self._tier.put_many(
                [(encode_key(key), (float(value[0]), value[1]))]
            )

    def put_many(self, items: Iterable[tuple[Hashable, Any]]) -> None:
        """One local lock acquisition, one tier flush (one transaction
        per shard), one wake-up sweep for fleet waiters."""
        items = list(items)
        SolverCache.put_many(self, items)
        pairs = [
            (encode_key(key), (float(value[0]), value[1]))
            for key, value in items
            if _persistable(value)
        ]
        if pairs:
            self._tier.put_many(pairs)

    # -- fleet-wide single-flight ---------------------------------------

    def claim(self, key: Hashable) -> tuple[str, Value | None]:
        """Claim one canonical key against the shared tier.

        ``("value", v)`` — served (and promoted locally); ``("claimed",
        None)`` — this worker owns the solve and must publish via ``put``
        / ``put_many`` or abandon via :meth:`release_flight`; ``("wait",
        None)`` — another worker is solving it: :meth:`wait_flight`.
        """
        status, value = self._tier.claim(encode_key(key))
        if value is not None:
            super().put(key, value)
        return (status, value)

    def wait_flight(
        self, key: Hashable, timeout: float | None = None
    ) -> Value | None:
        """Block on another worker's in-flight solve of ``key``.

        ``None`` after the timeout (or an abandoned flight) means the
        caller should solve locally.
        """
        value = self._tier.wait(
            encode_key(key),
            self._flight_timeout if timeout is None else timeout,
        )
        if value is not None:
            super().put(key, value)
        return value

    def release_flight(self, key: Hashable) -> None:
        """Abandon a claimed flight without publishing (solve failed, or
        the value is not persistable); waiters fall back to local solves."""
        self._tier.release(encode_key(key))

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Single-flight across the whole fleet, not just this process."""
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        status, found = self.claim(key)
        if status == "value":
            return found
        if status == "wait":
            found = self.wait_flight(key)
            if found is not None:
                return found
            # The owner vanished; fall through and solve locally (the
            # claim may have expired without a value — do not re-claim,
            # just publish when done).
        try:
            value = compute()
        except BaseException:
            self.release_flight(key)
            raise
        self.put(key, value)  # publishes the flight when persistable
        if not _persistable(value):
            self.release_flight(key)
        return value

    # -- stats / lifecycle ----------------------------------------------

    def tier_stats(self) -> dict[str, float]:
        """Flat shard-tier counters merged into ``PreferenceService.stats()``."""
        depth = self._tier.stats()
        totals = depth["totals"]
        flat: dict[str, float] = {
            "n_shards": depth["n_shards"],
            "shard_hits": totals.get("hits", 0.0),
            "shard_misses": totals.get("misses", 0.0),
            "shard_evictions": totals.get("evictions", 0.0),
            "shard_invalidations": totals.get("invalidations", 0.0),
            "shard_size": totals.get("size", 0.0),
        }
        for name in (
            "disk_hits", "disk_misses", "disk_size", "disk_invalidations"
        ):
            if name in totals:
                flat[name] = totals[name]
        return flat

    def tier_depth(self) -> dict[str, Any]:
        """The structured per-shard payload for the server's ``/stats``."""
        return self._tier.stats()

    def clear(self) -> None:
        """Drop the local LRU and every shard (counters are kept)."""
        super().clear()
        self._tier.clear()

    def invalidate(self, keys: Iterable[Hashable]) -> int:
        """Drop ``keys`` from the local LRU AND the shared tier.

        Write-through invalidation: the same keys leave every tier (the
        shard stores and their write-back files included), so a fleet
        member cannot re-promote a retired entry.  Returns the local
        drop count; the tier's own count shows up per shard in
        :meth:`tier_depth` (``invalidations``).
        """
        keys = list(keys)
        dropped = super().invalidate(keys)
        self._tier.invalidate([encode_key(key) for key in keys])
        return dropped

    def close(self) -> None:
        self._tier.close()

    def __repr__(self) -> str:
        tier = (
            f"address={self._tier.address!r}"
            if isinstance(self._tier, ShardClient)
            else f"n_shards={self._tier.n_shards}"
        )
        return (
            f"ShardedSolverCache(size={len(self)}, "
            f"capacity={self.capacity}, {tier})"
        )
