"""Canonical cache keys for solver requests.

A solve is determined by the triple ``(model, labeling, pattern union)``
(plus the solver method and its options), but many syntactically different
triples are semantically the same request:

* the same Mallows parameters wrapped in distinct objects (every query
  evaluation re-reads the model from the p-relation);
* pattern unions whose node names differ because they came from different
  query variables, or whose patterns are listed in a different order;
* labelings that agree on the union's labels but differ on labels no
  pattern mentions;
* mixtures whose components are permuted or split.

Each class therefore exposes a ``freeze()`` hook producing a hashable
canonical form — :meth:`~repro.rim.model.RIM.freeze`,
:meth:`~repro.rim.mallows.Mallows.freeze`,
:meth:`~repro.rim.mixture.MallowsMixture.freeze`,
:meth:`~repro.patterns.labels.Labeling.freeze` (with label projection), and
:meth:`~repro.patterns.union.PatternUnion.freeze` (built on
:meth:`~repro.patterns.pattern.LabelPattern.canonical_form`).  This module
composes them into full request keys.  Keys are *sound*: equal keys imply
equal solve results.  They are best-effort *complete*: some semantically
identical requests may still produce different keys (e.g. pathological
``repr`` collisions or very symmetric patterns), which costs a cache miss,
never a wrong answer.  See DESIGN.md, "The service layer".
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.patterns.labels import Labeling
from repro.patterns.pattern import LabelPattern
from repro.patterns.union import PatternUnion


def freeze_model(model) -> tuple:
    """The model's canonical form via its ``freeze()`` hook."""
    freeze = getattr(model, "freeze", None)
    if freeze is None:
        raise TypeError(
            f"{type(model).__name__} has no freeze() hook; models must be "
            "cacheable (RIM, Mallows, MallowsMixture) to use the solver cache"
        )
    return freeze()


def _as_union(union_or_pattern) -> PatternUnion:
    # Mirrors repro.solvers.base.as_union without importing repro.solvers
    # (the solver dispatch imports this module at load time).
    if isinstance(union_or_pattern, PatternUnion):
        return union_or_pattern
    if isinstance(union_or_pattern, LabelPattern):
        return PatternUnion([union_or_pattern])
    raise TypeError(
        f"expected LabelPattern or PatternUnion, got {type(union_or_pattern).__name__}"
    )


def _resolve_method(union: PatternUnion, method: str) -> str:
    """Resolve ``"auto"`` so an auto request collides with its explicit twin.

    Routed through the single plan-level resolution path
    (:mod:`repro.plan.methods`), the same one the optimizer's
    method-resolution pass and the solver dispatch use — auto and explicit
    requests therefore cannot disagree on cache keys.
    """
    if method != "auto":
        return method
    from repro.plan.methods import resolve_solve_method  # deferred: import cycle

    return resolve_solve_method(union, method)


def _freeze_options(solver_options: Mapping[str, Any] | None) -> tuple:
    """Options as a sorted, hashable tuple (``repr`` handles unhashable values)."""
    if not solver_options:
        return ()
    return tuple(sorted((name, repr(value)) for name, value in solver_options.items()))


def request_fingerprint(
    labeling: Labeling,
    union_or_pattern,
    method: str = "auto",
    solver_options: Mapping[str, Any] | None = None,
) -> tuple:
    """The model-independent part of a request key.

    Canonicalizing the union and the projected labeling is the expensive
    half of key construction, and every session of a query shares the same
    union/labeling objects — callers memoize this fingerprint per union and
    pass it back via the ``fingerprint`` parameter of the key functions.
    """
    union = _as_union(union_or_pattern)
    return (
        labeling.freeze(union.all_labels),
        union.freeze(),
        _resolve_method(union, method),
        _freeze_options(solver_options),
    )


def solve_cache_key(
    model,
    labeling: Labeling,
    union_or_pattern,
    method: str = "auto",
    solver_options: Mapping[str, Any] | None = None,
    fingerprint: tuple | None = None,
) -> tuple:
    """The key of one dispatch-level exact solve (a plain RIM/Mallows model).

    Used by :func:`repro.solvers.dispatch.solve` when handed a cache; the
    cached value is the :class:`~repro.solvers.base.SolverResult`.
    """
    if fingerprint is None:
        fingerprint = request_fingerprint(
            labeling, union_or_pattern, method, solver_options
        )
    return ("solve", freeze_model(model)) + fingerprint


def session_cache_key(
    model,
    labeling: Labeling,
    union_or_pattern,
    method: str = "auto",
    solver_options: Mapping[str, Any] | None = None,
    fingerprint: tuple | None = None,
) -> tuple:
    """The key of one engine-level session solve (the model may be a mixture).

    Used by :func:`repro.query.engine.evaluate` and the
    :class:`~repro.service.service.PreferenceService`; the cached value is a
    ``(probability, solver_name)`` pair.  The tag keeps these entries
    disjoint from dispatch-level entries, whose values have a different
    type.

    Canonically equal requests share one entry *including its solver
    name*: a plain Mallows and a single-full-weight-component mixture of
    it collide (by design — they are the same distribution), so a
    cache-served evaluation reports the solver of whichever request
    actually solved first (``two_label`` vs ``mixture[two_label]``).  The
    probability is identical either way; the name describes the solve
    that really ran.
    """
    if fingerprint is None:
        fingerprint = request_fingerprint(
            labeling, union_or_pattern, method, solver_options
        )
    return ("session", freeze_model(model)) + fingerprint
