"""An LRU result cache for solver requests, with hit/miss/eviction stats.

The cache is deliberately dumb: a bounded, thread-safe mapping from
canonical request keys (:mod:`repro.service.keys`) to solver outcomes.  All
the intelligence lives in the keys — semantically identical requests
collide there, so one :class:`SolverCache` shared across queries turns the
paper's within-query identical-request grouping (Section 6.4) into
cross-query reuse.  See DESIGN.md, "The service layer".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache counters.

    The plan-level counters (``n_solves_planned``, ``n_solves_eliminated``,
    ``n_passes_applied``) accumulate what the query planner
    (:mod:`repro.plan`) reported through :meth:`SolverCache.record_plan`:
    how many per-session solves the plans built against this cache
    contained, how many the optimizer's common-solve elimination merged
    away before any solver ran, and how many optimizer passes were applied
    in total.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    n_solves_planned: int = 0
    n_solves_eliminated: int = 0
    n_passes_applied: int = 0

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
            "n_solves_planned": self.n_solves_planned,
            "n_solves_eliminated": self.n_solves_eliminated,
            "n_passes_applied": self.n_passes_applied,
        }


_MISSING = object()


class SolverCache:
    """A thread-safe LRU cache keyed by canonical solver-request keys.

    Values are whatever the caller stores — the solver dispatch caches
    :class:`~repro.solvers.base.SolverResult` objects, the query engine
    caches ``(probability, solver_name)`` pairs; the two never collide
    because their keys carry distinct tags ("solve" vs "session").

    ``get``/``put`` update recency and the hit/miss/eviction counters;
    ``__contains__`` and ``__len__`` are side-effect-free peeks.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._n_solves_planned = 0
        self._n_solves_eliminated = 0
        self._n_passes_applied = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        return (
            f"SolverCache(size={len(self._data)}, capacity={self._capacity}, "
            f"hits={self._hits}, misses={self._misses})"
        )

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value (marking it most recently used), or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the least recently used beyond capacity."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def put_many(self, items) -> None:
        """Insert/refresh many entries; subclasses may batch the work."""
        for key, value in items:
            self.put(key, value)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """The cached value, or ``compute()`` stored under ``key``.

        ``compute`` runs outside the lock: concurrent misses on the same
        key may duplicate work (both results are identical by construction
        of the canonical keys), but a slow solve never blocks the cache.
        """
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._data.clear()

    def record_plan(
        self, n_planned: int, n_eliminated: int, n_passes: int
    ) -> None:
        """Accumulate one executed plan's counters (see :class:`CacheStats`)."""
        with self._lock:
            self._n_solves_planned += n_planned
            self._n_solves_eliminated += n_eliminated
            self._n_passes_applied += n_passes

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._n_solves_planned = 0
            self._n_solves_eliminated = 0
            self._n_passes_applied = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                capacity=self._capacity,
                n_solves_planned=self._n_solves_planned,
                n_solves_eliminated=self._n_solves_eliminated,
                n_passes_applied=self._n_passes_applied,
            )
