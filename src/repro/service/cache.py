"""An LRU result cache for solver requests, with hit/miss/eviction stats.

The cache is deliberately dumb: a bounded, thread-safe mapping from
canonical request keys (:mod:`repro.service.keys`) to solver outcomes.  All
the intelligence lives in the keys — semantically identical requests
collide there, so one :class:`SolverCache` shared across queries turns the
paper's within-query identical-request grouping (Section 6.4) into
cross-query reuse.  See DESIGN.md, "The service layer".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache counters.

    The plan-level counters (``n_solves_planned``, ``n_solves_eliminated``,
    ``n_passes_applied``) accumulate what the query planner
    (:mod:`repro.plan`) reported through :meth:`SolverCache.record_plan`:
    how many per-session solves the plans built against this cache
    contained, how many the optimizer's common-solve elimination merged
    away before any solver ran, and how many optimizer passes were applied
    in total.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    n_solves_planned: int = 0
    n_solves_eliminated: int = 0
    n_passes_applied: int = 0
    #: Entries dropped by targeted :meth:`SolverCache.invalidate` calls
    #: (the streaming layer retiring solves of expired/updated sessions) —
    #: distinct from capacity ``evictions`` and whole-store ``clear``.
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
            "n_solves_planned": self.n_solves_planned,
            "n_solves_eliminated": self.n_solves_eliminated,
            "n_passes_applied": self.n_passes_applied,
            "invalidations": self.invalidations,
        }


_MISSING = object()


class SolverCache:
    """A thread-safe LRU cache keyed by canonical solver-request keys.

    Values are whatever the caller stores — the solver dispatch caches
    :class:`~repro.solvers.base.SolverResult` objects, the query engine
    caches ``(probability, solver_name)`` pairs; the two never collide
    because their keys carry distinct tags ("solve" vs "session").

    ``get``/``put`` update recency and the hit/miss/eviction counters;
    ``__contains__`` and ``__len__`` are side-effect-free peeks.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        #: In-flight computations keyed by cache key: the first thread to
        #: miss in :meth:`get_or_compute` registers an event here and
        #: computes; concurrent misses wait on the event instead of
        #: duplicating the solve.
        self._flights: dict[Hashable, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._n_solves_planned = 0
        self._n_solves_eliminated = 0
        self._n_passes_applied = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        return (
            f"SolverCache(size={len(self._data)}, capacity={self._capacity}, "
            f"hits={self._hits}, misses={self._misses})"
        )

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value (marking it most recently used), or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def _store(self, key: Hashable, value: Any) -> None:
        """Insert/refresh one entry, evicting beyond capacity.

        Takes the (reentrant) lock itself, so batch paths that already
        hold it can call this per entry without releasing in between.
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def _release_flight(self, key: Hashable) -> None:
        """Wake any :meth:`get_or_compute` waiters blocked on ``key``."""
        with self._lock:
            flight = self._flights.pop(key, None)
        if flight is not None:
            flight.set()

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the least recently used beyond capacity."""
        self._store(key, value)
        self._release_flight(key)

    def put_many(self, items) -> None:
        """Insert/refresh many entries under ONE lock acquisition.

        A batch flush from the plan executor can carry hundreds of fresh
        outcomes; taking the lock per entry would interleave them with
        concurrent readers for no benefit.  Subclasses with a durable tier
        override this to also batch the disk work.
        """
        items = list(items)
        with self._lock:
            for key, value in items:
                self._store(key, value)
            flights = [
                flight
                for key, _ in items
                if (flight := self._flights.pop(key, None)) is not None
            ]
        for flight in flights:
            flight.set()

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """The cached value, or ``compute()`` stored under ``key``.

        Single-flight: concurrent misses on one key perform ONE compute —
        the first thread to miss claims the key (a per-key in-flight
        event), the others block on the event and read the published
        value.  ``compute`` still runs outside the lock, so a slow solve
        never blocks unrelated cache traffic.  If the owning compute
        raises, its waiters race to claim the key and retry, so a failure
        never strands a waiter.  ``compute`` must not re-enter the cache
        with the same key, or it will deadlock on its own flight.
        """
        # The subclass-aware lookup first: a tiered cache (persistent,
        # sharded) serves from its lower tiers through ``get``.
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        while True:
            with self._lock:
                value = self._data.get(key, _MISSING)
                if value is not _MISSING:
                    self._data.move_to_end(key)
                    self._hits += 1
                    return value
                flight = self._flights.get(key)
                if flight is None:
                    self._flights[key] = threading.Event()
            if flight is None:  # this thread owns the flight
                try:
                    value = compute()
                except BaseException:
                    self._release_flight(key)
                    raise
                self.put(key, value)  # put() releases the flight
                return value
            flight.wait()
            # Loop: a hit unless the owner failed (then race to re-claim).

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._data.clear()

    def invalidate(self, keys: "Iterable[Hashable]") -> int:
        """Drop exactly ``keys``; returns how many were present.

        The targeted sibling of :meth:`clear`, used by the streaming
        layer to retire entries whose session was updated or expired
        (DESIGN.md Section 15).  Content-addressed keys make this a
        space/bookkeeping operation, never a correctness one: a changed
        session freezes to a *new* key, so stale entries can linger
        unread — invalidation reclaims them deterministically.  Absent
        keys are ignored; dropped entries count as ``invalidations`` in
        :meth:`stats`, not as evictions.
        """
        with self._lock:
            dropped = 0
            for key in keys:
                if self._data.pop(key, _MISSING) is not _MISSING:
                    dropped += 1
            self._invalidations += dropped
            return dropped

    def record_plan(
        self, n_planned: int, n_eliminated: int, n_passes: int
    ) -> None:
        """Accumulate one executed plan's counters (see :class:`CacheStats`)."""
        with self._lock:
            self._n_solves_planned += n_planned
            self._n_solves_eliminated += n_eliminated
            self._n_passes_applied += n_passes

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._invalidations = 0
            self._n_solves_planned = 0
            self._n_solves_eliminated = 0
            self._n_passes_applied = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                capacity=self._capacity,
                n_solves_planned=self._n_solves_planned,
                n_solves_eliminated=self._n_solves_eliminated,
                n_passes_applied=self._n_passes_applied,
                invalidations=self._invalidations,
            )
