"""A SQLite-backed persistent tier beneath the in-memory solver cache.

The in-memory :class:`~repro.service.cache.SolverCache` makes repeated
consensus-answer-style workloads cheap *within* a process, but evaporates
on restart.  This module adds the durable tier:

* :class:`PersistentCache` — a small write-through key/value store over one
  SQLite file.  Keys are the canonical request keys of
  :mod:`repro.service.keys`, encoded by ``repr`` (the same determinism the
  canonical forms already rely on for sorting); values are the engine's
  ``(probability, solver_name)`` session outcomes.  Entries are *versioned*:
  the file records the cache-format version plus ``repro.__version__``, and
  a mismatch clears the store — stale keys from an older freeze()/solver
  generation can cost a rebuild, never a wrong answer.
* :class:`PersistentSolverCache` — a drop-in :class:`SolverCache` whose
  misses fall through to the SQLite tier (promoting hits back into memory)
  and whose puts write through.  Handing one to the query engine or a
  :class:`~repro.service.service.PreferenceService` (``cache_db=``) makes
  warm state survive restarts: a new process serving a previously-seen
  batch performs zero solves.

Only plain ``(float, str)`` session outcomes are persisted; richer cached
values (e.g. dispatch-level ``SolverResult`` objects) stay memory-only
rather than pulling pickle into the storage format.  See DESIGN.md,
"Executors, persistence, planning".
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Any, Hashable

import repro
from repro.service.cache import SolverCache

#: Bump when the canonical key or value format changes incompatibly;
#: combined with ``repro.__version__`` into the stored version stamp.
KEY_SCHEMA_VERSION = 1

_MISSING = object()


def default_version() -> str:
    """The version stamp new cache files record (and old ones must match)."""
    return f"{repro.__version__}/k{KEY_SCHEMA_VERSION}"


def _typed(value):
    """Recursively tag non-builtin leaves with their type.

    ``repr`` alone can collide across types (``np.int64(1)`` reprs as
    ``1`` on older NumPy), and the in-memory cache would keep such keys
    apart while a bare-repr TEXT key would merge them — a wrong answer,
    not a miss.  Builtin scalars have injective reprs within and across
    their types; everything else is wrapped in its module-qualified type
    name, matching the identity convention of
    :func:`repro.patterns.pattern.canonical_sort_key`.
    """
    if isinstance(value, tuple):
        return tuple(_typed(element) for element in value)
    if isinstance(value, frozenset):
        return (
            "frozenset{",
            tuple(sorted((_typed(element) for element in value), key=repr)),
            "}",
        )
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    return (
        "typed<", type(value).__module__, type(value).__qualname__,
        repr(value), ">",
    )


def encode_key(key: Hashable) -> str:
    """Canonical request key -> stable TEXT key.

    The canonical keys are nested tuples of strings, numbers, bytes, and
    label objects; leaves are type-tagged (:func:`_typed`) before taking
    ``repr``, so the encoding is deterministic across processes and runs
    and two keys only merge when they share both structure and per-leaf
    type.  Residual assumption (shared with the canonicalization layer):
    distinct *same-type* values must not share a ``repr``.
    """
    return repr(_typed(key))


def _persistable(value: Any) -> bool:
    """True for the engine's ``(probability, solver_name)`` outcomes."""
    return (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[0], (int, float))
        and isinstance(value[1], str)
    )


class PersistentCache:
    """A write-through (key -> (probability, solver)) store in one SQLite file.

    Thread-safe (one connection guarded by a lock; SQLite REAL columns are
    IEEE doubles, so probabilities round-trip exactly).  ``get``/``put``
    mirror the :class:`SolverCache` surface so tiering is mechanical.
    """

    def __init__(self, path: "str | os.PathLike", version: str | None = None):
        self._path = os.fspath(path)
        self._version = version if version is not None else default_version()
        self._lock = threading.RLock()
        # A generous busy timeout: multiple serving backends may share one
        # cache file (--cache-db), so a writer must wait out a concurrent
        # transaction instead of failing with "database is locked".
        self._conn = sqlite3.connect(
            self._path, check_same_thread=False, timeout=30.0
        )
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        with self._lock:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(name TEXT PRIMARY KEY, value TEXT)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "key TEXT PRIMARY KEY, probability REAL, solver TEXT)"
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE name = 'version'"
            ).fetchone()
            if row is None or row[0] != self._version:
                # A different freeze()/solver generation wrote this file:
                # its keys may no longer mean what they say. Start over.
                self._conn.execute("DELETE FROM entries")
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta (name, value) "
                    "VALUES ('version', ?)",
                    (self._version,),
                )
            self._conn.commit()

    @property
    def path(self) -> str:
        return self._path

    @property
    def version(self) -> str:
        return self._version

    def __len__(self) -> int:
        with self._lock:
            return int(
                self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
            )

    def __repr__(self) -> str:
        return f"PersistentCache(path={self._path!r}, size={len(self)})"

    def get(
        self, key: Hashable, default: Any = None
    ) -> "tuple[float, str] | Any":
        return self.get_encoded(encode_key(key), default)

    def get_encoded(
        self, encoded_key: str, default: Any = None
    ) -> "tuple[float, str] | Any":
        """Lookup by a pre-encoded TEXT key (the shard tier's currency)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT probability, solver FROM entries WHERE key = ?",
                (encoded_key,),
            ).fetchone()
            if row is None:
                self._misses += 1
                return default
            self._hits += 1
            return (float(row[0]), row[1])

    def put(self, key: Hashable, value: tuple) -> None:
        self.put_many([(key, value)])

    def put_many(self, items) -> None:
        """Store many outcomes in ONE transaction.

        A cold batch writes every fresh solve through; committing per entry
        would pay one fsync each, so the serving layer flushes a batch's
        outcomes together.
        """
        rows = []
        for key, value in items:
            if not _persistable(value):
                raise TypeError(
                    "persistent cache stores (probability, solver) pairs, "
                    f"got {value!r}"
                )
            rows.append((encode_key(key), value))
        self.put_many_encoded(rows)

    def put_many_encoded(
        self, items: "list[tuple[str, tuple[float, str]]]"
    ) -> None:
        """``put_many`` over pre-encoded TEXT keys, still one transaction."""
        rows = [
            (encoded_key, float(value[0]), value[1])
            for encoded_key, value in items
        ]
        if not rows:
            return
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO entries (key, probability, solver) "
                "VALUES (?, ?, ?)",
                rows,
            )
            self._conn.commit()

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM entries")
            self._conn.commit()

    def invalidate(self, keys) -> int:
        """Drop exactly ``keys`` from the file; returns how many existed."""
        return self.invalidate_encoded([encode_key(key) for key in keys])

    def invalidate_encoded(self, encoded_keys: "list[str]") -> int:
        """:meth:`invalidate` over pre-encoded TEXT keys, one transaction."""
        if not encoded_keys:
            return 0
        with self._lock:
            dropped = 0
            for encoded_key in encoded_keys:
                cursor = self._conn.execute(
                    "DELETE FROM entries WHERE key = ?", (encoded_key,)
                )
                dropped += cursor.rowcount
            self._conn.commit()
            self._invalidations += dropped
            return dropped

    def stats(self) -> dict[str, float]:
        with self._lock:
            return {
                "disk_hits": self._hits,
                "disk_misses": self._misses,
                "disk_size": len(self),
                "disk_invalidations": self._invalidations,
            }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "PersistentCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PersistentSolverCache(SolverCache):
    """An LRU :class:`SolverCache` with a SQLite tier beneath it.

    * ``get`` — memory first; a miss falls through to the SQLite tier and a
      disk hit is promoted back into the LRU (so hot restarted state pays
      the disk read once);
    * ``put`` — write-through: the LRU and the file are updated together.
      Values the durable format cannot hold (anything but a
      ``(probability, solver)`` pair) stay memory-only.

    The inherited :meth:`stats` counters keep their in-memory semantics (a
    disk-served ``get`` still counts as a memory miss); the disk tier's own
    counters are reported by :meth:`tier_stats`.
    """

    def __init__(
        self,
        capacity: int = 4096,
        db_path: "str | os.PathLike" = "solver_cache.sqlite",
        version: str | None = None,
    ):
        super().__init__(capacity)
        self._persistent = PersistentCache(db_path, version=version)

    @property
    def persistent(self) -> PersistentCache:
        return self._persistent

    @property
    def db_path(self) -> str:
        return self._persistent.path

    def get(self, key: Hashable, default: Any = None) -> Any:
        value = super().get(key, _MISSING)
        if value is not _MISSING:
            return value
        value = self._persistent.get(key, _MISSING)
        if value is _MISSING:
            return default
        super().put(key, value)  # promote into the LRU
        return value

    def put(self, key: Hashable, value: Any) -> None:
        super().put(key, value)
        if _persistable(value):
            self._persistent.put(key, value)

    def put_many(self, items) -> None:
        """Write-through a whole batch with one disk transaction.

        The in-memory half goes through the base class (one lock
        acquisition for the whole batch); the durable half is one SQLite
        transaction.
        """
        items = list(items)
        SolverCache.put_many(self, items)
        self._persistent.put_many(
            [(key, value) for key, value in items if _persistable(value)]
        )

    def clear(self) -> None:
        """Drop both tiers (counters are kept, as in the base class)."""
        super().clear()
        self._persistent.clear()

    def invalidate(self, keys) -> int:
        """Drop ``keys`` from BOTH tiers (write-through invalidation).

        Returns the in-memory drop count (the tier the solver reads
        first); the disk tier's own count shows up in
        :meth:`tier_stats` as ``disk_invalidations``.
        """
        keys = list(keys)
        dropped = super().invalidate(keys)
        self._persistent.invalidate(keys)
        return dropped

    def tier_stats(self) -> dict[str, float]:
        """Disk-tier counters, merged into ``PreferenceService.stats()``."""
        return self._persistent.stats()

    def tier_depth(self) -> dict:
        """Structured per-tier depth for the server's ``/stats`` payload.

        Unlike :meth:`tier_stats` (flat scalars merged into the service
        counters), this nests one entry per tier beneath the LRU, so the
        wire can show the whole cache hierarchy.
        """
        return {"disk": self._persistent.stats()}

    def close(self) -> None:
        self._persistent.close()

    def __repr__(self) -> str:
        return (
            f"PersistentSolverCache(size={len(self)}, "
            f"capacity={self.capacity}, db={self.db_path!r})"
        )
