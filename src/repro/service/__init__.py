"""The serving layer: cache keys, caches, executors, planning, batching.

Six pieces (see DESIGN.md, "The service layer" and "Executors,
persistence, planning"):

* :mod:`repro.service.keys` — canonical cache keys for (model, labeling,
  pattern-union) solve requests, built on the ``freeze()`` hooks of the
  model and pattern classes;
* :mod:`repro.service.cache` — a thread-safe LRU :class:`SolverCache` with
  hit/miss/eviction statistics, consumed by the solver dispatch and the
  query engine (``cache=`` parameter);
* :mod:`repro.service.persist` — the SQLite tier beneath the LRU
  (:class:`PersistentSolverCache`), making warm state survive restarts;
* :mod:`repro.service.shard` — the sharded *shared* tier
  (:class:`ShardedSolverCache`, :class:`ShardCacheServer`): warm state
  partitioned over canonical keys and served to a fleet of workers, with
  fleet-wide single-flight so N cold workers solve a hot key once;
* :mod:`repro.service.executors` — pluggable ``serial`` / ``thread`` /
  ``process`` execution backends over picklable ``SolveTask`` descriptors
  built from the canonical ``freeze()`` forms;
* :mod:`repro.service.planner` — DP state-count estimates and the
  largest-first (LPT) schedule of a batch's pending solves;
* :mod:`repro.service.service` — the :class:`PreferenceService` batch API
  (``evaluate_many``) that groups sessions across whole batches of queries
  and runs the distinct solves on the configured backend.

``PreferenceService``/``BatchResult`` are re-exported lazily: the query
engine imports :mod:`repro.service.keys` at load time, and an eager import
of :mod:`repro.service.service` here would close an import cycle back into
the engine.
"""

from repro.service.cache import CacheStats, SolverCache
from repro.service.executors import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SolveTask,
    TaskOutcome,
    ThreadBackend,
    resolve_backend,
    run_solve_task,
    task_model_form,
)
from repro.service.keys import freeze_model, session_cache_key, solve_cache_key
from repro.service.persist import PersistentCache, PersistentSolverCache
from repro.service.shard import (
    ShardCacheServer,
    ShardClient,
    ShardGroup,
    ShardedSolverCache,
    shard_of,
)

__all__ = [
    "BACKENDS",
    "CacheStats",
    "ExecutionBackend",
    "PersistentCache",
    "PersistentSolverCache",
    "ProcessBackend",
    "SerialBackend",
    "ShardCacheServer",
    "ShardClient",
    "ShardGroup",
    "ShardedSolverCache",
    "SolveTask",
    "SolverCache",
    "TaskOutcome",
    "ThreadBackend",
    "shard_of",
    "freeze_model",
    "resolve_backend",
    "run_solve_task",
    "task_model_form",
    "session_cache_key",
    "solve_cache_key",
    "PreferenceService",
    "BatchResult",
]

_LAZY = {"PreferenceService", "BatchResult"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.service import service as _service

        return getattr(_service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
