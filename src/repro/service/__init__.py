"""The serving layer: canonical cache keys, a solver result cache, batching.

Three pieces (see DESIGN.md, "The service layer"):

* :mod:`repro.service.keys` — canonical cache keys for (model, labeling,
  pattern-union) solve requests, built on the ``freeze()`` hooks of the
  model and pattern classes;
* :mod:`repro.service.cache` — a thread-safe LRU :class:`SolverCache` with
  hit/miss/eviction statistics, consumed by the solver dispatch and the
  query engine (``cache=`` parameter);
* :mod:`repro.service.service` — the :class:`PreferenceService` batch API
  (``evaluate_many``) that groups sessions across whole batches of queries
  and runs the distinct solves on a worker pool.

``PreferenceService``/``BatchResult`` are re-exported lazily: the query
engine imports :mod:`repro.service.keys` at load time, and an eager import
of :mod:`repro.service.service` here would close an import cycle back into
the engine.
"""

from repro.service.cache import CacheStats, SolverCache
from repro.service.keys import freeze_model, session_cache_key, solve_cache_key

__all__ = [
    "CacheStats",
    "SolverCache",
    "freeze_model",
    "session_cache_key",
    "solve_cache_key",
    "PreferenceService",
    "BatchResult",
]

_LAZY = {"PreferenceService", "BatchResult"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.service import service as _service

        return getattr(_service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
